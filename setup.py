"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` with build isolation) cannot
build an editable wheel.  This ``setup.py`` enables the legacy
``--no-use-pep517`` editable path; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
