# Test and benchmark entry points.
#
# Tiers:
#   test-fast      - quick split: skips @slow benchmarks; @xslow sweeps are
#                    skipped by default anyway.
#   test           - the tier-1 invocation from ROADMAP.md (includes @slow,
#                    skips @xslow).
#   test-all       - everything: the scaled-up @xslow randomized
#                    cross-backend sweeps, plus every examples/ script at
#                    tiny smoke scale.
#   smoke-examples - run each examples/ script with REPRO_SMOKE=1 (reduced
#                    shots/iterations), failing on the first error.
#   coverage       - fast tier under the stdlib line tracer (the image has no
#                    coverage.py / pytest-cov); prints per-module coverage and
#                    flags untested modules.
#   lint           - the repo's own AST-based invariant checker
#                    (python -m repro.lint): per-module rules (determinism,
#                    encapsulation, config serialization, exception hygiene,
#                    hot-path discipline, BENCH_*.json schemas) plus the
#                    whole-program rules built on the project call graph
#                    (concurrency, ipdeterminism, deadcode).  The full scan
#                    covers src/, tests/, benchmarks/, scripts/ and
#                    examples/.  Zero findings or fail.
#   coverage floor - CI gates the coverage run at --min 90 (measured 94.6%
#                    on 2026-08-08); make coverage just prints the table.
#   bench-hotpath  - run the iteration-throughput benchmark (compiled vs
#                    recompute-every-call) and refresh its perf-trajectory
#                    file BENCH_iteration_throughput.json.
#   bench-transpile - gate-count reductions of the circuit-optimization pass
#                    stack per paper circuit family; refreshes
#                    BENCH_transpile_optimization.json (speedup-gated).
#   bench-service  - load-generator benchmark of the async solve service
#                    (requests/s, cache-hit/dedup ratios, p50/p99 latency);
#                    refreshes BENCH_service_throughput.json.  Wall-clock
#                    heavy, so not part of the CI lanes — run locally after
#                    touching src/repro/service/.

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test-fast test test-all smoke-examples coverage lint bench-subspace bench-cyclic bench-hotpath bench-fig10 bench-transpile bench-service

test-fast:
	$(PYTEST) -q -m "not slow"

test:
	$(PYTEST) -x -q

test-all:
	$(PYTEST) -q --xslow
	$(MAKE) smoke-examples

smoke-examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		PYTHONPATH=src REPRO_SMOKE=1 $(PYTHON) $$script || exit 1; \
	done

coverage:
	PYTHONPATH=src $(PYTHON) scripts/coverage_report.py -q -m "not slow"

lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint

bench-subspace:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_subspace_speedup.py

bench-cyclic:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_cyclic_subspace.py

bench-hotpath:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_iteration_throughput.py

bench-fig10:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_fig10_hardware.py

bench-transpile:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_transpile_optimization.py

bench-service:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service_throughput.py
