# Test and benchmark entry points.
#
# Tiers:
#   test-fast  - quick split: skips @slow benchmarks; @xslow sweeps are
#                skipped by default anyway.
#   test       - the tier-1 invocation from ROADMAP.md (includes @slow,
#                skips @xslow).
#   test-all   - everything, including the scaled-up @xslow randomized
#                cross-backend sweeps.
#   coverage   - fast tier under the stdlib line tracer (the image has no
#                coverage.py / pytest-cov); prints per-module coverage and
#                flags untested modules.

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test-fast test test-all coverage bench-subspace bench-cyclic

test-fast:
	$(PYTEST) -q -m "not slow"

test:
	$(PYTEST) -x -q

test-all:
	$(PYTEST) -q --xslow

coverage:
	PYTHONPATH=src $(PYTHON) scripts/coverage_report.py -q -m "not slow"

bench-subspace:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_subspace_speedup.py

bench-cyclic:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_cyclic_subspace.py
