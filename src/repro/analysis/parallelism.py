"""Quantum-parallelism analysis (Fig. 9b).

The paper measures "the number of measured states through the circuit" — the
size of the basis-state support of the quantum state as the circuit executes
— as a proxy for how much superposition (parallelism) the algorithm actually
harvests.  Choco-Q starts from a single basis state yet its support grows
exponentially once the commute driver acts (around the first quarter of the
circuit), whereas penalty-based designs start from the full uniform
superposition.

:func:`support_trace` executes a gate-level circuit through the statevector
simulator with per-gate support recording and returns the trace;
:func:`parallelism_profile` additionally normalises the x-axis to circuit
progress so traces of circuits with different gate counts can be compared on
one plot, as the figure does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.statevector import Statevector, StatevectorSimulator


@dataclass(frozen=True)
class ParallelismProfile:
    """Support-size trace of one circuit execution."""

    solver_name: str
    support_sizes: tuple[int, ...]
    num_qubits: int

    @property
    def num_gates(self) -> int:
        return len(self.support_sizes)

    @property
    def max_support(self) -> int:
        return max(self.support_sizes) if self.support_sizes else 0

    def progress_axis(self) -> np.ndarray:
        """Circuit progress in [0, 1] for each recorded gate."""
        if not self.support_sizes:
            return np.zeros(0)
        return (np.arange(len(self.support_sizes)) + 1) / len(self.support_sizes)

    def support_at_progress(self, fraction: float) -> int:
        """Support size once ``fraction`` of the circuit has executed."""
        if not self.support_sizes:
            return 0
        index = min(
            len(self.support_sizes) - 1, max(0, int(round(fraction * len(self.support_sizes))) - 1)
        )
        return self.support_sizes[index]

    def growth_onset(self, threshold: int = 2) -> float:
        """Circuit-progress fraction at which the support first exceeds ``threshold``."""
        for index, size in enumerate(self.support_sizes):
            if size >= threshold:
                return (index + 1) / len(self.support_sizes)
        return 1.0


def support_trace(
    circuit: QuantumCircuit,
    initial_state: "Statevector | list[int] | None" = None,
    max_qubits: int = 20,
) -> list[int]:
    """Basis-state support size after every gate of ``circuit``."""
    simulator = StatevectorSimulator(max_qubits=max_qubits, record_support=True)
    result = simulator.run(circuit, initial_state=initial_state)
    return list(result.support_trace)


def parallelism_profile(
    solver_name: str,
    circuit: QuantumCircuit,
    initial_state: "Statevector | list[int] | None" = None,
    max_qubits: int = 20,
) -> ParallelismProfile:
    """Execute a circuit and wrap its support trace for plotting/comparison."""
    trace = support_trace(circuit, initial_state=initial_state, max_qubits=max_qubits)
    return ParallelismProfile(
        solver_name=solver_name,
        support_sizes=tuple(trace),
        num_qubits=circuit.num_qubits,
    )
