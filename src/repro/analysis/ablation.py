"""Ablation harness for the three Choco-Q optimizations (Fig. 14).

The paper ablates its optimization passes on top of the always-on
serialization pass (Opt1):

* **Opt1**       — serialization only: local Hamiltonians are deployed as
  opaque unitaries (generic synthesis), no variable elimination;
* **Opt1+2**     — plus the equivalent (Lemma 2) decomposition;
* **Opt1+3**     — plus variable elimination (without Lemma 2);
* **Opt1+2+3**   — everything.

For each configuration the harness reports the transpiled circuit depth and
the success rate under a device noise model, mirroring the two panels of
Fig. 14.  The noise model is optional: without one, the ideal success rate is
reported (the depth comparison is unaffected).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import ConstrainedBinaryProblem
from repro.qcircuit.noise import NoiseModel
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.optimizer import CobylaOptimizer
from repro.solvers.variational import EngineOptions


@dataclass(frozen=True)
class AblationArm:
    """One configuration of the ablation study."""

    label: str
    use_equivalent_decomposition: bool
    num_eliminated_variables: int


ABLATION_ARMS: tuple[AblationArm, ...] = (
    AblationArm("Opt1", use_equivalent_decomposition=False, num_eliminated_variables=0),
    AblationArm("Opt1+2", use_equivalent_decomposition=True, num_eliminated_variables=0),
    AblationArm("Opt1+3", use_equivalent_decomposition=False, num_eliminated_variables=1),
    AblationArm("Opt1+2+3", use_equivalent_decomposition=True, num_eliminated_variables=1),
)


@dataclass(frozen=True)
class AblationRow:
    """Result of one ablation arm on one problem."""

    label: str
    transpiled_depth: int
    success_rate: float
    in_constraints_rate: float
    num_circuits: int


def run_ablation(
    problem: ConstrainedBinaryProblem,
    arms: "tuple[AblationArm, ...]" = ABLATION_ARMS,
    num_layers: int = 2,
    shots: int = 2048,
    seed: int | None = 7,
    noise_model: NoiseModel | None = None,
    max_iterations: int = 60,
    eliminated_variables: int | None = None,
) -> list[AblationRow]:
    """Run every ablation arm on ``problem`` and collect depth + success rate.

    ``eliminated_variables`` overrides the per-arm elimination count (the
    paper's Fig. 14 eliminates two variables); ``None`` keeps the arm
    defaults.
    """
    _, optimal_value = problem.brute_force_optimum()
    rows: list[AblationRow] = []
    for arm in arms:
        eliminate = (
            arm.num_eliminated_variables
            if eliminated_variables is None or arm.num_eliminated_variables == 0
            else eliminated_variables
        )
        config = ChocoQConfig(
            num_layers=num_layers,
            use_equivalent_decomposition=arm.use_equivalent_decomposition,
            num_eliminated_variables=eliminate,
        )
        options = EngineOptions(shots=shots, seed=seed, noise_model=noise_model)
        solver = ChocoQSolver(
            config=config,
            optimizer=CobylaOptimizer(max_iterations=max_iterations),
            options=options,
        )
        result = solver.solve(problem)
        metrics = result.metrics(problem, optimal_value)
        rows.append(
            AblationRow(
                label=arm.label,
                transpiled_depth=result.transpiled_depth,
                success_rate=metrics.success_rate,
                in_constraints_rate=metrics.in_constraints_rate,
                num_circuits=result.metadata.get("num_circuits", 1),
            )
        )
    return rows


def ablation_improvements(rows: "list[AblationRow]") -> dict[str, float]:
    """Relative improvements between arms, in the format Fig. 14 quotes.

    Returns depth-reduction and success-rate-improvement factors of each arm
    relative to the Opt1 arm (values > 1 mean better).
    """
    by_label = {row.label: row for row in rows}
    base = by_label.get("Opt1")
    improvements: dict[str, float] = {}
    if base is None:
        return improvements
    for label, row in by_label.items():
        if label == "Opt1":
            continue
        if row.transpiled_depth > 0:
            improvements[f"depth_reduction[{label}]"] = base.transpiled_depth / row.transpiled_depth
        if base.success_rate > 0:
            improvements[f"success_gain[{label}]"] = row.success_rate / base.success_rate
    return improvements
