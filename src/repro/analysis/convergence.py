"""Convergence analysis (Fig. 9a).

The paper compares how quickly each QAOA design approaches the optimal cost
during the classical optimization loop: Choco-Q reaches the optimum within
~30 iterations and is within 20% after 7, while the baselines stay far from
it after 148 iterations.  This module re-derives exactly those statistics
from the :class:`~repro.solvers.base.OptimizationTrace` every solver records.

Note on cost scales: solvers minimize different internal costs (Choco-Q and
the cyclic driver minimize the bare objective expectation, penalty-based
designs minimize objective + penalty), so curves are normalised against the
problem's true optimal objective value before comparison — the same
normalisation the paper's "gap with the optimal cost" uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import ConstrainedBinaryProblem
from repro.solvers.base import SolverResult


@dataclass(frozen=True)
class ConvergenceCurve:
    """One solver's cost trajectory, normalised against the optimum."""

    solver_name: str
    costs: tuple[float, ...]
    optimal_cost: float

    @property
    def num_iterations(self) -> int:
        return len(self.costs)

    def best_so_far(self) -> np.ndarray:
        """Monotone best-cost-so-far curve."""
        return np.minimum.accumulate(np.asarray(self.costs, dtype=float))

    def relative_gap(self) -> np.ndarray:
        """``|best_so_far - optimal| / max(|optimal|, 1)`` per iteration."""
        best = self.best_so_far()
        scale = max(abs(self.optimal_cost), 1.0)
        return np.abs(best - self.optimal_cost) / scale

    def iterations_to_gap(self, gap: float) -> int | None:
        """First iteration whose relative gap is at or below ``gap``."""
        gaps = self.relative_gap()
        below = np.nonzero(gaps <= gap)[0]
        return int(below[0]) + 1 if below.size else None

    def final_gap(self) -> float:
        gaps = self.relative_gap()
        return float(gaps[-1]) if gaps.size else float("inf")


def convergence_curve(
    problem: ConstrainedBinaryProblem, result: SolverResult, optimal_value: float | None = None
) -> ConvergenceCurve:
    """Extract the normalised convergence curve from a solver result.

    The internal cost recorded in the trace is the solver's own minimization
    target; for penalty-based solvers the curve therefore sits above the bare
    objective until the constraints are satisfied, which is exactly the
    "extremely large initial cost" effect the paper describes.
    """
    if optimal_value is None:
        _, optimal_value = problem.brute_force_optimum()
    optimal_cost = optimal_value if problem.sense == "min" else -optimal_value
    return ConvergenceCurve(
        solver_name=result.solver_name,
        costs=tuple(result.trace.costs),
        optimal_cost=float(optimal_cost),
    )


def compare_convergence(
    problem: ConstrainedBinaryProblem,
    results: "list[SolverResult]",
    gap: float = 0.2,
) -> list[dict]:
    """Summarise convergence speed for several solvers on the same problem.

    Returns one row per solver with the iteration counts to reach ``gap``
    (20% by default, the threshold quoted in the paper) and the final gap.
    """
    _, optimal_value = problem.brute_force_optimum()
    rows = []
    for result in results:
        curve = convergence_curve(problem, result, optimal_value)
        rows.append(
            {
                "solver": result.solver_name,
                "iterations": curve.num_iterations,
                "iterations_to_gap": curve.iterations_to_gap(gap),
                "final_gap": curve.final_gap(),
                "initial_cost": curve.costs[0] if curve.costs else float("nan"),
            }
        )
    return rows
