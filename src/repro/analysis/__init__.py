"""Analysis utilities: convergence curves, parallelism profiles, ablation
harness and plain-text reporting used by the benchmark suite."""

from repro.analysis.ablation import (
    ABLATION_ARMS,
    AblationArm,
    AblationRow,
    ablation_improvements,
    run_ablation,
)
from repro.analysis.convergence import (
    ConvergenceCurve,
    compare_convergence,
    convergence_curve,
)
from repro.analysis.parallelism import (
    ParallelismProfile,
    parallelism_profile,
    support_trace,
)
from repro.analysis.report import (
    format_percentage,
    format_speedup,
    format_table,
    print_table,
    summarize_improvement,
)

__all__ = [
    "ABLATION_ARMS",
    "AblationArm",
    "AblationRow",
    "ConvergenceCurve",
    "ParallelismProfile",
    "ablation_improvements",
    "compare_convergence",
    "convergence_curve",
    "format_percentage",
    "format_speedup",
    "format_table",
    "parallelism_profile",
    "print_table",
    "run_ablation",
    "summarize_improvement",
    "support_trace",
]
