"""Exception hierarchy for the repro package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Subclasses are grouped by subsystem: circuit
construction, simulation, Hamiltonian construction, problem modelling, and
solver execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class CircuitError(ReproError):
    """Raised for invalid circuit construction or manipulation."""


class GateError(CircuitError):
    """Raised when a gate is instantiated or applied with invalid arguments."""


class SimulationError(ReproError):
    """Raised when a simulator cannot execute the requested circuit."""


class TranspileError(ReproError):
    """Raised when a circuit cannot be lowered to the target basis."""


class ParameterError(CircuitError):
    """Raised for unbound or mismatched circuit parameters."""


class HamiltonianError(ReproError):
    """Raised for invalid Hamiltonian construction."""


class ProblemError(ReproError):
    """Raised for ill-formed constrained binary optimization problems."""


class InfeasibleError(ProblemError):
    """Raised when a problem has no feasible assignment."""


class SubspaceOverflowError(ProblemError):
    """Raised when a feasible set exceeds the configured subspace limit."""


class SolverError(ReproError):
    """Raised when a solver fails to run or is misconfigured."""


class NoiseModelError(ReproError):
    """Raised for invalid noise model definitions."""
