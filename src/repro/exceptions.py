"""Exception hierarchy for the repro package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Subclasses are grouped by subsystem: circuit
construction, simulation, Hamiltonian construction, problem modelling, and
solver execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class CircuitError(ReproError):
    """Raised for invalid circuit construction or manipulation."""


class GateError(CircuitError):
    """Raised when a gate is instantiated or applied with invalid arguments."""


class SimulationError(ReproError):
    """Raised when a simulator cannot execute the requested circuit."""


class TranspileError(ReproError):
    """Raised when a circuit cannot be lowered to the target basis."""


class ParameterError(CircuitError):
    """Raised for unbound or mismatched circuit parameters."""


class HamiltonianError(ReproError):
    """Raised for invalid Hamiltonian construction."""


class ProblemError(ReproError):
    """Raised for ill-formed constrained binary optimization problems."""


class InfeasibleError(ProblemError):
    """Raised when a problem has no feasible assignment."""


class SubspaceOverflowError(ProblemError):
    """Raised when a feasible set exceeds the configured subspace limit."""


class SolverError(ReproError):
    """Raised when a solver fails to run or is misconfigured."""


class PlanExecutionError(SolverError):
    """One or more specs of an experiment plan failed to execute.

    Carries every failure the batch runner observed before re-raising, so a
    farm operator can tell *which* runs died without replaying the plan.
    ``failures`` is a list of dicts with ``display_name``, ``spec_hash`` and
    ``error`` (the original exception, stringified); the first underlying
    exception is chained as ``__cause__``.
    """

    def __init__(self, failures: "list[dict]") -> None:
        self.failures = list(failures)
        lines = [
            f"{failure['display_name']} [{failure['spec_hash']}]: {failure['error']}"
            for failure in self.failures
        ]
        summary = f"{len(self.failures)} spec(s) failed: " + "; ".join(lines)
        super().__init__(summary)


class NoiseModelError(ReproError):
    """Raised for invalid noise model definitions."""


class ServiceError(ReproError):
    """Raised for solve-service protocol or configuration failures."""


class ServiceClosedError(ServiceError):
    """Raised when a request reaches a service that is not running."""


class ServiceTimeoutError(ServiceError):
    """Raised when a service request exceeds its per-request timeout.

    The underlying execution is *not* cancelled — it finishes and lands in
    the result store, so a retry of the same spec is answered from cache.
    """
