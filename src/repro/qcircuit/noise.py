"""Noise models for NISQ device emulation.

The paper evaluates Choco-Q on three IBM devices — **Fez** (Heron r2, native
CZ with 99.7% two-qubit fidelity), **Osaka** and **Sherbrooke** (Eagle r3,
single-direction ECR with 99.3% fidelity, so a CZ costs three ECRs).  We have
no access to the hardware, so this module provides the closest synthetic
equivalent: a Monte-Carlo Pauli-error noise model parameterised by the gate
fidelities quoted in Section V-A plus readout error.

The noise simulation works by stochastic trajectory sampling: the ideal
circuit is executed once, but each trajectory inserts random Pauli errors
after gates with probability derived from the per-gate error rate, and flips
readout bits with the readout error probability.  Averaging over trajectories
converges to the depolarizing-channel result while keeping the cost of a
statevector simulation.

For larger circuits an analytical *success-probability scaling* shortcut is
also offered (:meth:`NoiseModel.fidelity_factor`), which multiplies ideal
outcome probabilities by the product of per-gate fidelities and renormalises
with a uniform error floor — the standard first-order model of depolarizing
noise.  Both paths expose the same knobs the paper's hardware discussion
turns on: two-qubit gate count, depth, and readout quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.exceptions import NoiseModelError
from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.statevector import (
    StatevectorSimulator,
    Statevector,
    apply_matrix,
    index_to_bitstring,
    sample_histogram,
)
from repro.qcircuit.sampling import SampleResult, split_shots
from repro.qcircuit.gates import standard_gate

_PAULIS = {
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
}


@dataclass(frozen=True)
class DeviceProfile:
    """Calibration summary of a quantum device.

    Attributes:
        name: device identifier.
        single_qubit_error: depolarizing error probability per 1-qubit gate.
        two_qubit_error: depolarizing error probability per 2-qubit gate.
        readout_error: probability of flipping each measured bit.
        two_qubit_gate: native entangling gate (``"cz"`` or ``"ecr"``).
        cz_cost: number of native two-qubit gates needed to realise one CZ/CX
            (3 for single-direction ECR devices, 1 for native-CZ devices).
        single_qubit_time: duration of a 1-qubit gate in seconds.
        two_qubit_time: duration of a 2-qubit gate in seconds.
        readout_time: measurement duration in seconds.
    """

    name: str
    single_qubit_error: float
    two_qubit_error: float
    readout_error: float
    two_qubit_gate: str = "cz"
    cz_cost: int = 1
    single_qubit_time: float = 35e-9
    two_qubit_time: float = 90e-9
    readout_time: float = 1200e-9

    def effective_two_qubit_error(self) -> float:
        """Error of one logical CZ/CX once translated to native gates."""
        native_fidelity = 1.0 - self.two_qubit_error
        return 1.0 - native_fidelity**self.cz_cost


# Device profiles parameterised from the fidelities quoted in Section V-A.
IBM_FEZ = DeviceProfile(
    name="fez",
    single_qubit_error=3e-4,
    two_qubit_error=0.003,  # 99.7% CZ fidelity
    readout_error=0.01,
    two_qubit_gate="cz",
    cz_cost=1,
    two_qubit_time=90e-9,
)

IBM_OSAKA = DeviceProfile(
    name="osaka",
    single_qubit_error=4e-4,
    two_qubit_error=0.007,  # 99.3% ECR fidelity
    readout_error=0.02,
    two_qubit_gate="ecr",
    cz_cost=3,
    two_qubit_time=330e-9,
)

IBM_SHERBROOKE = DeviceProfile(
    name="sherbrooke",
    single_qubit_error=4e-4,
    two_qubit_error=0.007,
    readout_error=0.015,
    two_qubit_gate="ecr",
    cz_cost=3,
    two_qubit_time=330e-9,
)

DEVICE_PROFILES: dict[str, DeviceProfile] = {
    profile.name: profile for profile in (IBM_FEZ, IBM_OSAKA, IBM_SHERBROOKE)
}


def get_device_profile(name: str) -> DeviceProfile:
    """Look up a device profile by name (case-insensitive)."""
    key = name.lower()
    if key not in DEVICE_PROFILES:
        raise NoiseModelError(
            f"unknown device {name!r}; available: {sorted(DEVICE_PROFILES)}"
        )
    return DEVICE_PROFILES[key]


class NoiseModel:
    """Depolarizing + readout noise derived from a :class:`DeviceProfile`.

    ``seed`` accepts anything :func:`numpy.random.default_rng` does — in
    particular a :class:`numpy.random.SeedSequence`, which the variational
    engine derives from its run seed so noisy executions are bit-identical
    across sequential and parallel plan execution.  The serializable
    counterpart of this class is
    :class:`~repro.solvers.config.NoiseConfig`, whose ``build_model``
    constructs one from pure data.
    """

    def __init__(
        self,
        profile: DeviceProfile,
        seed: "int | np.random.SeedSequence | None" = None,
    ) -> None:
        self.profile = profile
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Analytical shortcut
    # ------------------------------------------------------------------

    def fidelity_factor(self, circuit: QuantumCircuit) -> float:
        """Estimated probability that the circuit executes without any error.

        Callers should pass the circuit a device would actually run — i.e.
        the *optimized transpiled* circuit — so the estimate tracks circuit
        quality, not the raw high-level instruction list.  An opaque
        ``k``-qubit ``unitary`` (``k >= 2``) is charged its synthesized gate
        cost of ``4**k - 1`` two-qubit gates, consistent with the exponential
        penalty :func:`~repro.qcircuit.transpile.unitary_synthesis_penalty`
        applies to depth; before this, a 5-qubit Trotter step was priced like
        a single CX.
        """
        single = 0
        double = 0
        for instruction in circuit:
            if instruction.is_directive:
                continue
            k = len(instruction.qubits)
            if instruction.gate.name == "unitary" and k >= 2:
                double += 4**k - 1
            elif k >= 2:
                double += 1
            else:
                single += 1
        p_ok_gates = (1 - self.profile.single_qubit_error) ** single
        p_ok_gates *= (1 - self.profile.effective_two_qubit_error()) ** double
        p_ok_readout = (1 - self.profile.readout_error) ** circuit.num_qubits
        return float(p_ok_gates * p_ok_readout)

    def apply_analytical(
        self, ideal_probabilities: np.ndarray, circuit: QuantumCircuit
    ) -> np.ndarray:
        """First-order depolarizing model: mix the ideal distribution with
        the uniform distribution weighted by the circuit failure probability."""
        fidelity = self.fidelity_factor(circuit)
        dim = len(ideal_probabilities)
        uniform = np.full(dim, 1.0 / dim)
        return fidelity * ideal_probabilities + (1 - fidelity) * uniform

    # ------------------------------------------------------------------
    # Monte-Carlo trajectory sampling
    # ------------------------------------------------------------------

    def sample(
        self,
        circuit: QuantumCircuit,
        shots: int,
        initial_state: Statevector | list[int] | None = None,
        trajectories: int = 16,
        simulator: StatevectorSimulator | None = None,
    ) -> SampleResult:
        """Sample the circuit under noise via Pauli-error trajectories.

        ``trajectories`` independent noisy executions are simulated; the shot
        budget is divided between them *exactly* — the first ``shots mod
        trajectories`` trajectories take one extra shot, so the merged
        histogram always carries ``shots`` samples (a trajectory whose share
        rounds to zero is skipped entirely).  Each trajectory inserts a
        random Pauli after every gate with the corresponding error
        probability and applies independent readout bit-flips when sampling.
        """
        if shots < 1:
            raise NoiseModelError("shots must be positive")
        if trajectories < 1:
            raise NoiseModelError("trajectories must be positive")
        simulator = simulator or StatevectorSimulator(max_qubits=22)
        result = SampleResult()
        for per_trajectory in split_shots(shots, trajectories):
            if per_trajectory == 0:
                continue
            noisy_circuit = self._sample_noisy_circuit(circuit)
            state = simulator.statevector(noisy_circuit, initial_state=initial_state)
            counts = state.sample_counts(per_trajectory, rng=self._rng)
            counts = self._apply_readout_error(counts)
            result = result.merge(SampleResult.from_counts(counts))
        self._check_shot_conservation(result, shots)
        return result

    def sample_analytical(
        self,
        circuit: QuantumCircuit,
        shots: int,
        initial_state: Statevector | list[int] | None = None,
        simulator: StatevectorSimulator | None = None,
    ) -> SampleResult:
        """Sample under the first-order analytical depolarizing model.

        One ideal statevector simulation, the :meth:`apply_analytical`
        uniform-mixing correction, and a single ``shots``-sized draw — the
        cheap counterpart of :meth:`sample` for deep circuits, with the same
        exact-shot-conservation contract.
        """
        if shots < 1:
            raise NoiseModelError("shots must be positive")
        simulator = simulator or StatevectorSimulator(max_qubits=22)
        state = simulator.statevector(circuit, initial_state=initial_state)
        noisy_probabilities = self.apply_analytical(state.probabilities(), circuit)
        counts = sample_histogram(
            noisy_probabilities,
            shots,
            key_of=lambda index: index_to_bitstring(index, circuit.num_qubits),
            rng=self._rng,
        )
        result = SampleResult.from_counts(counts)
        self._check_shot_conservation(result, shots)
        return result

    @staticmethod
    def _check_shot_conservation(result: SampleResult, shots: int) -> None:
        """Enforce the exact-delivery contract (a real check, not an assert,
        so it survives ``python -O``)."""
        if result.shots != shots:
            raise NoiseModelError(
                f"shot conservation violated: delivered {result.shots} of {shots}"
            )

    def _sample_noisy_circuit(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Clone the circuit, stochastically inserting Pauli errors after gates."""
        noisy = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_noisy")
        p1 = self.profile.single_qubit_error
        p2 = self.profile.effective_two_qubit_error()
        for instruction in circuit:
            if instruction.is_directive:
                noisy.append_instruction(instruction)
                continue
            noisy.append(instruction.gate, instruction.qubits)
            error_probability = p2 if len(instruction.qubits) >= 2 else p1
            for qubit in instruction.qubits:
                if self._rng.random() < error_probability:
                    pauli = self._rng.choice(["x", "y", "z"])
                    noisy.append(standard_gate(pauli), [qubit])
        return noisy

    def _apply_readout_error(self, counts: Mapping[str, int]) -> dict[str, int]:
        """Flip each measured bit independently with the readout error rate."""
        p = self.profile.readout_error
        if p <= 0.0:
            return dict(counts)
        flipped: dict[str, int] = {}
        for key, value in counts.items():
            for _ in range(value):
                bits = [
                    (1 - int(ch)) if self._rng.random() < p else int(ch) for ch in key
                ]
                new_key = "".join(str(b) for b in bits)
                flipped[new_key] = flipped.get(new_key, 0) + 1
        return flipped
