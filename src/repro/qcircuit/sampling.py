"""Measurement sampling utilities.

Solvers interact with the simulator through :class:`SampleResult`, a
histogram of measured bitstrings.  Helpers here convert between probability
vectors, shot histograms, and the bit-assignment arrays the problem layer
consumes, and merge histograms from the multiple circuit executions that the
variable-elimination technique of Section IV-C requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.qcircuit.statevector import Statevector, bitstring_to_index, index_to_bitstring


@dataclass
class SampleResult:
    """A histogram of measurement outcomes.

    Keys are little-endian bitstrings (character ``i`` is qubit ``i``), values
    are shot counts.  ``metadata`` carries solver-specific annotations such as
    the eliminated-variable assignment that produced the histogram.
    """

    counts: dict[str, int] = field(default_factory=dict)
    shots: int = 0
    metadata: dict = field(default_factory=dict)

    @classmethod
    def from_counts(cls, counts: Mapping[str, int], metadata: dict | None = None) -> "SampleResult":
        total = int(sum(counts.values()))
        return cls(counts=dict(counts), shots=total, metadata=dict(metadata or {}))

    @classmethod
    def from_statevector(
        cls,
        statevector: Statevector,
        shots: int,
        rng: np.random.Generator | None = None,
        metadata: dict | None = None,
    ) -> "SampleResult":
        counts = statevector.sample_counts(shots, rng=rng)
        return cls(counts=counts, shots=shots, metadata=dict(metadata or {}))

    @classmethod
    def from_probabilities(
        cls,
        probabilities: np.ndarray,
        num_qubits: int,
        shots: int,
        rng: np.random.Generator | None = None,
        metadata: dict | None = None,
    ) -> "SampleResult":
        rng = np.random.default_rng() if rng is None else rng
        probabilities = np.asarray(probabilities, dtype=float)
        probabilities = probabilities / probabilities.sum()
        outcomes = rng.choice(len(probabilities), size=shots, p=probabilities)
        counts: dict[str, int] = {}
        for outcome in outcomes:
            key = index_to_bitstring(int(outcome), num_qubits)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts=counts, shots=shots, metadata=dict(metadata or {}))

    # ------------------------------------------------------------------

    def frequencies(self) -> dict[str, float]:
        """Relative frequencies of each measured bitstring."""
        if self.shots == 0:
            return {}
        return {key: value / self.shots for key, value in self.counts.items()}

    def most_common(self, limit: int | None = None) -> list[tuple[str, int]]:
        ordered = sorted(self.counts.items(), key=lambda item: item[1], reverse=True)
        return ordered if limit is None else ordered[:limit]

    def assignments(self) -> list[tuple[np.ndarray, int]]:
        """Return (bit-array, count) pairs; index ``i`` of the array is x_i."""
        result = []
        for key, value in self.counts.items():
            bits = np.array([int(ch) for ch in key], dtype=int)
            result.append((bits, value))
        return result

    def probability_of_index(self, index: int, num_qubits: int) -> float:
        key = index_to_bitstring(index, num_qubits)
        if self.shots == 0:
            return 0.0
        return self.counts.get(key, 0) / self.shots

    def merge(self, other: "SampleResult") -> "SampleResult":
        """Combine two histograms (used when merging eliminated-variable runs)."""
        merged = dict(self.counts)
        for key, value in other.counts.items():
            merged[key] = merged.get(key, 0) + value
        return SampleResult(counts=merged, shots=self.shots + other.shots)

    def __len__(self) -> int:
        return len(self.counts)


def merge_results(results: Iterable[SampleResult]) -> SampleResult:
    """Merge an iterable of histograms into one."""
    merged = SampleResult()
    for result in results:
        merged = merged.merge(result)
    return merged


def exact_distribution(statevector: Statevector) -> dict[str, float]:
    """The exact measurement distribution (no shot noise)."""
    probabilities = statevector.probabilities()
    result: dict[str, float] = {}
    for index, probability in enumerate(probabilities):
        if probability > 1e-12:
            result[index_to_bitstring(index, statevector.num_qubits)] = float(probability)
    return result


def counts_to_probability_vector(counts: Mapping[str, int], num_qubits: int) -> np.ndarray:
    """Convert a counts histogram into a dense probability vector."""
    vector = np.zeros(2**num_qubits, dtype=float)
    total = sum(counts.values())
    if total == 0:
        return vector
    for key, value in counts.items():
        vector[bitstring_to_index(key)] += value / total
    return vector
