"""Measurement sampling utilities.

Solvers interact with the simulator through :class:`SampleResult`, a
histogram of measured bitstrings.  Helpers here convert between probability
vectors, shot histograms, and the bit-assignment arrays the problem layer
consumes, and merge histograms from the multiple circuit executions that the
variable-elimination technique of Section IV-C requires.

Two state layouts feed this module:

* **dense** — probabilities indexed by the full ``2^n`` computational basis
  (:meth:`SampleResult.from_statevector` / :meth:`from_probabilities`);
* **subspace** — probabilities indexed by the compact coordinates of a
  :class:`~repro.core.subspace.SubspaceMap`
  (:meth:`SampleResult.from_subspace_probabilities` /
  :func:`subspace_exact_distribution`), which lift each coordinate back to
  its feasible bitstring, so downstream metrics code sees the exact same
  histogram format either way.

Merging preserves ``metadata`` (combining values key-by-key; list values
concatenate), so per-sub-circuit annotations such as the eliminated-variable
assignments of the Opt3 pipeline survive :func:`merge_results`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.serialization import json_sanitize
from repro.qcircuit.statevector import (
    Statevector,
    bitstring_to_index,
    index_to_bitstring,
    sample_histogram,
)


def split_shots(shots: int, parts: int) -> list[int]:
    """Split a shot budget over ``parts`` consumers without losing any.

    The first ``shots mod parts`` entries take one extra shot, so the
    allocation always sums to ``shots`` exactly — the conservation rule the
    variable-elimination pipeline and the noise model's trajectory sampling
    share.  A budget smaller than ``parts`` leaves trailing zero entries.
    """
    base, extra = divmod(shots, parts)
    return [base + (1 if index < extra else 0) for index in range(parts)]


@dataclass
class SampleResult:
    """A histogram of measurement outcomes.

    Keys are little-endian bitstrings (character ``i`` is qubit ``i``), values
    are shot counts.  ``metadata`` carries solver-specific annotations such as
    the eliminated-variable assignment that produced the histogram.
    """

    counts: dict[str, int] = field(default_factory=dict)
    shots: int = 0
    metadata: dict = field(default_factory=dict)

    @classmethod
    def from_counts(cls, counts: Mapping[str, int], metadata: dict | None = None) -> "SampleResult":
        total = int(sum(counts.values()))
        return cls(counts=dict(counts), shots=total, metadata=dict(metadata or {}))

    @classmethod
    def from_statevector(
        cls,
        statevector: Statevector,
        shots: int,
        rng: np.random.Generator | None = None,
        metadata: dict | None = None,
    ) -> "SampleResult":
        counts = statevector.sample_counts(shots, rng=rng)
        return cls(counts=counts, shots=shots, metadata=dict(metadata or {}))

    @classmethod
    def from_probabilities(
        cls,
        probabilities: np.ndarray,
        num_qubits: int,
        shots: int,
        rng: np.random.Generator | None = None,
        metadata: dict | None = None,
    ) -> "SampleResult":
        counts = sample_histogram(
            probabilities, shots, lambda index: index_to_bitstring(index, num_qubits), rng=rng
        )
        return cls(counts=counts, shots=shots, metadata=dict(metadata or {}))

    @classmethod
    def from_subspace_probabilities(
        cls,
        probabilities: np.ndarray,
        subspace_map,
        shots: int,
        rng: np.random.Generator | None = None,
        metadata: dict | None = None,
    ) -> "SampleResult":
        """Sample a feasible-subspace distribution into a bitstring histogram.

        ``probabilities[k]`` is the probability of subspace coordinate ``k``
        of a :class:`~repro.core.subspace.SubspaceMap`; each sampled
        coordinate is lifted to its full-register bitstring key.
        """
        counts = sample_histogram(
            probabilities, shots, subspace_map.bitstring_of, rng=rng
        )
        return cls(counts=counts, shots=shots, metadata=dict(metadata or {}))

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form (see :mod:`repro.serialization`)."""
        return {
            "counts": {key: int(value) for key, value in self.counts.items()},
            "shots": int(self.shots),
            "metadata": json_sanitize(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SampleResult":
        """Rebuild a histogram from :meth:`to_dict` output."""
        return cls(
            counts=dict(data.get("counts", {})),
            shots=int(data.get("shots", 0)),
            metadata=dict(data.get("metadata", {})),
        )

    def frequencies(self) -> dict[str, float]:
        """Relative frequencies of each measured bitstring."""
        if self.shots == 0:
            return {}
        return {key: value / self.shots for key, value in self.counts.items()}

    def most_common(self, limit: int | None = None) -> list[tuple[str, int]]:
        ordered = sorted(self.counts.items(), key=lambda item: item[1], reverse=True)
        return ordered if limit is None else ordered[:limit]

    def assignments(self) -> list[tuple[np.ndarray, int]]:
        """Return (bit-array, count) pairs; index ``i`` of the array is x_i."""
        result = []
        for key, value in self.counts.items():
            bits = np.array([int(ch) for ch in key], dtype=int)
            result.append((bits, value))
        return result

    def probability_of_index(self, index: int, num_qubits: int) -> float:
        key = index_to_bitstring(index, num_qubits)
        if self.shots == 0:
            return 0.0
        return self.counts.get(key, 0) / self.shots

    def merge(self, other: "SampleResult") -> "SampleResult":
        """Combine two histograms (used when merging eliminated-variable runs).

        Counts add, shots add, and ``metadata`` from both operands is
        combined via :func:`combine_metadata` so annotations such as the
        Opt3 pipeline's eliminated-variable assignments are not lost.
        """
        merged = dict(self.counts)
        for key, value in other.counts.items():
            merged[key] = merged.get(key, 0) + value
        return SampleResult(
            counts=merged,
            shots=self.shots + other.shots,
            metadata=combine_metadata(self.metadata, other.metadata),
        )

    def __len__(self) -> int:
        return len(self.counts)


def combine_metadata(left: Mapping, right: Mapping) -> dict:
    """Combine two metadata dictionaries without losing either side.

    Keys unique to one side are kept as-is.  For a shared key, lists are
    treated as collections (the convention used for per-sub-circuit
    annotation lists): list values concatenate and a non-list value joins a
    list as one element, so folding any number of results through
    :func:`merge_results` always yields flat lists, never nested ones.
    Equal non-list values collapse; conflicting ones are collected into a
    list.  The collapse means the result can depend on merge grouping in
    one corner — equal scalars later meeting a list — which the annotation
    convention (every per-sub-circuit value is born as a list) avoids.
    """
    combined = dict(left)
    for key, value in right.items():
        if key not in combined:
            combined[key] = value
            continue
        existing = combined[key]
        if isinstance(existing, list) or isinstance(value, list):
            as_list = lambda v: v if isinstance(v, list) else [v]  # noqa: E731
            combined[key] = as_list(existing) + as_list(value)
        elif not _values_equal(existing, value):
            combined[key] = [existing, value]
    return combined


def _values_equal(left, right) -> bool:
    """Equality that tolerates values without scalar ``==`` (numpy arrays)."""
    try:
        return bool(left == right)
    except (TypeError, ValueError):
        return bool(np.array_equal(left, right))


def merge_results(results: Iterable[SampleResult]) -> SampleResult:
    """Merge an iterable of histograms into one (metadata included)."""
    merged = SampleResult()
    for result in results:
        merged = merged.merge(result)
    return merged


def subspace_exact_distribution(
    probabilities: np.ndarray, subspace_map, tolerance: float = 1e-12
) -> dict[str, float]:
    """Exact bitstring distribution of a feasible-subspace state.

    The subspace analogue of :func:`exact_distribution`: coordinate ``k`` of
    a :class:`~repro.core.subspace.SubspaceMap` contributes its probability
    under the coordinate's full-register bitstring key.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    result: dict[str, float] = {}
    for coordinate in np.nonzero(probabilities > tolerance)[0]:
        result[subspace_map.bitstring_of(int(coordinate))] = float(
            probabilities[coordinate]
        )
    return result


def exact_distribution(statevector: Statevector) -> dict[str, float]:
    """The exact measurement distribution (no shot noise)."""
    probabilities = statevector.probabilities()
    result: dict[str, float] = {}
    for index, probability in enumerate(probabilities):
        if probability > 1e-12:
            result[index_to_bitstring(index, statevector.num_qubits)] = float(probability)
    return result


def counts_to_probability_vector(counts: Mapping[str, int], num_qubits: int) -> np.ndarray:
    """Convert a counts histogram into a dense probability vector."""
    vector = np.zeros(2**num_qubits, dtype=float)
    total = sum(counts.values())
    if total == 0:
        return vector
    for key, value in counts.items():
        vector[bitstring_to_index(key)] += value / total
    return vector
