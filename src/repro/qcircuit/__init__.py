"""Gate-level quantum circuit substrate.

This subpackage is a self-contained replacement for the circuit construction
and simulation features the paper obtains from Qiskit: a gate library, a
circuit IR with symbolic parameters, a dense statevector simulator, a
transpiler to a NISQ basis gate set, sampling helpers, and noise models of
the IBM devices used in the evaluation.
"""

from repro.qcircuit.circuit import Instruction, QuantumCircuit
from repro.qcircuit.gates import (
    BASIS_GATES,
    DEFAULT_GATE_DURATIONS,
    Gate,
    mcp_gate,
    mcx_gate,
    standard_gate,
    unitary_gate,
)
from repro.qcircuit.noise import (
    DEVICE_PROFILES,
    IBM_FEZ,
    IBM_OSAKA,
    IBM_SHERBROOKE,
    DeviceProfile,
    NoiseModel,
    get_device_profile,
)
from repro.qcircuit.parameters import Parameter, ParameterExpression
from repro.qcircuit.passes import (
    DEFAULT_OPTIMIZATION_LEVEL,
    MAX_OPTIMIZATION_LEVEL,
    CircuitPass,
    CircuitStats,
    CommuteDiagonalPass,
    InverseCancellationPass,
    LadderResynthesisPass,
    PassManager,
    PassRecord,
    RotationFusionPass,
    TranspileReport,
    default_pipeline,
)
from repro.qcircuit.sampling import (
    SampleResult,
    combine_metadata,
    counts_to_probability_vector,
    exact_distribution,
    merge_results,
    subspace_exact_distribution,
)
from repro.qcircuit.statevector import (
    DEFAULT_SUPPORT_TOLERANCE,
    SimulationResult,
    Statevector,
    StatevectorSimulator,
    bitstring_to_index,
    index_to_bitstring,
    state_support_size,
)
from repro.qcircuit.transpile import (
    TranspileOptions,
    Transpiler,
    depth_after_transpile,
    gate_counts_after_transpile,
    transpile,
    transpile_with_report,
    unitary_synthesis_penalty,
)

__all__ = [
    "BASIS_GATES",
    "DEFAULT_OPTIMIZATION_LEVEL",
    "MAX_OPTIMIZATION_LEVEL",
    "CircuitPass",
    "CircuitStats",
    "CommuteDiagonalPass",
    "InverseCancellationPass",
    "LadderResynthesisPass",
    "PassManager",
    "PassRecord",
    "RotationFusionPass",
    "TranspileReport",
    "default_pipeline",
    "transpile_with_report",
    "unitary_synthesis_penalty",
    "DEFAULT_SUPPORT_TOLERANCE",
    "DEFAULT_GATE_DURATIONS",
    "DEVICE_PROFILES",
    "DeviceProfile",
    "Gate",
    "IBM_FEZ",
    "IBM_OSAKA",
    "IBM_SHERBROOKE",
    "Instruction",
    "NoiseModel",
    "Parameter",
    "ParameterExpression",
    "QuantumCircuit",
    "SampleResult",
    "SimulationResult",
    "Statevector",
    "StatevectorSimulator",
    "TranspileOptions",
    "Transpiler",
    "bitstring_to_index",
    "combine_metadata",
    "counts_to_probability_vector",
    "depth_after_transpile",
    "exact_distribution",
    "gate_counts_after_transpile",
    "get_device_profile",
    "index_to_bitstring",
    "mcp_gate",
    "mcx_gate",
    "merge_results",
    "state_support_size",
    "subspace_exact_distribution",
    "standard_gate",
    "transpile",
    "unitary_gate",
]
