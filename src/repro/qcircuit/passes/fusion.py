"""Adjacent same-axis rotation fusion.

``RZ(a)·RZ(b) = RZ(a+b)`` holds exactly (same for every rotation family in
the library, including the symmetric two-qubit rotations and ``mcp``), so
timeline-adjacent rotations of the same kind on the same qubit set merge
into one instruction, and a merged (or standalone) rotation whose angle is
numerically zero is elided entirely — ``R(0)`` is the identity for every
family here (``p``/``cp``/``mcp`` included, where the phase factor is
``e^{i·0} = 1``).
"""

from __future__ import annotations

from repro.qcircuit.circuit import Instruction, QuantumCircuit
from repro.qcircuit.gates import Gate, mcp_gate, standard_gate
from repro.qcircuit.passes.base import CircuitPass, InstructionTimeline, adjacent_pair

#: Angles below this magnitude are treated as zero.  Merging is exact float
#: addition, so an inverse pair like ``rz(t)·rz(-t)`` lands on 0.0 exactly;
#: the tolerance only matters for angles that were themselves computed.
ZERO_ANGLE_TOLERANCE = 1e-12

#: Rotation families that merge by angle addition.  All two-qubit members are
#: symmetric under qubit exchange (their matrices commute with SWAP), and
#: ``mcp`` phases the all-ones state of its qubit *set*, so operand order
#: need not match for the pair to fuse.
_FUSABLE = frozenset({"rx", "ry", "rz", "p", "cp", "rxx", "ryy", "rzz", "mcp"})


def _fusable_angle(instruction: Instruction) -> float | None:
    gate = instruction.gate
    if gate.name not in _FUSABLE or gate.is_parameterized:
        return None
    return float(gate.params[0])


def _merged_gate(previous: Gate, angle: float) -> Gate:
    if previous.name == "mcp":
        return mcp_gate(previous.num_controls, angle)
    return standard_gate(previous.name, angle)


class RotationFusionPass(CircuitPass):
    """Merge adjacent same-axis rotations; drop zero-angle rotations."""

    name = "rotation-fusion"

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        timeline = InstructionTimeline()
        for instruction in circuit:
            if instruction.is_directive:
                timeline.push(instruction)
                continue
            angle = _fusable_angle(instruction)
            if angle is None:
                timeline.push(instruction)
                continue
            if abs(angle) < ZERO_ANGLE_TOLERANCE:
                continue
            pair = adjacent_pair(timeline, instruction)
            if pair is not None:
                index, previous = pair
                previous_angle = _fusable_angle(previous)
                if previous_angle is not None and previous.gate.name == instruction.gate.name:
                    timeline.remove(index)
                    merged = previous_angle + angle
                    if abs(merged) >= ZERO_ANGLE_TOLERANCE:
                        timeline.push(
                            Instruction(
                                _merged_gate(previous.gate, merged), previous.qubits
                            )
                        )
                    continue
            timeline.push(instruction)
        return timeline.to_circuit(circuit)
