"""Inverse-pair cancellation.

Timeline-adjacent gate pairs that compose to the identity are deleted:
self-inverse gates (``x·x``, ``h·h``, ``cx·cx``, ``cz·cz``, ``swap·swap``,
``mcx·mcx``) and the adjoint pairs ``s·sdg`` / ``t·tdg``.  Rotation inverses
(``rz(t)·rz(-t)``) are left to the fusion pass, which merges them to a
zero angle and elides the result.

Deleting a pair exposes whatever preceded it on the affected timelines, so
cancellations cascade within a single sweep (``cx h h cx`` collapses fully).
"""

from __future__ import annotations

from repro.qcircuit.circuit import Instruction, QuantumCircuit
from repro.qcircuit.passes.base import CircuitPass, InstructionTimeline, adjacent_pair

#: Self-inverse gates.  ``cz``/``swap`` are symmetric under qubit exchange;
#: ``cx`` needs matching control/target order; ``mcx`` needs the same control
#: *set* and the same target (it is symmetric in its controls).
_SELF_INVERSE = frozenset({"x", "y", "z", "h", "cx", "cz", "swap", "mcx"})

_ADJOINT_PAIRS = {("s", "sdg"), ("sdg", "s"), ("t", "tdg"), ("tdg", "t")}


def _cancels(previous: Instruction, incoming: Instruction) -> bool:
    prev_name = previous.gate.name
    name = incoming.gate.name
    if (prev_name, name) in _ADJOINT_PAIRS:
        return True
    if name not in _SELF_INVERSE or prev_name != name:
        return False
    if name == "cx":
        return previous.qubits == incoming.qubits
    if name == "mcx":
        return (
            frozenset(previous.qubits[:-1]) == frozenset(incoming.qubits[:-1])
            and previous.qubits[-1] == incoming.qubits[-1]
        )
    # Single-qubit self-inverses and the exchange-symmetric cz/swap: the
    # timeline adjacency check already guarantees equal qubit sets.
    return True


class InverseCancellationPass(CircuitPass):
    """Delete timeline-adjacent gate pairs that multiply to the identity."""

    name = "inverse-cancellation"

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        timeline = InstructionTimeline()
        for instruction in circuit:
            if not instruction.is_directive:
                pair = adjacent_pair(timeline, instruction)
                if pair is not None and _cancels(pair[1], instruction):
                    timeline.remove(pair[0])
                    continue
            timeline.push(instruction)
        return timeline.to_circuit(circuit)
