"""Pass protocol and the streaming timeline the peephole passes share.

A :class:`CircuitPass` is a pure circuit-to-circuit rewrite: it must return a
circuit that implements the same unitary as its input **up to global phase**
(the package-wide transpilation contract), on the same register, and must be
deterministic — the content-hash result cache in :mod:`repro.run` relies on
transpilation being a pure function of the circuit and options.

The concrete passes are all *peephole* rewrites over per-qubit timelines:
two instructions are rewritable together exactly when they are adjacent on
the timeline of **every** qubit they act on (anything between them then
touches disjoint qubits and commutes trivially).  :class:`InstructionTimeline`
implements that bookkeeping as a streaming builder — each qubit carries a
stack of the live instruction indices that touch it — so every pass is a
single linear sweep instead of a quadratic scan.
"""

from __future__ import annotations

import abc

from repro.exceptions import TranspileError
from repro.qcircuit.circuit import Instruction, QuantumCircuit


class CircuitPass(abc.ABC):
    """One rewrite step of the optimization pipeline.

    Subclasses set ``name`` (used in :class:`~repro.qcircuit.passes.report.
    PassRecord` entries) and implement :meth:`run`.
    """

    name: str = "pass"

    @abc.abstractmethod
    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Return an equivalent (up to global phase) rewritten circuit."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class InstructionTimeline:
    """Streaming output builder tracking per-qubit instruction adjacency.

    Instructions are :meth:`push`-ed in circuit order; each qubit keeps a
    stack of the indices of live (not yet removed) instructions touching it.
    A pass inspects the stacks to find patterns that are timeline-adjacent
    and calls :meth:`remove` to rewrite them.  Directives (measure/barrier)
    are pushed like gates so they fence the qubits they cover.
    """

    def __init__(self) -> None:
        self._out: list[Instruction | None] = []
        self._stacks: dict[int, list[int]] = {}

    # -- building ----------------------------------------------------------

    def push(self, instruction: Instruction) -> int:
        """Append ``instruction`` and return its index."""
        index = len(self._out)
        self._out.append(instruction)
        for qubit in instruction.qubits:
            self._stacks.setdefault(qubit, []).append(index)
        return index

    def remove(self, index: int) -> None:
        """Delete a live instruction from the output and every qubit stack."""
        instruction = self._out[index]
        if instruction is None:
            raise TranspileError(f"instruction {index} was already removed")
        self._out[index] = None
        for qubit in instruction.qubits:
            self._stacks[qubit].remove(index)

    def remove_all(self, indices: list[int]) -> None:
        for index in sorted(indices, reverse=True):
            self.remove(index)

    # -- inspection ---------------------------------------------------------

    def last_index(self, qubit: int, depth: int = 0) -> int | None:
        """Index of the ``depth``-th most recent live instruction on ``qubit``."""
        stack = self._stacks.get(qubit)
        if stack is None or len(stack) <= depth:
            return None
        return stack[-1 - depth]

    def instruction_at(self, index: int) -> Instruction:
        instruction = self._out[index]
        if instruction is None:
            raise TranspileError(f"instruction {index} was already removed")
        return instruction

    def last_instruction(self, qubit: int, depth: int = 0) -> Instruction | None:
        index = self.last_index(qubit, depth)
        return None if index is None else self.instruction_at(index)

    # -- finishing ----------------------------------------------------------

    def to_circuit(self, source: QuantumCircuit) -> QuantumCircuit:
        """Materialise the surviving instructions on ``source``'s register."""
        result = QuantumCircuit(source.num_qubits, name=source.name)
        for instruction in self._out:
            if instruction is not None:
                result.append_instruction(instruction)
        return result


def adjacent_pair(
    timeline: InstructionTimeline, instruction: Instruction
) -> tuple[int, Instruction] | None:
    """The live instruction timeline-adjacent to an incoming one, if any.

    Returns ``(index, previous)`` when every qubit of ``instruction`` has the
    same most-recent live instruction *and* that instruction acts on exactly
    the same qubit set — the condition under which the pair is adjacent as
    operators regardless of what sits between them in list order.
    """
    indices = set()
    for qubit in instruction.qubits:
        index = timeline.last_index(qubit)
        if index is None:
            return None
        indices.add(index)
    if len(indices) != 1:
        return None
    index = indices.pop()
    previous = timeline.instruction_at(index)
    if previous.is_directive:
        return None
    if set(previous.qubits) != set(instruction.qubits):
        return None
    return index, previous
