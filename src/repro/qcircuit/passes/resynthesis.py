"""CX-ladder re-synthesis into multi-qubit phase gates.

The transpiler lowers every phase-type interaction into CX-conjugated RZ
ladders (``rzz`` → ``cx·rz·cx``; ``cp``/``mcp`` → the five-gate
``rz·cx·rz·cx·rz`` identity).  When the target basis allows richer phase
gates this pass runs the identities *backwards* — the myqlm-wiring
``cnots=False`` trick, where emitting multi-qubit phase gates instead of
CNOT ladders halves the entangling-gate count:

* ``cx(a,b) · rz(t,b) · cx(a,b)  →  rzz(t,a,b)``          (exact identity)
* ``rz(t,c) · rzz(-t,c,t) · rz(t,t)  →  cp(2t,c,t)``      (up to global phase)
* ``rz(t,c) · cx · rz(-t,t) · cx · rz(t,t)  →  cp(2t,c,t)``  (likewise)

Diagonal single-qubit gates commute through a CX *control*, so the first
pattern also matches when leftover phases sit between the two CX on the
control line (the tail of every lowered Toffoli).  Angle relations are
checked with exact float equality: the patterns target the transpiler's own
emissions, where the halves are exact negations, and an exact match keeps
the rewrite error-free rather than approximately sound.
"""

from __future__ import annotations

from repro.qcircuit.circuit import Instruction, QuantumCircuit
from repro.qcircuit.gates import mcp_gate, standard_gate
from repro.qcircuit.passes.base import CircuitPass, InstructionTimeline

#: Diagonal single-qubit gates that commute through a CX control line.
_CONTROL_COMMUTING = frozenset({"id", "z", "s", "sdg", "t", "tdg", "rz", "p"})


def _bound_angle(instruction: Instruction, name: str) -> float | None:
    gate = instruction.gate
    if gate.name != name or gate.is_parameterized:
        return None
    return float(gate.params[0])


class LadderResynthesisPass(CircuitPass):
    """Rebuild ``rzz``/``cp`` gates out of their lowered CX ladders.

    Only rewrites toward gates named in ``basis_gates``; with none of
    ``rzz``/``cp``/``mcp`` allowed the pass is a no-op.
    """

    name = "ladder-resynthesis"

    def __init__(self, basis_gates: frozenset[str]) -> None:
        self._emit_rzz = "rzz" in basis_gates
        if "cp" in basis_gates:
            self._phase_gate: str | None = "cp"
        elif "mcp" in basis_gates:
            self._phase_gate = "mcp"
        else:
            self._phase_gate = None

    @property
    def is_noop(self) -> bool:
        return not self._emit_rzz and self._phase_gate is None

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        if self.is_noop:
            return circuit.copy()
        timeline = InstructionTimeline()
        for instruction in circuit:
            if instruction.is_directive:
                timeline.push(instruction)
                continue
            if self._emit_rzz and instruction.gate.name == "cx":
                if self._try_rzz(timeline, instruction):
                    continue
            if self._phase_gate is not None and instruction.gate.name == "rz":
                if self._try_cp_from_rzz(timeline, instruction):
                    continue
                if self._try_cp_from_ladder(timeline, instruction):
                    continue
            timeline.push(instruction)
        return timeline.to_circuit(circuit)

    # ------------------------------------------------------------------

    def _push_phase(
        self, timeline: InstructionTimeline, theta: float, control: int, target: int
    ) -> None:
        if self._phase_gate == "cp":
            gate = standard_gate("cp", theta)
        else:
            gate = mcp_gate(1, theta)
        timeline.push(Instruction(gate, (control, target)))

    @staticmethod
    def _control_line_clear(
        timeline: InstructionTimeline, control: int, until_index: int
    ) -> bool:
        """True if everything on ``control`` above ``until_index`` commutes
        through a CX control (diagonal single-qubit gates on that line)."""
        depth = 0
        while True:
            index = timeline.last_index(control, depth)
            if index is None or index < until_index:
                return False
            if index == until_index:
                return True
            between = timeline.instruction_at(index)
            if between.qubits != (control,) or (
                between.gate.name not in _CONTROL_COMMUTING
            ):
                return False
            depth += 1

    def _try_rzz(
        self, timeline: InstructionTimeline, incoming: Instruction
    ) -> bool:
        """``cx(a,b) · [diag on a] · rz(t,b) · cx(a,b)`` → ``rzz(t,a,b)``."""
        control, target = incoming.qubits
        rz_index = timeline.last_index(target)
        cx_index = timeline.last_index(target, 1)
        if rz_index is None or cx_index is None:
            return False
        theta = _bound_angle(timeline.instruction_at(rz_index), "rz")
        if theta is None or timeline.instruction_at(rz_index).qubits != (target,):
            return False
        if timeline.instruction_at(cx_index).gate.name != "cx":
            return False
        if timeline.instruction_at(cx_index).qubits != incoming.qubits:
            return False
        if not self._control_line_clear(timeline, control, cx_index):
            return False
        timeline.remove_all([rz_index, cx_index])
        timeline.push(
            Instruction(standard_gate("rzz", theta), (control, target))
        )
        return True

    def _try_cp_from_rzz(
        self, timeline: InstructionTimeline, incoming: Instruction
    ) -> bool:
        """``rz(t,c) · rzz(-t,c,t) · rz(t,t)`` → ``cp(2t,c,t)``."""
        alpha = _bound_angle(incoming, "rz")
        if alpha is None:
            return False
        (target,) = incoming.qubits
        zz_index = timeline.last_index(target)
        if zz_index is None:
            return False
        zz = timeline.instruction_at(zz_index)
        if _bound_angle(zz, "rzz") != -alpha:
            return False
        control = zz.qubits[0] if zz.qubits[1] == target else zz.qubits[1]
        if target not in zz.qubits or timeline.last_index(control) != zz_index:
            return False
        rzc_index = timeline.last_index(control, 1)
        if rzc_index is None:
            return False
        rzc = timeline.instruction_at(rzc_index)
        if rzc.qubits != (control,) or _bound_angle(rzc, "rz") != alpha:
            return False
        timeline.remove_all([zz_index, rzc_index])
        self._push_phase(timeline, 2.0 * alpha, control, target)
        return True

    def _try_cp_from_ladder(
        self, timeline: InstructionTimeline, incoming: Instruction
    ) -> bool:
        """The transpiler's own five-gate ``cp`` lowering, run backwards."""
        alpha = _bound_angle(incoming, "rz")
        if alpha is None:
            return False
        (target,) = incoming.qubits
        cx2_index = timeline.last_index(target)
        if cx2_index is None:
            return False
        cx2 = timeline.instruction_at(cx2_index)
        if cx2.gate.name != "cx" or cx2.qubits[1] != target:
            return False
        control = cx2.qubits[0]
        if timeline.last_index(control) != cx2_index:
            return False
        rz2_index = timeline.last_index(target, 1)
        cx1_index = timeline.last_index(target, 2)
        rzc_index = timeline.last_index(control, 2)
        if rz2_index is None or cx1_index is None or rzc_index is None:
            return False
        rz2 = timeline.instruction_at(rz2_index)
        if rz2.qubits != (target,) or _bound_angle(rz2, "rz") != -alpha:
            return False
        if timeline.last_index(control, 1) != cx1_index:
            return False
        if timeline.instruction_at(cx1_index).qubits != cx2.qubits:
            return False
        if timeline.instruction_at(cx1_index).gate.name != "cx":
            return False
        rzc = timeline.instruction_at(rzc_index)
        if rzc.qubits != (control,) or _bound_angle(rzc, "rz") != alpha:
            return False
        timeline.remove_all([cx2_index, rz2_index, cx1_index, rzc_index])
        self._push_phase(timeline, 2.0 * alpha, control, target)
        return True
