"""Commuting-diagonal reordering.

Every gate in the diagonal family (``z``-axis rotations, phases, ``cz``,
``rzz``, ``cp``, ``mcp``) is diagonal in the computational basis, so any two
of them commute exactly — regardless of qubit overlap or angle, bound or
symbolic.  Within each maximal run of consecutive diagonal instructions the
pass stable-sorts by (qubit tuple, gate name), dragging same-axis rotations
on the same qubits next to each other so the fusion pass can merge them even
when they were separated by other commuting phase terms (the cross-layer
fusion opportunity in QAOA-style cost layers).

The sort is stable and keyed only on structural fields, so the pass is
deterministic and idempotent; non-diagonal gates and directives end runs.
"""

from __future__ import annotations

from repro.qcircuit.circuit import Instruction, QuantumCircuit
from repro.qcircuit.passes.base import CircuitPass

DIAGONAL_GATES = frozenset(
    {"id", "z", "s", "sdg", "t", "tdg", "rz", "p", "cz", "cp", "rzz", "mcp"}
)


def _is_diagonal(instruction: Instruction) -> bool:
    return not instruction.is_directive and instruction.gate.name in DIAGONAL_GATES


def _sort_key(instruction: Instruction) -> tuple:
    return (tuple(sorted(instruction.qubits)), instruction.gate.name)


class CommuteDiagonalPass(CircuitPass):
    """Stable-sort maximal runs of mutually-commuting diagonal gates."""

    name = "commute-diagonal"

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
        run: list[Instruction] = []

        def flush() -> None:
            run.sort(key=_sort_key)
            result.extend(run)
            run.clear()

        for instruction in circuit:
            if _is_diagonal(instruction):
                run.append(instruction)
            else:
                flush()
                result.append_instruction(instruction)
        flush()
        return result
