"""Circuit-optimization pass stack.

A :class:`PassManager` runs an ordered pipeline of :class:`CircuitPass`
rewrites over lowered circuits — rotation fusion, inverse cancellation,
commuting-diagonal reordering, CX-ladder re-synthesis — and records a
serializable :class:`TranspileReport` of what every pass bought.  The
:func:`~repro.qcircuit.transpile.transpile_with_report` entry point wires
the stack behind ``TranspileOptions.optimization_level``.
"""

from repro.qcircuit.passes.base import CircuitPass, InstructionTimeline
from repro.qcircuit.passes.cancellation import InverseCancellationPass
from repro.qcircuit.passes.commutation import DIAGONAL_GATES, CommuteDiagonalPass
from repro.qcircuit.passes.fusion import ZERO_ANGLE_TOLERANCE, RotationFusionPass
from repro.qcircuit.passes.manager import (
    DEFAULT_OPTIMIZATION_LEVEL,
    MAX_OPTIMIZATION_LEVEL,
    PassManager,
    default_pipeline,
)
from repro.qcircuit.passes.report import CircuitStats, PassRecord, TranspileReport
from repro.qcircuit.passes.resynthesis import LadderResynthesisPass

__all__ = [
    "DEFAULT_OPTIMIZATION_LEVEL",
    "DIAGONAL_GATES",
    "MAX_OPTIMIZATION_LEVEL",
    "ZERO_ANGLE_TOLERANCE",
    "CircuitPass",
    "CircuitStats",
    "CommuteDiagonalPass",
    "InstructionTimeline",
    "InverseCancellationPass",
    "LadderResynthesisPass",
    "PassManager",
    "PassRecord",
    "RotationFusionPass",
    "TranspileReport",
    "default_pipeline",
]
