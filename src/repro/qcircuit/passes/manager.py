"""Pass manager: ordered pipelines, fixpoint iteration, per-pass deltas.

``PassManager`` applies an ordered pass list repeatedly until a full round
leaves the circuit unchanged (or ``max_rounds`` is hit — the passes only
ever shrink or reorder, so in practice one or two rounds converge), and
returns a :class:`~repro.qcircuit.passes.report.PassRecord` for every
application that changed the circuit.

``default_pipeline`` maps the ``TranspileOptions.optimization_level`` knob
to a pipeline:

* **0** — no passes: bit-identical to plain lowering.
* **1** — local peephole only: rotation fusion + inverse cancellation.
* **2** (package default) — commuting-diagonal reordering to expose fusion
  across commuting layers, then ladder re-synthesis (when the basis allows
  ``rzz``/``cp``/``mcp``), then fusion and cancellation, iterated to
  fixpoint.  Re-synthesis runs *before* fusion so it sees the transpiler's
  pristine ladder emissions; fusion then cleans up the leftovers.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import TranspileError
from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.passes.base import CircuitPass
from repro.qcircuit.passes.cancellation import InverseCancellationPass
from repro.qcircuit.passes.commutation import CommuteDiagonalPass
from repro.qcircuit.passes.fusion import RotationFusionPass
from repro.qcircuit.passes.report import CircuitStats, PassRecord
from repro.qcircuit.passes.resynthesis import LadderResynthesisPass

#: Highest supported ``optimization_level``.
MAX_OPTIMIZATION_LEVEL = 2

#: The level used when callers do not choose one.
DEFAULT_OPTIMIZATION_LEVEL = 2


class PassManager:
    """Run an ordered pass pipeline to fixpoint, recording per-pass deltas."""

    def __init__(self, passes: Sequence[CircuitPass], max_rounds: int = 4) -> None:
        if max_rounds < 1:
            raise TranspileError("max_rounds must be at least 1")
        self.passes = tuple(passes)
        self.max_rounds = max_rounds

    def run(
        self, circuit: QuantumCircuit
    ) -> tuple[QuantumCircuit, tuple[PassRecord, ...]]:
        """Optimize ``circuit``; return it with the records of what changed."""
        current = circuit
        records: list[PassRecord] = []
        for round_index in range(1, self.max_rounds + 1):
            round_changed = False
            for circuit_pass in self.passes:
                before = current.instructions
                rewritten = circuit_pass.run(current)
                if rewritten.instructions == before:
                    continue
                round_changed = True
                records.append(
                    PassRecord(
                        pass_name=circuit_pass.name,
                        round_index=round_index,
                        before=CircuitStats.from_circuit(current),
                        after=CircuitStats.from_circuit(rewritten),
                    )
                )
                current = rewritten
            if not round_changed:
                break
        return current, tuple(records)


def default_pipeline(
    optimization_level: int, basis_gates: frozenset[str]
) -> tuple[CircuitPass, ...]:
    """The pass pipeline a given optimization level runs."""
    if not 0 <= optimization_level <= MAX_OPTIMIZATION_LEVEL:
        raise TranspileError(
            f"optimization_level must be between 0 and {MAX_OPTIMIZATION_LEVEL}, "
            f"got {optimization_level}"
        )
    if optimization_level == 0:
        return ()
    if optimization_level == 1:
        return (RotationFusionPass(), InverseCancellationPass())
    passes: list[CircuitPass] = [CommuteDiagonalPass()]
    resynthesis = LadderResynthesisPass(basis_gates)
    if not resynthesis.is_noop:
        passes.append(resynthesis)
    passes.extend((RotationFusionPass(), InverseCancellationPass()))
    return tuple(passes)
