"""Frozen, serializable transpilation reports.

Every optimized transpile produces a :class:`TranspileReport`: the metric
triple (size, depth, two-qubit count/ratio) of the circuit *before* lowering,
*after* lowering, and *after* optimization, plus a :class:`PassRecord` for
every pass application that changed the circuit.  Reports ride inside solver
result metadata (plain dicts via ``to_dict``), so each optimization pass is a
quantified, cacheable measurement rather than an invisible side effect — the
measurement-first reporting style of the per-circuit tables in
qiskit-zx-transpiler's ``benchmarks_output.txt``.

All metric values come from the one set of :class:`QuantumCircuit` helpers
(``size`` / ``depth`` / ``num_two_qubit_gates`` / ``two_qubit_ratio``), so
reports and circuit ``summary()`` lines can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.qcircuit.circuit import QuantumCircuit


@dataclass(frozen=True)
class CircuitStats:
    """The metric triple every report row carries."""

    size: int
    depth: int
    two_qubit_gates: int
    two_qubit_ratio: float

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "CircuitStats":
        return cls(
            size=circuit.size(),
            depth=circuit.depth(),
            two_qubit_gates=circuit.num_two_qubit_gates(),
            two_qubit_ratio=circuit.two_qubit_ratio(),
        )

    def to_dict(self) -> dict:
        return {
            "size": self.size,
            "depth": self.depth,
            "two_qubit_gates": self.two_qubit_gates,
            "two_qubit_ratio": self.two_qubit_ratio,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CircuitStats":
        return cls(
            size=int(payload["size"]),
            depth=int(payload["depth"]),
            two_qubit_gates=int(payload["two_qubit_gates"]),
            two_qubit_ratio=float(payload["two_qubit_ratio"]),
        )


@dataclass(frozen=True)
class PassRecord:
    """Before/after metrics of one pass application that changed the circuit."""

    pass_name: str
    round_index: int
    before: CircuitStats
    after: CircuitStats

    def to_dict(self) -> dict:
        return {
            "pass_name": self.pass_name,
            "round_index": self.round_index,
            "before": self.before.to_dict(),
            "after": self.after.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PassRecord":
        return cls(
            pass_name=str(payload["pass_name"]),
            round_index=int(payload["round_index"]),
            before=CircuitStats.from_dict(payload["before"]),
            after=CircuitStats.from_dict(payload["after"]),
        )


@dataclass(frozen=True)
class TranspileReport:
    """What one transpile did: source → lowered → optimized, pass by pass."""

    circuit_name: str
    num_qubits: int
    optimization_level: int
    basis_gates: tuple[str, ...]
    source: CircuitStats
    lowered: CircuitStats
    optimized: CircuitStats
    passes: tuple[PassRecord, ...] = ()

    # -- derived metrics -----------------------------------------------------

    def size_reduction(self) -> float:
        """Fractional size win of the optimizer over plain lowering."""
        return self._reduction(self.lowered.size, self.optimized.size)

    def depth_reduction(self) -> float:
        return self._reduction(self.lowered.depth, self.optimized.depth)

    def two_qubit_reduction(self) -> float:
        return self._reduction(
            self.lowered.two_qubit_gates, self.optimized.two_qubit_gates
        )

    @staticmethod
    def _reduction(before: int, after: int) -> float:
        if before == 0:
            return 0.0
        return (before - after) / before

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "circuit_name": self.circuit_name,
            "num_qubits": self.num_qubits,
            "optimization_level": self.optimization_level,
            "basis_gates": list(self.basis_gates),
            "source": self.source.to_dict(),
            "lowered": self.lowered.to_dict(),
            "optimized": self.optimized.to_dict(),
            "passes": [record.to_dict() for record in self.passes],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TranspileReport":
        return cls(
            circuit_name=str(payload["circuit_name"]),
            num_qubits=int(payload["num_qubits"]),
            optimization_level=int(payload["optimization_level"]),
            basis_gates=tuple(str(g) for g in payload["basis_gates"]),
            source=CircuitStats.from_dict(payload["source"]),
            lowered=CircuitStats.from_dict(payload["lowered"]),
            optimized=CircuitStats.from_dict(payload["optimized"]),
            passes=tuple(
                PassRecord.from_dict(record) for record in payload.get("passes", ())
            ),
        )

    # -- rendering ---------------------------------------------------------------

    def summary(self) -> str:
        """Per-circuit report table (lowered vs optimized, with ratios)."""
        lines = [
            f"{self.circuit_name}: {self.num_qubits} qubits, "
            f"optimization_level={self.optimization_level}",
            f"  size:      {self.lowered.size} -> {self.optimized.size} "
            f"(-{self.size_reduction():.1%})",
            f"  depth:     {self.lowered.depth} -> {self.optimized.depth} "
            f"(-{self.depth_reduction():.1%})",
            f"  two-qubit: {self.lowered.two_qubit_gates} -> "
            f"{self.optimized.two_qubit_gates} "
            f"(-{self.two_qubit_reduction():.1%}, "
            f"ratio {self.optimized.two_qubit_ratio:.2f})",
        ]
        for record in self.passes:
            lines.append(
                f"  [round {record.round_index}] {record.pass_name}: "
                f"size {record.before.size} -> {record.after.size}, "
                f"two-qubit {record.before.two_qubit_gates} -> "
                f"{record.after.two_qubit_gates}"
            )
        return "\n".join(lines)
