"""Symbolic circuit parameters.

Variational algorithms (QAOA, HEA, Choco-Q) build circuits whose rotation
angles are free parameters tuned by a classical optimiser.  This module
provides a tiny symbolic-parameter system: a :class:`Parameter` is a named
placeholder, a :class:`ParameterExpression` is a linear function
``coefficient * parameter + offset`` (enough for every ansatz in the paper),
and binding maps parameters to floats.

The design intentionally avoids a general symbolic engine: the paper's
ansaetze only ever need ``gamma``, ``beta``, scalar multiples and negation
(e.g. ``P(-beta)`` in the Lemma-2 decomposition).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Union

from repro.exceptions import ParameterError

_COUNTER = itertools.count()

Number = Union[int, float]
ParameterValue = Union["Parameter", "ParameterExpression", int, float]


@dataclass(frozen=True)
class Parameter:
    """A named symbolic parameter.

    Parameters are compared by identity (a unique id assigned at creation),
    so two parameters with the same name are distinct objects.  This matches
    the behaviour users expect when building several circuits with a shared
    template name like ``"beta"``.
    """

    name: str
    uid: int = field(default_factory=lambda: next(_COUNTER))

    def __mul__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(self, coefficient=float(other))

    __rmul__ = __mul__

    def __neg__(self) -> "ParameterExpression":
        return ParameterExpression(self, coefficient=-1.0)

    def __add__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(self, offset=float(other))

    __radd__ = __add__

    def __sub__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(self, offset=-float(other))

    def bind(self, values: Mapping["Parameter", float]) -> float:
        """Resolve this parameter to a float using ``values``."""
        if self not in values:
            raise ParameterError(f"parameter {self.name!r} is unbound")
        return float(values[self])

    @property
    def parameters(self) -> frozenset["Parameter"]:
        return frozenset({self})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name!r})"


@dataclass(frozen=True)
class ParameterExpression:
    """A linear expression ``coefficient * parameter + offset``."""

    parameter: Parameter
    coefficient: float = 1.0
    offset: float = 0.0

    def __mul__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(
            self.parameter,
            coefficient=self.coefficient * float(other),
            offset=self.offset * float(other),
        )

    __rmul__ = __mul__

    def __neg__(self) -> "ParameterExpression":
        return self * -1.0

    def __add__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(
            self.parameter,
            coefficient=self.coefficient,
            offset=self.offset + float(other),
        )

    __radd__ = __add__

    def __sub__(self, other: Number) -> "ParameterExpression":
        return self + (-float(other))

    def bind(self, values: Mapping[Parameter, float]) -> float:
        """Resolve the expression to a float using ``values``."""
        if self.parameter not in values:
            raise ParameterError(f"parameter {self.parameter.name!r} is unbound")
        return self.coefficient * float(values[self.parameter]) + self.offset

    @property
    def parameters(self) -> frozenset[Parameter]:
        return frozenset({self.parameter})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParameterExpression({self.coefficient!r} * "
            f"{self.parameter.name!r} + {self.offset!r})"
        )


def is_parameterized(value: ParameterValue) -> bool:
    """Return True when ``value`` still contains a symbolic parameter."""
    return isinstance(value, (Parameter, ParameterExpression))


def resolve(value: ParameterValue, values: Mapping[Parameter, float] | None = None) -> float:
    """Resolve ``value`` to a float, binding parameters from ``values``.

    Raises :class:`ParameterError` if ``value`` is symbolic and ``values``
    does not provide a binding for it.
    """
    if isinstance(value, (int, float)):
        return float(value)
    if values is None:
        raise ParameterError("cannot resolve a symbolic parameter without bindings")
    return value.bind(values)


def free_parameters(values: "list[ParameterValue]") -> frozenset[Parameter]:
    """Collect all distinct parameters appearing in ``values``."""
    found: set[Parameter] = set()
    for value in values:
        if is_parameterized(value):
            found.update(value.parameters)
    return frozenset(found)
