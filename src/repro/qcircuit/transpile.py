"""Transpilation of circuits to a NISQ basis gate set.

The evaluation in the paper reports *circuit depth after decomposition into
basic gates* (Table II, Fig. 12, Fig. 13).  This module lowers the high-level
gates emitted by the algorithm front-ends — most importantly the
multi-controlled phase gate ``P(beta)`` of Lemma 2 and the multi-controlled X
used by its reference decomposition — into the basis
``{x, sx, h, rz, cx, cz}``.

Key synthesis routines:

* ``cp`` → two CX and three RZ rotations (textbook identity),
* ``ccx`` (Toffoli) → 6 CX + 7 RZ(±pi/4) + 2 H (up to global phase),
* ``mcx`` with ``k`` controls → a V-chain of Toffolis over ``k - 2`` clean
  ancilla qubits (linear time and depth).  The paper re-uses only two
  ancillas via a borrowed-ancilla construction; we use the simpler clean
  V-chain, which has the same linear asymptotics (see DESIGN.md).
* ``mcp`` → compute the AND of all-but-one involved qubits into an ancilla
  chain, apply a controlled-phase against the remaining qubit, uncompute —
  again linear, matching Section IV-B's complexity claim,
* ``rxx`` / ``ryy`` / ``rzz`` → standard CX-conjugated RZ identities,
* opaque ``unitary`` gates (emitted only by the Trotter baseline) are kept
  as-is and charged an exponential synthesis penalty by
  :func:`depth_after_transpile`, reflecting the generic-synthesis cost the
  paper attributes to approximation-based decompositions.

After lowering, the optimization pass stack of :mod:`repro.qcircuit.passes`
runs according to ``TranspileOptions.optimization_level`` (level 0 skips it,
reproducing the plain lowering bit for bit), and
:func:`transpile_with_report` exposes a serializable per-circuit
:class:`~repro.qcircuit.passes.report.TranspileReport` of what every pass
changed.

Transpiled circuits are equivalent to their sources **up to global phase**,
which is irrelevant for all sampling-based metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import TranspileError
from repro.qcircuit.circuit import Instruction, QuantumCircuit
from repro.qcircuit.gates import BASIS_GATES, Gate
from repro.qcircuit.passes.manager import (
    DEFAULT_OPTIMIZATION_LEVEL,
    MAX_OPTIMIZATION_LEVEL,
    PassManager,
    default_pipeline,
)
from repro.qcircuit.passes.report import CircuitStats, TranspileReport


@dataclass(frozen=True)
class TranspileOptions:
    """Options controlling lowering and optimization.

    Attributes:
        basis_gates: target basis; instructions already in the basis pass
            through untouched.
        use_ancillas: allow allocating clean ancilla qubits for the
            linear-depth MCX/MCP constructions.  When False, the recursive
            (deeper) no-ancilla decomposition is used instead.
        optimization_level: which pass pipeline runs after lowering (see
            :func:`~repro.qcircuit.passes.manager.default_pipeline`).
            Level 0 skips optimization entirely and is bit-identical to the
            pre-pass-stack transpiler output.
    """

    basis_gates: frozenset[str] = BASIS_GATES
    use_ancillas: bool = True
    optimization_level: int = DEFAULT_OPTIMIZATION_LEVEL

    def __post_init__(self) -> None:
        if not 0 <= self.optimization_level <= MAX_OPTIMIZATION_LEVEL:
            raise TranspileError(
                "optimization_level must be between 0 and "
                f"{MAX_OPTIMIZATION_LEVEL}, got {self.optimization_level}"
            )


class Transpiler:
    """Lower a circuit to the basis gate set."""

    def __init__(self, options: TranspileOptions | None = None) -> None:
        self.options = options or TranspileOptions()

    # ------------------------------------------------------------------

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Return an equivalent circuit (up to global phase) in the basis.

        The output may have more qubits than the input when ancillas are
        required; ancillas occupy the highest indices and always start and
        end in ``|0>``.
        """
        num_ancillas = self._required_ancillas(circuit)
        total_qubits = circuit.num_qubits + num_ancillas
        lowered = QuantumCircuit(total_qubits, name=f"{circuit.name}_t")
        ancillas = list(range(circuit.num_qubits, total_qubits))
        for instruction in circuit:
            if instruction.is_directive:
                lowered.append_instruction(instruction)
                continue
            self._lower_instruction(lowered, instruction, ancillas)
        return lowered

    # ------------------------------------------------------------------

    def _required_ancillas(self, circuit: QuantumCircuit) -> int:
        if not self.options.use_ancillas:
            return 0
        needed = 0
        for instruction in circuit:
            name = instruction.gate.name
            if name == "mcx":
                k = instruction.gate.num_controls
                needed = max(needed, max(0, k - 2))
            elif name == "mcp":
                # mcp involves k controls + 1 target = k + 1 qubits; the AND
                # of k of them is computed into a ladder of k - 1 ancillas.
                k = instruction.gate.num_controls
                needed = max(needed, max(0, k - 1))
        return needed

    def _lower_instruction(
        self, output: QuantumCircuit, instruction: Instruction, ancillas: list[int]
    ) -> None:
        gate = instruction.gate
        qubits = instruction.qubits
        name = gate.name
        if name in self.options.basis_gates:
            output.append(gate, qubits)
            return
        if name == "id":
            return
        if name in ("s", "sdg", "t", "tdg", "z", "p"):
            self._lower_phase_like(output, name, gate, qubits[0])
            return
        if name == "y":
            output.rz(math.pi, qubits[0])
            output.x(qubits[0])
            return
        if name in ("rx", "ry"):
            self._lower_rotation(output, name, float(gate.params[0]), qubits[0])
            return
        if name == "swap":
            output.cx(qubits[0], qubits[1])
            output.cx(qubits[1], qubits[0])
            output.cx(qubits[0], qubits[1])
            return
        if name == "cp":
            self._lower_cp(output, float(gate.params[0]), qubits[0], qubits[1])
            return
        if name == "rzz":
            theta = float(gate.params[0])
            output.cx(qubits[0], qubits[1])
            output.rz(theta, qubits[1])
            output.cx(qubits[0], qubits[1])
            return
        if name == "rxx":
            theta = float(gate.params[0])
            output.h(qubits[0])
            output.h(qubits[1])
            output.cx(qubits[0], qubits[1])
            output.rz(theta, qubits[1])
            output.cx(qubits[0], qubits[1])
            output.h(qubits[0])
            output.h(qubits[1])
            return
        if name == "ryy":
            theta = float(gate.params[0])
            for q in (qubits[0], qubits[1]):
                output.rz(math.pi / 2, q)
                output.h(q)
            output.cx(qubits[0], qubits[1])
            output.rz(theta, qubits[1])
            output.cx(qubits[0], qubits[1])
            for q in (qubits[0], qubits[1]):
                output.h(q)
                output.rz(-math.pi / 2, q)
            return
        if name == "mcx":
            self._lower_mcx(output, list(qubits[:-1]), qubits[-1], ancillas)
            return
        if name == "mcp":
            self._lower_mcp(output, float(gate.params[0]), list(qubits), ancillas)
            return
        if name == "unitary":
            # Arbitrary unitaries are kept opaque; they only occur in the
            # Trotter baseline, whose deployability the paper also rejects.
            output.append(gate, qubits)
            return
        raise TranspileError(f"cannot lower gate {name!r} to the basis")

    # ------------------------------------------------------------------
    # Single-qubit helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _lower_phase_like(output: QuantumCircuit, name: str, gate: Gate, qubit: int) -> None:
        angles = {
            "z": math.pi,
            "s": math.pi / 2,
            "sdg": -math.pi / 2,
            "t": math.pi / 4,
            "tdg": -math.pi / 4,
        }
        theta = float(gate.params[0]) if name == "p" else angles[name]
        # P(theta) and RZ(theta) differ only by a global phase, which is
        # irrelevant for sampling probabilities once fully decomposed.
        output.rz(theta, qubit)

    @staticmethod
    def _lower_rotation(output: QuantumCircuit, name: str, theta: float, qubit: int) -> None:
        if name == "rx":
            output.h(qubit)
            output.rz(theta, qubit)
            output.h(qubit)
        else:  # ry: RY(theta) = RZ(pi/2) RX(theta) RZ(-pi/2) as operators
            output.rz(-math.pi / 2, qubit)
            output.h(qubit)
            output.rz(theta, qubit)
            output.h(qubit)
            output.rz(math.pi / 2, qubit)

    @staticmethod
    def _lower_cp(output: QuantumCircuit, theta: float, control: int, target: int) -> None:
        output.rz(theta / 2, control)
        output.cx(control, target)
        output.rz(-theta / 2, target)
        output.cx(control, target)
        output.rz(theta / 2, target)

    # ------------------------------------------------------------------
    # Multi-controlled gates
    # ------------------------------------------------------------------

    def _lower_ccx(self, output: QuantumCircuit, c0: int, c1: int, target: int) -> None:
        """Standard 6-CX Toffoli decomposition (up to global phase)."""
        output.h(target)
        output.cx(c1, target)
        output.rz(-math.pi / 4, target)
        output.cx(c0, target)
        output.rz(math.pi / 4, target)
        output.cx(c1, target)
        output.rz(-math.pi / 4, target)
        output.cx(c0, target)
        output.rz(math.pi / 4, c1)
        output.rz(math.pi / 4, target)
        output.h(target)
        output.cx(c0, c1)
        output.rz(math.pi / 4, c0)
        output.rz(-math.pi / 4, c1)
        output.cx(c0, c1)

    def _lower_mcx(
        self, output: QuantumCircuit, controls: list[int], target: int, ancillas: list[int]
    ) -> None:
        k = len(controls)
        if k == 0:
            output.x(target)
            return
        if k == 1:
            output.cx(controls[0], target)
            return
        if k == 2:
            self._lower_ccx(output, controls[0], controls[1], target)
            return
        free = [a for a in ancillas if a != target and a not in controls]
        if self.options.use_ancillas and len(free) >= k - 2:
            self._mcx_vchain(output, controls, target, free[: k - 2])
            return
        # No-ancilla fallback: C^k X = H_t . C^k Z . H_t with the recursive
        # controlled-phase cascade (deeper, but always available).
        output.h(target)
        self._mcp_recursive(output, math.pi, controls + [target])
        output.h(target)

    def _mcx_vchain(
        self, output: QuantumCircuit, controls: list[int], target: int, ancillas: list[int]
    ) -> None:
        """V-chain MCX: compute partial ANDs up a Toffoli ladder, flip, uncompute."""
        k = len(controls)
        assert len(ancillas) >= k - 2
        compute: list[tuple[int, int, int]] = []
        self._lower_ccx(output, controls[0], controls[1], ancillas[0])
        compute.append((controls[0], controls[1], ancillas[0]))
        for i in range(2, k - 1):
            self._lower_ccx(output, controls[i], ancillas[i - 2], ancillas[i - 1])
            compute.append((controls[i], ancillas[i - 2], ancillas[i - 1]))
        self._lower_ccx(output, controls[k - 1], ancillas[k - 3], target)
        for c0, c1, t in reversed(compute):
            self._lower_ccx(output, c0, c1, t)

    def _lower_mcp(
        self, output: QuantumCircuit, theta: float, qubits: list[int], ancillas: list[int]
    ) -> None:
        """Lower a multi-controlled phase over the qubit set ``qubits``.

        The gate is symmetric in its qubits (it phases the all-ones state),
        so we compute the AND of all but the last qubit into an ancilla chain
        and apply a controlled-phase between the chain head and the last
        qubit, then uncompute — linear depth, exactly the complexity claimed
        in Section IV-B.
        """
        k = len(qubits)
        if k == 1:
            output.rz(theta, qubits[0])
            return
        if k == 2:
            self._lower_cp(output, theta, qubits[0], qubits[1])
            return
        free = [a for a in ancillas if a not in qubits]
        if self.options.use_ancillas and len(free) >= k - 2:
            chain = free[: k - 2]
            compute: list[tuple[int, int, int]] = []
            self._lower_ccx(output, qubits[0], qubits[1], chain[0])
            compute.append((qubits[0], qubits[1], chain[0]))
            for i in range(2, k - 1):
                self._lower_ccx(output, qubits[i], chain[i - 2], chain[i - 1])
                compute.append((qubits[i], chain[i - 2], chain[i - 1]))
            self._lower_cp(output, theta, chain[k - 3], qubits[k - 1])
            for c0, c1, t in reversed(compute):
                self._lower_ccx(output, c0, c1, t)
            return
        self._mcp_recursive(output, theta, qubits)

    def _mcp_recursive(self, output: QuantumCircuit, theta: float, qubits: list[int]) -> None:
        """Ancilla-free recursive multi-controlled phase (deeper circuits)."""
        k = len(qubits)
        if k == 1:
            output.rz(theta, qubits[0])
            return
        if k == 2:
            self._lower_cp(output, theta, qubits[0], qubits[1])
            return
        head, last = qubits[:-1], qubits[-1]
        self._lower_cp(output, theta / 2, head[-1], last)
        self._lower_mcx(output, head[:-1], head[-1], [])
        self._lower_cp(output, -theta / 2, head[-1], last)
        self._lower_mcx(output, head[:-1], head[-1], [])
        self._mcp_recursive(output, theta / 2, head[:-1] + [last])


def transpile(circuit: QuantumCircuit, options: TranspileOptions | None = None) -> QuantumCircuit:
    """Lower to the basis, then optimize per ``options.optimization_level``.

    At ``optimization_level=0`` the output is bit-identical to the plain
    :class:`Transpiler` lowering (the pre-pass-stack behaviour).
    """
    return transpile_with_report(circuit, options)[0]


def transpile_with_report(
    circuit: QuantumCircuit, options: TranspileOptions | None = None
) -> tuple[QuantumCircuit, TranspileReport]:
    """Transpile and report what lowering and every optimization pass did."""
    options = options or TranspileOptions()
    source_stats = CircuitStats.from_circuit(circuit)
    lowered = Transpiler(options).run(circuit)
    lowered_stats = CircuitStats.from_circuit(lowered)
    pipeline = default_pipeline(options.optimization_level, options.basis_gates)
    if pipeline:
        optimized, records = PassManager(pipeline).run(lowered)
    else:
        optimized, records = lowered, ()
    report = TranspileReport(
        circuit_name=circuit.name,
        num_qubits=optimized.num_qubits,
        optimization_level=options.optimization_level,
        basis_gates=tuple(sorted(options.basis_gates)),
        source=source_stats,
        lowered=lowered_stats,
        optimized=CircuitStats.from_circuit(optimized),
        passes=records,
    )
    return optimized, report


def unitary_synthesis_penalty(circuit: QuantumCircuit) -> int:
    """Pessimistic synthesis cost of the opaque ``unitary`` gates in a circuit.

    A ``k``-qubit unitary is charged ``4**k - 1`` basic gates, reflecting the
    exponential cost of generic unitary synthesis discussed in Section IV-B
    of the paper (only the Trotter baseline emits such gates).
    """
    penalty = 0
    for instruction in circuit:
        if instruction.gate.name == "unitary":
            k = len(instruction.qubits)
            penalty += max(4**k - 1, 0)
    return penalty


def depth_after_transpile(
    circuit: QuantumCircuit, options: TranspileOptions | None = None
) -> int:
    """Depth of the circuit after transpilation to the basis gate set.

    Opaque ``unitary`` gates are charged the exponential
    :func:`unitary_synthesis_penalty` on top of the structural depth.
    """
    transpiled = transpile(circuit, options)
    return transpiled.depth() + unitary_synthesis_penalty(transpiled)


def gate_counts_after_transpile(
    circuit: QuantumCircuit, options: TranspileOptions | None = None
) -> dict[str, int]:
    """Gate-name histogram after transpilation to the basis gate set."""
    return transpile(circuit, options).count_ops()
