"""Gate-level quantum circuit intermediate representation.

:class:`QuantumCircuit` is an ordered list of :class:`Instruction` objects,
each pairing a :class:`~repro.qcircuit.gates.Gate` with the qubit indices it
acts on.  The IR supports:

* builder methods for every gate in the library (``circuit.h(0)``,
  ``circuit.cx(0, 1)``, ``circuit.mcp(theta, controls, target)`` ...),
* measurement and barrier markers,
* symbolic parameters and binding (:meth:`QuantumCircuit.bind`),
* composition, inversion, and deep copies,
* depth and gate-count accounting (used heavily by the evaluation section).

Qubit ordering is little-endian throughout the package: qubit 0 is the
least-significant bit of a computational basis index, so the basis state
``|q_{n-1} ... q_1 q_0>`` has index ``sum_i q_i 2^i``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import CircuitError
from repro.qcircuit.gates import (
    Gate,
    mcp_gate,
    mcx_gate,
    standard_gate,
    unitary_gate,
)
from repro.qcircuit.parameters import Parameter, ParameterValue


@dataclass(frozen=True)
class Instruction:
    """A gate (or directive) applied to a specific tuple of qubits."""

    gate: Gate
    qubits: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate qubits in instruction: {self.qubits}")
        if self.gate.name not in ("measure", "barrier") and len(self.qubits) != self.gate.num_qubits:
            raise CircuitError(
                f"gate {self.gate.name!r} expects {self.gate.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def is_directive(self) -> bool:
        """Directives (measure / barrier) carry no unitary."""
        return self.gate.name in ("measure", "barrier")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instruction({self.gate.name!r}, qubits={self.qubits})"


class QuantumCircuit:
    """An ordered sequence of gate instructions on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._instructions: list[Instruction] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    @property
    def instructions(self) -> tuple[Instruction, ...]:
        return tuple(self._instructions)

    # ------------------------------------------------------------------
    # Low-level append
    # ------------------------------------------------------------------

    def append(self, gate: Gate, qubits: Sequence[int]) -> "QuantumCircuit":
        """Append ``gate`` on ``qubits`` (validates the indices)."""
        qubits = tuple(int(q) for q in qubits)
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise CircuitError(
                    f"qubit index {qubit} out of range for a {self.num_qubits}-qubit circuit"
                )
        self._instructions.append(Instruction(gate, qubits))
        return self

    def append_instruction(self, instruction: Instruction) -> "QuantumCircuit":
        """Append an existing :class:`Instruction`, directives included.

        The public path for cloning or rewriting circuits instruction by
        instruction (e.g. the noise model's trajectory sampling): qubit
        indices are validated against this circuit's register, and
        measure/barrier directives — whose qubit count does not match their
        gate arity — are carried over as-is.
        """
        if instruction.is_directive:
            for qubit in instruction.qubits:
                if not 0 <= qubit < self.num_qubits:
                    raise CircuitError(
                        f"qubit index {qubit} out of range for a "
                        f"{self.num_qubits}-qubit circuit"
                    )
            self._instructions.append(instruction)
            return self
        return self.append(instruction.gate, instruction.qubits)

    def extend(self, instructions: Iterable[Instruction]) -> "QuantumCircuit":
        for instruction in instructions:
            self.append_instruction(instruction)
        return self

    # ------------------------------------------------------------------
    # Builder methods: single-qubit gates
    # ------------------------------------------------------------------

    def i(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("id"), [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("x"), [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("y"), [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("z"), [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("h"), [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("s"), [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("sdg"), [qubit])

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("t"), [qubit])

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("tdg"), [qubit])

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("sx"), [qubit])

    def rx(self, theta: ParameterValue, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("rx", theta), [qubit])

    def ry(self, theta: ParameterValue, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("ry", theta), [qubit])

    def rz(self, theta: ParameterValue, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("rz", theta), [qubit])

    def p(self, theta: ParameterValue, qubit: int) -> "QuantumCircuit":
        return self.append(standard_gate("p", theta), [qubit])

    # ------------------------------------------------------------------
    # Builder methods: two-qubit gates
    # ------------------------------------------------------------------

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard_gate("cx"), [control, target])

    def cz(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(standard_gate("cz"), [qubit_a, qubit_b])

    def cp(self, theta: ParameterValue, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard_gate("cp", theta), [control, target])

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(standard_gate("swap"), [qubit_a, qubit_b])

    def rxx(self, theta: ParameterValue, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(standard_gate("rxx", theta), [qubit_a, qubit_b])

    def ryy(self, theta: ParameterValue, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(standard_gate("ryy", theta), [qubit_a, qubit_b])

    def rzz(self, theta: ParameterValue, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(standard_gate("rzz", theta), [qubit_a, qubit_b])

    # ------------------------------------------------------------------
    # Builder methods: multi-qubit gates and directives
    # ------------------------------------------------------------------

    def mcx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multi-controlled X. Controls precede the target in operand order."""
        return self.append(mcx_gate(len(controls)), [*controls, target])

    def mcp(self, theta: ParameterValue, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multi-controlled phase, Eq. (15): phases the all-ones state."""
        return self.append(mcp_gate(len(controls), theta), [*controls, target])

    def unitary(self, matrix: np.ndarray, qubits: Sequence[int], label: str | None = None) -> "QuantumCircuit":
        return self.append(unitary_gate(matrix, label=label), qubits)

    def barrier(self, qubits: Sequence[int] | None = None) -> "QuantumCircuit":
        qubits = tuple(range(self.num_qubits)) if qubits is None else tuple(qubits)
        gate = Gate("barrier", max(len(qubits), 1))
        self._instructions.append(Instruction(gate, qubits))
        return self

    def measure_all(self) -> "QuantumCircuit":
        gate = Gate("measure", self.num_qubits)
        self._instructions.append(Instruction(gate, tuple(range(self.num_qubits))))
        return self

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------

    @property
    def parameters(self) -> frozenset[Parameter]:
        """All free symbolic parameters in appearance order (as a set)."""
        found: set[Parameter] = set()
        for instruction in self._instructions:
            found.update(instruction.gate.free_parameters)
        return frozenset(found)

    @property
    def is_parameterized(self) -> bool:
        return any(inst.gate.is_parameterized for inst in self._instructions)

    def bind(self, values: Mapping[Parameter, float]) -> "QuantumCircuit":
        """Return a copy of the circuit with parameters bound to floats."""
        bound = QuantumCircuit(self.num_qubits, name=self.name)
        for instruction in self._instructions:
            bound._instructions.append(
                Instruction(instruction.gate.bind(values), instruction.qubits)
            )
        return bound

    # ------------------------------------------------------------------
    # Composition and transformation
    # ------------------------------------------------------------------

    def copy(self) -> "QuantumCircuit":
        duplicate = QuantumCircuit(self.num_qubits, name=self.name)
        duplicate._instructions = list(self._instructions)
        return duplicate

    def compose(self, other: "QuantumCircuit", qubits: Sequence[int] | None = None) -> "QuantumCircuit":
        """Append ``other`` onto this circuit (in place) and return self.

        ``qubits`` maps the other circuit's qubit ``i`` to ``qubits[i]`` of
        this circuit; by default the identity mapping is used.
        """
        if qubits is None:
            if other.num_qubits > self.num_qubits:
                raise CircuitError("composed circuit has more qubits than the host")
            mapping = list(range(other.num_qubits))
        else:
            mapping = [int(q) for q in qubits]
            if len(mapping) != other.num_qubits:
                raise CircuitError("qubit mapping length must match the composed circuit")
        for instruction in other:
            mapped = tuple(mapping[q] for q in instruction.qubits)
            if instruction.is_directive:
                self._instructions.append(Instruction(instruction.gate, mapped))
            else:
                self.append(instruction.gate, mapped)
        return self

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit (reversed order, inverted gates)."""
        inverted = QuantumCircuit(self.num_qubits, name=f"{self.name}_dg")
        for instruction in reversed(self._instructions):
            if instruction.is_directive:
                continue
            inverted.append(instruction.gate.inverse(), instruction.qubits)
        return inverted

    def remove_directives(self) -> "QuantumCircuit":
        """Return a copy without measurement / barrier directives."""
        stripped = QuantumCircuit(self.num_qubits, name=self.name)
        for instruction in self._instructions:
            if not instruction.is_directive:
                stripped._instructions.append(instruction)
        return stripped

    def deepcopy(self) -> "QuantumCircuit":
        return copy.deepcopy(self)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def count_ops(self) -> dict[str, int]:
        """Return a histogram of gate names (excluding barriers)."""
        counts: dict[str, int] = {}
        for instruction in self._instructions:
            if instruction.name == "barrier":
                continue
            counts[instruction.name] = counts.get(instruction.name, 0) + 1
        return counts

    def size(self) -> int:
        """Total number of gate instructions (excluding directives)."""
        return sum(1 for inst in self._instructions if not inst.is_directive)

    def num_two_qubit_gates(self) -> int:
        return sum(
            1
            for inst in self._instructions
            if not inst.is_directive and len(inst.qubits) == 2
        )

    def two_qubit_ratio(self) -> float:
        """Fraction of gate instructions that are two-qubit (0.0 when empty).

        The non-local-gate ratio the transpile reports track: entangling
        gates dominate error budgets on hardware, so optimization passes are
        scored primarily on how far they push this number down.
        """
        size = self.size()
        if size == 0:
            return 0.0
        return self.num_two_qubit_gates() / size

    def depth(self) -> int:
        """Circuit depth: the longest chain of gates over any qubit timeline.

        Barriers synchronise the qubits they cover; measurements count as a
        layer on the measured qubits.
        """
        frontier = [0] * self.num_qubits
        for instruction in self._instructions:
            if instruction.name == "barrier":
                if instruction.qubits:
                    level = max(frontier[q] for q in instruction.qubits)
                    for qubit in instruction.qubits:
                        frontier[qubit] = level
                continue
            level = max(frontier[q] for q in instruction.qubits) + 1
            for qubit in instruction.qubits:
                frontier[qubit] = level
        return max(frontier) if frontier else 0

    def qubits_used(self) -> frozenset[int]:
        used: set[int] = set()
        for instruction in self._instructions:
            if not instruction.is_directive:
                used.update(instruction.qubits)
        return frozenset(used)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"size={self.size()}, depth={self.depth()})"
        )

    def summary(self) -> str:
        """A short multi-line human readable description of the circuit."""
        ops = ", ".join(f"{name}:{count}" for name, count in sorted(self.count_ops().items()))
        return (
            f"{self.name}: {self.num_qubits} qubits, {self.size()} gates, "
            f"depth {self.depth()}, two-qubit {self.num_two_qubit_gates()} "
            f"({self.two_qubit_ratio():.1%})\n  ops: {ops}"
        )
