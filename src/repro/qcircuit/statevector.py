"""Dense statevector simulator.

The simulator executes a :class:`~repro.qcircuit.circuit.QuantumCircuit` on a
complex NumPy vector of length ``2**num_qubits``.  Gates are applied by
reshaping the state into a tensor and contracting the gate matrix over the
axes of its operand qubits, which keeps every gate application
``O(2**n * 4**k)`` for a ``k``-qubit gate regardless of which qubits it
touches.

Qubit ordering is little-endian (qubit 0 = least significant bit), matching
the rest of the package.  The simulator also records intermediate "snapshot"
statistics used by the parallelism analysis of Fig. 9(b): the number of
computational basis states with non-negligible amplitude after each gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.qcircuit.circuit import Instruction, QuantumCircuit
from repro.qcircuit.parameters import Parameter

#: Probability below which a basis state does not count toward the measured
#: support (shared by :meth:`Statevector.support_size` and the simulator's
#: per-gate support trace for the Fig. 9(b) parallelism analysis).
DEFAULT_SUPPORT_TOLERANCE = 1e-9


def abs_squared(amplitudes: np.ndarray) -> np.ndarray:
    """Elementwise ``|z|^2`` without the intermediate ``np.abs`` array.

    ``z.real**2 + z.imag**2`` skips both the square root ``np.abs`` computes
    and the full-size magnitude temporary it allocates — this sits on the
    hot sampling/support path, where every histogram and support count
    reduces a complete amplitude vector.  (The optimizer's cost reduction
    deliberately keeps ``np.abs(...)**2``: the two round differently in the
    last ulp and the optimization trajectory is pinned bit-for-bit by the
    cross-backend equivalence tests.)
    """
    amplitudes = np.asarray(amplitudes)
    if np.iscomplexobj(amplitudes):
        return amplitudes.real**2 + amplitudes.imag**2
    return np.square(amplitudes).astype(float, copy=False)


def state_support_size(
    amplitudes: np.ndarray, tolerance: float = DEFAULT_SUPPORT_TOLERANCE
) -> int:
    """Number of basis states of a raw amplitude vector with probability above ``tolerance``."""
    return int(np.count_nonzero(abs_squared(amplitudes) > tolerance))


#: Fallback generator for ad-hoc/interactive sampling without a
#: caller-provided rng.  Seeded, so even unthreaded sampling reproduces
#: run-to-run; every library path threads a SeedSequence-derived rng and
#: never touches this.
_FALLBACK_RNG = np.random.default_rng(0x5EED)


def sample_histogram(
    probabilities: np.ndarray,
    shots: int,
    key_of,
    rng: np.random.Generator | None = None,
) -> dict[str, int]:
    """Sample ``shots`` outcomes from a probability vector into a histogram.

    The single sampling loop shared by the dense, probability-vector and
    subspace histogram constructors; ``key_of(index)`` maps a sampled index
    to its histogram key (e.g. a bitstring).
    """
    rng = _FALLBACK_RNG if rng is None else rng
    probabilities = np.asarray(probabilities, dtype=float)
    probabilities = probabilities / probabilities.sum()
    outcomes = rng.choice(len(probabilities), size=shots, p=probabilities)
    counts: dict[str, int] = {}
    # Accumulate rather than comprehend: key_of need not be injective (a
    # caller may key by a coarsened register), and colliding keys must add.
    for index, count in zip(*np.unique(outcomes, return_counts=True)):
        key = key_of(int(index))
        counts[key] = counts.get(key, 0) + int(count)
    return counts


@dataclass
class Statevector:
    """A normalized quantum state over ``num_qubits`` qubits."""

    data: np.ndarray
    num_qubits: int

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """The all-zeros computational basis state ``|0...0>``."""
        data = np.zeros(2**num_qubits, dtype=complex)
        data[0] = 1.0
        return cls(data=data, num_qubits=num_qubits)

    @classmethod
    def from_bitstring(cls, bits: Sequence[int]) -> "Statevector":
        """Build a basis state from a bit assignment ``bits[i]`` for qubit i."""
        num_qubits = len(bits)
        index = 0
        for qubit, bit in enumerate(bits):
            if bit not in (0, 1):
                raise SimulationError(f"bit values must be 0/1, got {bit!r}")
            index |= int(bit) << qubit
        data = np.zeros(2**num_qubits, dtype=complex)
        data[index] = 1.0
        return cls(data=data, num_qubits=num_qubits)

    @classmethod
    def uniform_superposition(cls, num_qubits: int) -> "Statevector":
        """The state produced by a layer of Hadamards on ``|0...0>``."""
        dim = 2**num_qubits
        data = np.full(dim, 1.0 / np.sqrt(dim), dtype=complex)
        return cls(data=data, num_qubits=num_qubits)

    # ------------------------------------------------------------------

    def copy(self) -> "Statevector":
        return Statevector(data=self.data.copy(), num_qubits=self.num_qubits)

    def probabilities(self) -> np.ndarray:
        """Measurement probabilities for every basis index."""
        return abs_squared(self.data)

    def probability_of(self, bits: Sequence[int]) -> float:
        """Probability of measuring the given bit assignment."""
        index = 0
        for qubit, bit in enumerate(bits):
            index |= int(bit) << qubit
        return float(abs(self.data[index]) ** 2)

    def expectation_diagonal(self, diagonal: np.ndarray) -> float:
        """Expectation value of a diagonal operator given as a real vector."""
        probabilities = self.probabilities()
        return float(np.real(np.dot(probabilities, diagonal)))

    def expectation(self, operator: np.ndarray) -> complex:
        """Expectation value of a dense operator matrix."""
        return complex(np.vdot(self.data, operator @ self.data))

    def inner(self, other: "Statevector") -> complex:
        return complex(np.vdot(self.data, other.data))

    def fidelity(self, other: "Statevector") -> float:
        return float(abs(self.inner(other)) ** 2)

    def support_size(self, tolerance: float = DEFAULT_SUPPORT_TOLERANCE) -> int:
        """Number of basis states with probability above ``tolerance``.

        This is the "number of measured states" statistic plotted in
        Fig. 9(b) as a proxy for harvested quantum parallelism.
        """
        return state_support_size(self.data, tolerance)

    def sample_counts(self, shots: int, rng: np.random.Generator | None = None) -> dict[str, int]:
        """Sample measurement outcomes; keys are little-endian bitstrings.

        The returned keys are strings like ``"0110"`` where character ``i``
        (from the left) is the value of qubit ``i``.
        """
        return sample_histogram(
            self.probabilities(),
            shots,
            lambda index: index_to_bitstring(index, self.num_qubits),
            rng=rng,
        )

    def to_dict(self, tolerance: float = 1e-12) -> dict[str, complex]:
        """Sparse dictionary of non-negligible amplitudes keyed by bitstring."""
        indices = np.flatnonzero(np.abs(self.data) > tolerance)
        return {
            index_to_bitstring(int(index), self.num_qubits): complex(self.data[index])
            for index in indices
        }


def index_to_bitstring(index: int, num_qubits: int) -> str:
    """Convert a basis index to a little-endian bitstring (qubit 0 first)."""
    return "".join(str((index >> qubit) & 1) for qubit in range(num_qubits))


def bitstring_to_index(bits: str | Sequence[int]) -> int:
    """Convert a little-endian bitstring (qubit 0 first) to a basis index."""
    index = 0
    for qubit, bit in enumerate(bits):
        index |= int(bit) << qubit
    return index


@dataclass
class SimulationResult:
    """Output of a statevector simulation run."""

    statevector: Statevector
    support_trace: list[int] = field(default_factory=list)
    gate_count: int = 0

    def probabilities(self) -> np.ndarray:
        return self.statevector.probabilities()


class StatevectorSimulator:
    """Executes circuits by dense statevector evolution.

    Args:
        max_qubits: guard against accidentally simulating states too large to
            fit in memory; raises :class:`SimulationError` beyond this.
        record_support: when True, record the basis-state support size after
            every gate (used for the Fig. 9(b) parallelism analysis).
    """

    def __init__(self, max_qubits: int = 24, record_support: bool = False) -> None:
        self.max_qubits = max_qubits
        self.record_support = record_support

    # ------------------------------------------------------------------

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Statevector | Sequence[int] | None = None,
        parameter_values: Mapping[Parameter, float] | None = None,
    ) -> SimulationResult:
        """Simulate ``circuit`` and return the final state.

        Args:
            circuit: the circuit to execute (measurements/barriers ignored).
            initial_state: a :class:`Statevector`, a bit assignment, or
                ``None`` for ``|0...0>``.
            parameter_values: bindings for any free parameters.
        """
        if circuit.num_qubits > self.max_qubits:
            raise SimulationError(
                f"circuit has {circuit.num_qubits} qubits, exceeding the simulator "
                f"limit of {self.max_qubits}"
            )
        if circuit.is_parameterized:
            if parameter_values is None:
                raise SimulationError("circuit has unbound parameters")
            circuit = circuit.bind(parameter_values)

        state = self._prepare_state(circuit.num_qubits, initial_state)
        support_trace: list[int] = []
        gate_count = 0
        for instruction in circuit:
            if instruction.is_directive:
                continue
            state = _apply_instruction(state, instruction, circuit.num_qubits)
            gate_count += 1
            if self.record_support:
                support_trace.append(state_support_size(state))
        final = Statevector(data=state, num_qubits=circuit.num_qubits)
        return SimulationResult(
            statevector=final, support_trace=support_trace, gate_count=gate_count
        )

    def statevector(
        self,
        circuit: QuantumCircuit,
        initial_state: Statevector | Sequence[int] | None = None,
        parameter_values: Mapping[Parameter, float] | None = None,
    ) -> Statevector:
        """Convenience wrapper returning just the final state."""
        return self.run(circuit, initial_state, parameter_values).statevector

    # ------------------------------------------------------------------

    @staticmethod
    def _prepare_state(
        num_qubits: int, initial_state: Statevector | Sequence[int] | None
    ) -> np.ndarray:
        if initial_state is None:
            return Statevector.zero_state(num_qubits).data
        if isinstance(initial_state, Statevector):
            if initial_state.num_qubits != num_qubits:
                raise SimulationError(
                    "initial state qubit count does not match the circuit"
                )
            return initial_state.data.astype(complex).copy()
        return Statevector.from_bitstring(list(initial_state)).data


def _apply_instruction(state: np.ndarray, instruction: Instruction, num_qubits: int) -> np.ndarray:
    """Apply one gate to the dense state via tensor contraction."""
    matrix = instruction.gate.to_matrix()
    qubits = instruction.qubits
    return apply_matrix(state, matrix, qubits, num_qubits)


def apply_matrix(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` matrix to the given qubits of a dense state.

    The state is viewed as a rank-``n`` tensor whose axis ``a`` corresponds to
    qubit ``n - 1 - a`` (NumPy's C ordering puts the most significant bit on
    axis 0).  The gate matrix is reshaped to a rank-``2k`` tensor and
    contracted over the operand axes.
    """
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise SimulationError(
            f"matrix of shape {matrix.shape} cannot act on {k} qubit(s)"
        )
    tensor = state.reshape([2] * num_qubits)
    # Gate matrix as a tensor: output axes correspond to operands in reverse
    # (operand k-1 is the most significant local bit, i.e. the first axis).
    gate_tensor = matrix.reshape([2] * (2 * k))
    # Axis of qubit q in the state tensor:
    axes = [num_qubits - 1 - q for q in qubits]
    # Contract gate input axes (the last k axes of gate_tensor, ordered from
    # most-significant operand to least) with the state axes.
    input_axes = list(range(k, 2 * k))
    # gate input axis k + j corresponds to local bit (k-1-j) => operand k-1-j
    state_axes = [axes[k - 1 - j] for j in range(k)]
    contracted = np.tensordot(gate_tensor, tensor, axes=(input_axes, state_axes))
    # tensordot puts the gate output axes first (ordered msb..lsb operand),
    # followed by the remaining state axes in their original relative order.
    remaining = [axis for axis in range(num_qubits) if axis not in state_axes]
    current_order = state_axes + remaining
    # We want to invert the permutation so axis i of the result is qubit
    # n-1-i again.
    permutation = [0] * num_qubits
    for position, axis in enumerate(current_order):
        permutation[axis] = position
    result = np.transpose(contracted, permutation)
    return result.reshape(2**num_qubits)
