"""Gate library for the circuit IR.

Each gate is represented as a :class:`Gate` instance carrying its name, the
number of qubits it acts on, optional rotation parameters (which may be
symbolic, see :mod:`repro.qcircuit.parameters`), and a way to materialise its
unitary matrix once parameters are bound.

The library covers everything the paper's circuits need:

* single-qubit gates: ``I, X, Y, Z, H, S, Sdg, T, Tdg, RX, RY, RZ, P`` (phase)
* two-qubit gates: ``CX, CZ, CP, SWAP, RXX, RYY, RZZ``
* multi-qubit gates: ``MCX`` (multi-controlled X), ``MCP`` (multi-controlled
  phase) — the building blocks of the Lemma-2 decomposition
* ``UnitaryGate`` — an arbitrary dense unitary, used by the Trotter baseline
  and by exact Hamiltonian evolution.

Matrices follow the little-endian qubit-ordering convention used throughout
the simulator: qubit 0 is the least-significant bit of a basis-state index.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import GateError
from repro.qcircuit.parameters import (
    Parameter,
    ParameterValue,
    free_parameters,
    is_parameterized,
    resolve,
)

# ---------------------------------------------------------------------------
# Constant matrices
# ---------------------------------------------------------------------------

_I2 = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_SDG = np.array([[1, 0], [0, -1j]], dtype=complex)
_T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
_TDG = np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]], dtype=complex
    )


def _phase(theta: float) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * theta)]], dtype=complex)


def _rzz(theta: float) -> np.ndarray:
    diag = np.array(
        [
            cmath.exp(-1j * theta / 2),
            cmath.exp(1j * theta / 2),
            cmath.exp(1j * theta / 2),
            cmath.exp(-1j * theta / 2),
        ]
    )
    return np.diag(diag)


def _rxx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    mat = np.eye(4, dtype=complex) * c
    mat[0, 3] = mat[3, 0] = -1j * s
    mat[1, 2] = mat[2, 1] = -1j * s
    return mat


def _ryy(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    mat = np.eye(4, dtype=complex) * c
    mat[0, 3] = mat[3, 0] = 1j * s
    mat[1, 2] = mat[2, 1] = -1j * s
    return mat


# Local operand convention: operand 0 (the control) is the least-significant
# bit of the 2-qubit block index, operand 1 (the target) the most-significant.
# CX maps the local index c + 2t to c + 2(t XOR c).
_CX = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
    ],
    dtype=complex,
)

_CZ = np.diag([1, 1, 1, -1]).astype(complex)

_SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)


def _controlled_phase(theta: float) -> np.ndarray:
    return np.diag([1, 1, 1, cmath.exp(1j * theta)]).astype(complex)


# ---------------------------------------------------------------------------
# Gate specification table
# ---------------------------------------------------------------------------

_SINGLE_QUBIT_CONST = {
    "id": _I2,
    "x": _X,
    "y": _Y,
    "z": _Z,
    "h": _H,
    "s": _S,
    "sdg": _SDG,
    "t": _T,
    "tdg": _TDG,
    "sx": _SX,
}

_SINGLE_QUBIT_ROTATION = {
    "rx": _rx,
    "ry": _ry,
    "rz": _rz,
    "p": _phase,
}

_TWO_QUBIT_CONST = {
    "cx": _CX,
    "cz": _CZ,
    "swap": _SWAP,
}

_TWO_QUBIT_ROTATION = {
    "cp": _controlled_phase,
    "rxx": _rxx,
    "ryy": _ryy,
    "rzz": _rzz,
}

# Gate names the transpiler treats as "basic" for NISQ deployment.
BASIS_GATES = frozenset({"id", "x", "sx", "h", "rz", "cx", "cz"})

# Approximate gate durations in seconds, loosely modelled on IBM Heron/Eagle
# specifications; used by the latency model (Fig. 11).
DEFAULT_GATE_DURATIONS = {
    "id": 35e-9,
    "x": 35e-9,
    "sx": 35e-9,
    "h": 35e-9,
    "rz": 0.0,  # virtual-Z
    "p": 0.0,
    "rx": 35e-9,
    "ry": 35e-9,
    "cx": 300e-9,
    "cz": 90e-9,
    "cp": 300e-9,
    "swap": 900e-9,
    "rxx": 350e-9,
    "ryy": 350e-9,
    "rzz": 350e-9,
    "measure": 1200e-9,
    "barrier": 0.0,
}


@dataclass(frozen=True)
class Gate:
    """An instance of a quantum gate.

    Attributes:
        name: lower-case gate identifier (``"h"``, ``"cx"``, ``"mcx"`` ...).
        num_qubits: number of qubits the gate acts on.
        params: rotation angles; may contain symbolic parameters.
        matrix: explicit unitary for ``"unitary"`` gates, ``None`` otherwise.
        num_controls: for ``mcx`` / ``mcp``, the number of control qubits.
        label: optional human-readable annotation (kept through transpilation).
    """

    name: str
    num_qubits: int
    params: tuple[ParameterValue, ...] = ()
    matrix: np.ndarray | None = field(default=None, compare=False)
    num_controls: int = 0
    label: str | None = None

    # -- construction helpers ------------------------------------------------

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise GateError(f"gate {self.name!r} must act on at least one qubit")
        if self.name == "unitary" and self.matrix is None:
            raise GateError("unitary gate requires an explicit matrix")

    # -- properties -----------------------------------------------------------

    @property
    def is_parameterized(self) -> bool:
        """True if any rotation angle is still symbolic."""
        return any(is_parameterized(p) for p in self.params)

    @property
    def free_parameters(self) -> frozenset[Parameter]:
        return free_parameters(list(self.params))

    # -- binding and matrices --------------------------------------------------

    def bind(self, values: Mapping[Parameter, float]) -> "Gate":
        """Return a copy with all symbolic parameters replaced by floats."""
        if not self.is_parameterized:
            return self
        bound = tuple(resolve(p, values) for p in self.params)
        return Gate(
            name=self.name,
            num_qubits=self.num_qubits,
            params=bound,
            matrix=self.matrix,
            num_controls=self.num_controls,
            label=self.label,
        )

    def to_matrix(self) -> np.ndarray:
        """Return the gate unitary as a dense ``2^k x 2^k`` array.

        Raises :class:`GateError` if parameters are unbound.
        """
        if self.is_parameterized:
            raise GateError(
                f"cannot build a matrix for gate {self.name!r} with unbound parameters"
            )
        params = [float(p) for p in self.params]
        name = self.name
        if name == "unitary":
            assert self.matrix is not None
            return np.asarray(self.matrix, dtype=complex)
        if name in _SINGLE_QUBIT_CONST:
            return _SINGLE_QUBIT_CONST[name].copy()
        if name in _SINGLE_QUBIT_ROTATION:
            return _SINGLE_QUBIT_ROTATION[name](params[0])
        if name in _TWO_QUBIT_CONST:
            return _TWO_QUBIT_CONST[name].copy()
        if name in _TWO_QUBIT_ROTATION:
            return _TWO_QUBIT_ROTATION[name](params[0])
        if name == "mcx":
            return _mcx_matrix(self.num_qubits)
        if name == "mcp":
            return _mcp_matrix(self.num_qubits, params[0])
        raise GateError(f"unknown gate {name!r}")

    def inverse(self) -> "Gate":
        """Return the inverse gate (adjoint)."""
        name = self.name
        if name in ("id", "x", "y", "z", "h", "cx", "cz", "swap", "mcx"):
            return self
        if name == "s":
            return Gate("sdg", 1)
        if name == "sdg":
            return Gate("s", 1)
        if name == "t":
            return Gate("tdg", 1)
        if name == "tdg":
            return Gate("t", 1)
        if name in _SINGLE_QUBIT_ROTATION or name in _TWO_QUBIT_ROTATION or name == "mcp":
            negated = tuple(-p if isinstance(p, (int, float)) else -p for p in self.params)
            return Gate(
                name,
                self.num_qubits,
                params=negated,
                num_controls=self.num_controls,
                label=self.label,
            )
        if name == "sx":
            return Gate("unitary", 1, matrix=_SX.conj().T)
        if name == "unitary":
            assert self.matrix is not None
            return Gate("unitary", self.num_qubits, matrix=np.asarray(self.matrix).conj().T)
        raise GateError(f"cannot invert gate {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.params:
            return f"Gate({self.name!r}, params={self.params})"
        return f"Gate({self.name!r})"


def _mcx_matrix(num_qubits: int) -> np.ndarray:
    """Multi-controlled X: controls are operands ``0..k-2``, target is the last.

    In the little-endian block convention the controls occupy the low bits of
    the local index and the target the high bit.
    """
    dim = 2**num_qubits
    mat = np.eye(dim, dtype=complex)
    num_controls = num_qubits - 1
    control_mask = (1 << num_controls) - 1
    target_bit = 1 << num_controls
    for idx in range(dim):
        if idx & control_mask == control_mask and not idx & target_bit:
            partner = idx | target_bit
            mat[idx, idx] = 0
            mat[partner, partner] = 0
            mat[idx, partner] = 1
            mat[partner, idx] = 1
    return mat


def _mcp_matrix(num_qubits: int, theta: float) -> np.ndarray:
    """Multi-controlled phase: adds ``exp(i theta)`` to the all-ones state."""
    dim = 2**num_qubits
    diag = np.ones(dim, dtype=complex)
    diag[dim - 1] = cmath.exp(1j * theta)
    return np.diag(diag)


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def standard_gate(name: str, *params: ParameterValue) -> Gate:
    """Build a standard gate by name, validating arity."""
    name = name.lower()
    if name in _SINGLE_QUBIT_CONST:
        _expect_params(name, params, 0)
        return Gate(name, 1)
    if name in _SINGLE_QUBIT_ROTATION:
        _expect_params(name, params, 1)
        return Gate(name, 1, params=tuple(params))
    if name in _TWO_QUBIT_CONST:
        _expect_params(name, params, 0)
        return Gate(name, 2)
    if name in _TWO_QUBIT_ROTATION:
        _expect_params(name, params, 1)
        return Gate(name, 2, params=tuple(params))
    raise GateError(f"unknown standard gate {name!r}")


def mcx_gate(num_controls: int) -> Gate:
    """A multi-controlled X with ``num_controls`` controls and one target."""
    if num_controls < 1:
        raise GateError("mcx requires at least one control")
    return Gate("mcx", num_controls + 1, num_controls=num_controls)


def mcp_gate(num_controls: int, theta: ParameterValue) -> Gate:
    """A multi-controlled phase on ``num_controls + 1`` qubits.

    The phase ``exp(i theta)`` is applied to the all-ones computational basis
    state of the involved qubits, matching Eq. (15) of the paper.
    """
    if num_controls < 0:
        raise GateError("mcp requires a non-negative number of controls")
    return Gate("mcp", num_controls + 1, params=(theta,), num_controls=num_controls)


def unitary_gate(matrix: np.ndarray, label: str | None = None) -> Gate:
    """Wrap an arbitrary unitary matrix as a gate."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GateError("unitary gate requires a square matrix")
    dim = matrix.shape[0]
    num_qubits = int(round(math.log2(dim)))
    if 2**num_qubits != dim:
        raise GateError("unitary dimension must be a power of two")
    if not np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-8):
        raise GateError("matrix is not unitary")
    return Gate("unitary", num_qubits, matrix=matrix, label=label)


def _expect_params(name: str, params: Sequence[ParameterValue], count: int) -> None:
    if len(params) != count:
        raise GateError(f"gate {name!r} expects {count} parameter(s), got {len(params)}")
