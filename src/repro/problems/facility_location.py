"""Facility location problem (FLP) instances.

The paper's first application domain (refs. [17], [37]): choose which
facilities to open and how to assign demand points to them so that the total
opening plus service cost is minimal.

Binary-variable formulation (with slack variables so every constraint is the
linear *equality* the framework requires):

* ``y_j``        — facility ``j`` is opened,
* ``x_ij``       — demand point ``i`` is served by facility ``j``,
* ``s_ij``       — slack turning the linking inequality ``x_ij <= y_j`` into
  the equality ``x_ij - y_j + s_ij = 0``.

Objective (minimize):  ``sum_j f_j y_j + sum_ij c_ij x_ij``

Constraints:
  * assignment: ``sum_j x_ij = 1`` for every demand point ``i``;
  * linking:    ``x_ij - y_j + s_ij = 0`` for every pair ``(i, j)``.

The paper's benchmark naming (``F1: 2F-1D`` = two facilities, one demand
point, 6 variables and 3 constraints) is reproduced by
:func:`facility_location_problem`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.exceptions import ProblemError


@dataclass(frozen=True)
class FacilityLocationInstance:
    """Raw data of one FLP instance."""

    num_facilities: int
    num_demands: int
    opening_costs: tuple[float, ...]
    service_costs: tuple[tuple[float, ...], ...]  # [demand][facility]

    @property
    def num_variables(self) -> int:
        return self.num_facilities + 2 * self.num_facilities * self.num_demands

    @property
    def num_constraints(self) -> int:
        return self.num_demands + self.num_facilities * self.num_demands


def random_facility_location(
    num_facilities: int,
    num_demands: int,
    seed: int | None = None,
    cost_range: tuple[float, float] = (1.0, 10.0),
    opening_range: tuple[float, float] = (2.0, 12.0),
) -> FacilityLocationInstance:
    """Generate a random FLP instance with integer-valued costs."""
    if num_facilities < 1 or num_demands < 1:
        raise ProblemError("FLP needs at least one facility and one demand point")
    rng = np.random.default_rng(seed)
    opening = tuple(
        float(rng.integers(int(opening_range[0]), int(opening_range[1]) + 1))
        for _ in range(num_facilities)
    )
    service = tuple(
        tuple(
            float(rng.integers(int(cost_range[0]), int(cost_range[1]) + 1))
            for _ in range(num_facilities)
        )
        for _ in range(num_demands)
    )
    return FacilityLocationInstance(
        num_facilities=num_facilities,
        num_demands=num_demands,
        opening_costs=opening,
        service_costs=service,
    )


def variable_layout(num_facilities: int, num_demands: int) -> dict[str, int]:
    """Map symbolic variable names (y_j, x_ij, s_ij) to register indices.

    Layout: first the ``y_j``, then all ``x_ij`` (demand-major), then all
    ``s_ij`` in the same order.
    """
    layout: dict[str, int] = {}
    index = 0
    for j in range(num_facilities):
        layout[f"y{j}"] = index
        index += 1
    for i in range(num_demands):
        for j in range(num_facilities):
            layout[f"x{i}_{j}"] = index
            index += 1
    for i in range(num_demands):
        for j in range(num_facilities):
            layout[f"s{i}_{j}"] = index
            index += 1
    return layout


def facility_location_problem(
    instance: FacilityLocationInstance, name: str | None = None
) -> ConstrainedBinaryProblem:
    """Build the :class:`ConstrainedBinaryProblem` for an FLP instance."""
    nf, nd = instance.num_facilities, instance.num_demands
    layout = variable_layout(nf, nd)
    num_variables = instance.num_variables

    objective = Objective()
    for j in range(nf):
        objective.add_term((layout[f"y{j}"],), instance.opening_costs[j])
    for i in range(nd):
        for j in range(nf):
            objective.add_term((layout[f"x{i}_{j}"],), instance.service_costs[i][j])

    constraints: list[LinearConstraint] = []
    # Assignment: each demand point served exactly once.
    for i in range(nd):
        coefficients = [0.0] * num_variables
        for j in range(nf):
            coefficients[layout[f"x{i}_{j}"]] = 1.0
        constraints.append(LinearConstraint(tuple(coefficients), 1.0))
    # Linking: x_ij - y_j + s_ij = 0.
    for i in range(nd):
        for j in range(nf):
            coefficients = [0.0] * num_variables
            coefficients[layout[f"x{i}_{j}"]] = 1.0
            coefficients[layout[f"y{j}"]] = -1.0
            coefficients[layout[f"s{i}_{j}"]] = 1.0
            constraints.append(LinearConstraint(tuple(coefficients), 0.0))

    variable_names = [""] * num_variables
    for symbol, index in layout.items():
        variable_names[index] = symbol
    return ConstrainedBinaryProblem(
        num_variables=num_variables,
        objective=objective,
        constraints=constraints,
        sense="min",
        name=name or f"flp-{nf}F-{nd}D",
        variable_names=variable_names,
    )
