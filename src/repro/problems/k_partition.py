"""K-partition problem (KPP) instances.

The paper's third application domain (ref. [11]): split the vertices of a
weighted graph into ``k`` equally sized blocks so that the total weight of
edges *cut* by the partition is minimal (equivalently, the within-block edge
weight is maximal).

Binary-variable formulation:

* ``x_vb`` — vertex ``v`` is placed in block ``b``.

Constraints (both in the *summation format* the cyclic baseline supports,
which is why the paper notes the cyclic Hamiltonian performs best on KPP):
  * one block per vertex:   ``sum_b x_vb = 1``;
  * balanced blocks:        ``sum_v x_vb = num_vertices / k`` for every ``b``.

Objective (maximize): the weight of edges whose endpoints share a block,
``sum_{(u,v) in E} w_uv sum_b x_ub x_vb`` — a quadratic polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.exceptions import ProblemError


@dataclass(frozen=True)
class KPartitionInstance:
    """Raw data of one KPP instance."""

    num_vertices: int
    edges: tuple[tuple[int, int], ...]
    weights: tuple[float, ...]
    num_blocks: int

    def __post_init__(self) -> None:
        if self.num_vertices % self.num_blocks != 0:
            raise ProblemError("num_vertices must be divisible by num_blocks")
        if len(self.edges) != len(self.weights):
            raise ProblemError("edges and weights must have the same length")

    @property
    def block_size(self) -> int:
        return self.num_vertices // self.num_blocks

    @property
    def num_variables(self) -> int:
        return self.num_vertices * self.num_blocks

    @property
    def num_constraints(self) -> int:
        return self.num_vertices + self.num_blocks


def random_k_partition(
    num_vertices: int,
    num_edges: int,
    num_blocks: int = 2,
    seed: int | None = None,
    weight_range: tuple[int, int] = (1, 9),
) -> KPartitionInstance:
    """Generate a random weighted graph for the k-partition problem."""
    if num_vertices < 2:
        raise ProblemError("KPP needs at least two vertices")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ProblemError(f"at most {max_edges} edges possible for {num_vertices} vertices")
    rng = np.random.default_rng(seed)
    all_edges = [
        (u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)
    ]
    chosen = rng.choice(len(all_edges), size=num_edges, replace=False)
    edges = tuple(all_edges[i] for i in sorted(chosen))
    weights = tuple(
        float(rng.integers(weight_range[0], weight_range[1] + 1)) for _ in edges
    )
    return KPartitionInstance(
        num_vertices=num_vertices,
        edges=edges,
        weights=weights,
        num_blocks=num_blocks,
    )


def partition_graph(instance: KPartitionInstance) -> nx.Graph:
    """The instance as a weighted NetworkX graph."""
    graph = nx.Graph()
    graph.add_nodes_from(range(instance.num_vertices))
    for (u, v), w in zip(instance.edges, instance.weights):
        graph.add_edge(u, v, weight=w)
    return graph


def variable_index(instance: KPartitionInstance, vertex: int, block: int) -> int:
    """Register index of ``x_{vertex, block}`` (vertex-major layout)."""
    return vertex * instance.num_blocks + block


def k_partition_problem(
    instance: KPartitionInstance, name: str | None = None
) -> ConstrainedBinaryProblem:
    """Build the :class:`ConstrainedBinaryProblem` for a KPP instance."""
    num_variables = instance.num_variables

    objective = Objective()
    for (u, v), weight in zip(instance.edges, instance.weights):
        for block in range(instance.num_blocks):
            objective.add_term(
                (variable_index(instance, u, block), variable_index(instance, v, block)),
                weight,
            )

    constraints: list[LinearConstraint] = []
    for vertex in range(instance.num_vertices):
        coefficients = [0.0] * num_variables
        for block in range(instance.num_blocks):
            coefficients[variable_index(instance, vertex, block)] = 1.0
        constraints.append(LinearConstraint(tuple(coefficients), 1.0))
    for block in range(instance.num_blocks):
        coefficients = [0.0] * num_variables
        for vertex in range(instance.num_vertices):
            coefficients[variable_index(instance, vertex, block)] = 1.0
        constraints.append(LinearConstraint(tuple(coefficients), float(instance.block_size)))

    variable_names = [
        f"x{vertex}_{block}"
        for vertex in range(instance.num_vertices)
        for block in range(instance.num_blocks)
    ]
    return ConstrainedBinaryProblem(
        num_variables=num_variables,
        objective=objective,
        constraints=constraints,
        sense="max",
        name=name
        or f"kpp-{instance.num_vertices}V-{len(instance.edges)}E-{instance.num_blocks}B",
        variable_names=variable_names,
    )


def partition_from_assignment(
    instance: KPartitionInstance, assignment: "tuple[int, ...] | list[int]"
) -> dict[int, int]:
    """Decode a register assignment into a vertex -> block mapping."""
    partition: dict[int, int] = {}
    for vertex in range(instance.num_vertices):
        for block in range(instance.num_blocks):
            if assignment[variable_index(instance, vertex, block)] == 1:
                partition[vertex] = block
    return partition


def cut_weight(instance: KPartitionInstance, partition: dict[int, int]) -> float:
    """Total weight of edges crossing blocks under a partition."""
    total = 0.0
    for (u, v), weight in zip(instance.edges, instance.weights):
        if partition.get(u) != partition.get(v):
            total += weight
    return total
