"""Application domains evaluated in the paper: facility location (FLP),
graph coloring (GCP) and k-partition (KPP), plus the Table-II benchmark
suite (F1-F4, G1-G4, K1-K4)."""

from repro.problems.benchmark_suite import (
    DOMAIN_OF_SCALE,
    SCALE_NAMES,
    BenchmarkSpec,
    benchmark_specs,
    full_suite,
    get_spec,
    iter_benchmark_cases,
    make_benchmark,
)
from repro.problems.facility_location import (
    FacilityLocationInstance,
    facility_location_problem,
    random_facility_location,
)
from repro.problems.graph_coloring import (
    GraphColoringInstance,
    coloring_from_assignment,
    coloring_graph,
    graph_coloring_problem,
    is_proper_coloring,
    random_graph_coloring,
)
from repro.problems.k_partition import (
    KPartitionInstance,
    cut_weight,
    k_partition_problem,
    partition_from_assignment,
    partition_graph,
    random_k_partition,
)

__all__ = [
    "BenchmarkSpec",
    "DOMAIN_OF_SCALE",
    "FacilityLocationInstance",
    "GraphColoringInstance",
    "KPartitionInstance",
    "SCALE_NAMES",
    "benchmark_specs",
    "coloring_from_assignment",
    "coloring_graph",
    "cut_weight",
    "facility_location_problem",
    "full_suite",
    "get_spec",
    "graph_coloring_problem",
    "is_proper_coloring",
    "iter_benchmark_cases",
    "k_partition_problem",
    "make_benchmark",
    "partition_from_assignment",
    "partition_graph",
    "random_facility_location",
    "random_graph_coloring",
    "random_k_partition",
]
