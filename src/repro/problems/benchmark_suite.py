"""The benchmark suite: F1-F4, G1-G4, K1-K4.

Section V-A evaluates the solvers on four problem scales per application
domain.  The original suite contains 400 literature-derived cases with up to
28 variables; running those requires the authors' GPU simulator, so this
module provides the laptop-scale substitute documented in DESIGN.md: seeded
synthetic generators at four scales per domain, with the largest instances
capped so that dense statevector simulation stays tractable (<= 16 qubits).

Scales (variables / constraints):

============  ==================  ==========  ===========
benchmark     configuration        variables   constraints
============  ==================  ==========  ===========
F1            2 facilities, 1 demand        6            3
F2            2 facilities, 2 demands      10            6
F3            2 facilities, 3 demands      14            9
F4            3 facilities, 2 demands      15           11
G1            3 vertices, 1 edge, 2 colors  8            5
G2            3 vertices, 2 edges, 2 colors 10            7
G3            4 vertices, 3 edges, 2 colors 14           10
G4            4 vertices, 4 edges, 2 colors 16           12
K1            4 vertices, 3 edges, 2 blocks  8            6
K2            6 vertices, 5 edges, 2 blocks 12            8
K3            6 vertices, 8 edges, 2 blocks 12            8
K4            8 vertices, 8 edges, 2 blocks 16           10
============  ==================  ==========  ===========

Every generator is deterministic given ``(scale, case_index)`` so benchmark
tables are reproducible run-to-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.problem import ConstrainedBinaryProblem
from repro.exceptions import ProblemError
from repro.problems.facility_location import (
    facility_location_problem,
    random_facility_location,
)
from repro.problems.graph_coloring import graph_coloring_problem, random_graph_coloring
from repro.problems.k_partition import k_partition_problem, random_k_partition


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of the benchmark table: a named scale of one domain."""

    name: str
    domain: str
    parameters: dict
    description: str


_FLP_SCALES = {
    "F1": {"num_facilities": 2, "num_demands": 1},
    "F2": {"num_facilities": 2, "num_demands": 2},
    "F3": {"num_facilities": 2, "num_demands": 3},
    "F4": {"num_facilities": 3, "num_demands": 2},
}

_GCP_SCALES = {
    "G1": {"num_vertices": 3, "num_edges": 1, "num_colors": 2},
    "G2": {"num_vertices": 3, "num_edges": 2, "num_colors": 2},
    "G3": {"num_vertices": 4, "num_edges": 3, "num_colors": 2},
    "G4": {"num_vertices": 4, "num_edges": 4, "num_colors": 2},
}

_KPP_SCALES = {
    "K1": {"num_vertices": 4, "num_edges": 3, "num_blocks": 2},
    "K2": {"num_vertices": 6, "num_edges": 5, "num_blocks": 2},
    "K3": {"num_vertices": 6, "num_edges": 8, "num_blocks": 2},
    "K4": {"num_vertices": 8, "num_edges": 8, "num_blocks": 2},
}


def benchmark_specs() -> list[BenchmarkSpec]:
    """All twelve benchmark scales in Table-II order."""
    specs: list[BenchmarkSpec] = []
    for name, parameters in _FLP_SCALES.items():
        specs.append(
            BenchmarkSpec(
                name=name,
                domain="flp",
                parameters=dict(parameters),
                description=f"{parameters['num_facilities']}F-{parameters['num_demands']}D",
            )
        )
    for name, parameters in _GCP_SCALES.items():
        specs.append(
            BenchmarkSpec(
                name=name,
                domain="gcp",
                parameters=dict(parameters),
                description=(
                    f"{parameters['num_vertices']}V-{parameters['num_edges']}E-"
                    f"{parameters['num_colors']}C"
                ),
            )
        )
    for name, parameters in _KPP_SCALES.items():
        specs.append(
            BenchmarkSpec(
                name=name,
                domain="kpp",
                parameters=dict(parameters),
                description=(
                    f"{parameters['num_vertices']}V-{parameters['num_edges']}E-"
                    f"{parameters['num_blocks']}B"
                ),
            )
        )
    return specs


def get_spec(name: str) -> BenchmarkSpec:
    """Look up one benchmark scale by its Table-II name (F1 ... K4)."""
    for spec in benchmark_specs():
        if spec.name == name.upper():
            return spec
    raise ProblemError(f"unknown benchmark {name!r}; expected F1-F4, G1-G4 or K1-K4")


def _build(spec: BenchmarkSpec, seed: int) -> ConstrainedBinaryProblem:
    if spec.domain == "flp":
        instance = random_facility_location(seed=seed, **spec.parameters)
        return facility_location_problem(instance, name=f"{spec.name}:{spec.description}#{seed}")
    if spec.domain == "gcp":
        instance = random_graph_coloring(seed=seed, **spec.parameters)
        return graph_coloring_problem(instance, name=f"{spec.name}:{spec.description}#{seed}")
    if spec.domain == "kpp":
        instance = random_k_partition(seed=seed, **spec.parameters)
        return k_partition_problem(instance, name=f"{spec.name}:{spec.description}#{seed}")
    raise ProblemError(f"unknown domain {spec.domain!r}")


def make_benchmark(name: str, case_index: int = 0) -> ConstrainedBinaryProblem:
    """Instantiate one reproducible case of a benchmark scale.

    ``case_index`` selects which of the (arbitrarily many) seeded cases to
    build, mirroring the paper's per-scale case collections.
    """
    spec = get_spec(name)
    seed = _case_seed(spec, case_index)
    return _build(spec, seed)


def iter_benchmark_cases(name: str, num_cases: int) -> Iterator[ConstrainedBinaryProblem]:
    """Yield ``num_cases`` reproducible instances of one benchmark scale."""
    for case_index in range(num_cases):
        yield make_benchmark(name, case_index)


def _case_seed(spec: BenchmarkSpec, case_index: int) -> int:
    base = {"flp": 1000, "gcp": 2000, "kpp": 3000}[spec.domain]
    scale_offset = int(spec.name[1:]) * 100
    return base + scale_offset + case_index


def full_suite(num_cases_per_scale: int = 1) -> dict[str, list[ConstrainedBinaryProblem]]:
    """The whole Table-II suite as a mapping ``scale name -> cases``."""
    suite: dict[str, list[ConstrainedBinaryProblem]] = {}
    for spec in benchmark_specs():
        suite[spec.name] = list(iter_benchmark_cases(spec.name, num_cases_per_scale))
    return suite


SCALE_NAMES: tuple[str, ...] = tuple(spec.name for spec in benchmark_specs())

DOMAIN_OF_SCALE: dict[str, str] = {spec.name: spec.domain for spec in benchmark_specs()}

BUILDERS: dict[str, Callable[[int], ConstrainedBinaryProblem]] = {
    spec.name: (lambda case_index, _name=spec.name: make_benchmark(_name, case_index))
    for spec in benchmark_specs()
}
