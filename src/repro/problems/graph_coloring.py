"""Graph coloring problem (GCP) instances.

The paper's second application domain (ref. [26]): assign one of ``k`` colors
to every vertex so that adjacent vertices receive different colors, while
minimizing a per-color usage cost (a standard linear surrogate that prefers
low-index colors, making the optimum unique for generic weights).

Binary-variable formulation with slack variables (equality constraints only):

* ``x_vc``  — vertex ``v`` gets color ``c``,
* ``s_ec``  — slack for edge ``e = (u, v)`` and color ``c`` turning the
  conflict inequality ``x_uc + x_vc <= 1`` into
  ``x_uc + x_vc + s_ec = 1``.

Constraints:
  * one color per vertex: ``sum_c x_vc = 1``;
  * conflict per (edge, color): ``x_uc + x_vc + s_ec = 1``.

Note that the conflict rows mix several vertices' variables across colors,
which is exactly the "complex constraints sharing variables" regime where the
cyclic-Hamiltonian baseline loses its encoding (Section III) and Choco-Q's
generality pays off.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.exceptions import ProblemError


@dataclass(frozen=True)
class GraphColoringInstance:
    """Raw data of one GCP instance."""

    num_vertices: int
    edges: tuple[tuple[int, int], ...]
    num_colors: int
    color_costs: tuple[float, ...]

    @property
    def num_variables(self) -> int:
        return self.num_vertices * self.num_colors + len(self.edges) * self.num_colors

    @property
    def num_constraints(self) -> int:
        return self.num_vertices + len(self.edges) * self.num_colors


def random_graph_coloring(
    num_vertices: int,
    num_edges: int,
    num_colors: int = 2,
    seed: int | None = None,
) -> GraphColoringInstance:
    """Generate a random graph with ``num_edges`` edges that is k-colorable.

    Edges are sampled without replacement from the complete graph, but only
    edge sets whose graph is colorable with ``num_colors`` colors are kept
    (checked with a greedy coloring / bipartiteness test), so the resulting
    optimization problem always has a feasible assignment.  The color usage
    costs are small distinct integers so the optimum is generically unique.
    """
    if num_vertices < 2:
        raise ProblemError("GCP needs at least two vertices")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ProblemError(f"at most {max_edges} edges possible for {num_vertices} vertices")
    if num_colors < 2:
        raise ProblemError("GCP needs at least two colors")
    rng = np.random.default_rng(seed)
    all_edges = [
        (u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)
    ]
    color_costs = tuple(float(1 + c) for c in range(num_colors))
    for _attempt in range(200):
        if num_colors == 2:
            # Guarantee bipartiteness by sampling edges across a random split.
            side = rng.permutation(num_vertices)
            left = set(side[: max(1, num_vertices // 2)].tolist())
            candidates = [
                (u, v) for (u, v) in all_edges if (u in left) != (v in left)
            ]
        else:
            candidates = all_edges
        if num_edges > len(candidates):
            raise ProblemError(
                f"cannot place {num_edges} edges in a {num_colors}-colorable graph "
                f"on {num_vertices} vertices"
            )
        chosen = rng.choice(len(candidates), size=num_edges, replace=False)
        edges = tuple(candidates[i] for i in sorted(chosen))
        graph = nx.Graph()
        graph.add_nodes_from(range(num_vertices))
        graph.add_edges_from(edges)
        if num_colors == 2:
            colorable = nx.is_bipartite(graph)
        else:
            greedy = nx.coloring.greedy_color(graph, strategy="DSATUR")
            colorable = (max(greedy.values(), default=0) + 1) <= num_colors
        if colorable:
            return GraphColoringInstance(
                num_vertices=num_vertices,
                edges=edges,
                num_colors=num_colors,
                color_costs=color_costs,
            )
    raise ProblemError(
        f"failed to generate a {num_colors}-colorable graph with {num_edges} edges"
    )


def coloring_graph(instance: GraphColoringInstance) -> nx.Graph:
    """The instance as a NetworkX graph (used by examples and tests)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(instance.num_vertices))
    graph.add_edges_from(instance.edges)
    return graph


def variable_layout(instance: GraphColoringInstance) -> dict[str, int]:
    """Map symbolic names (x{v}_{c}, s{e}_{c}) to register indices."""
    layout: dict[str, int] = {}
    index = 0
    for v in range(instance.num_vertices):
        for c in range(instance.num_colors):
            layout[f"x{v}_{c}"] = index
            index += 1
    for e in range(len(instance.edges)):
        for c in range(instance.num_colors):
            layout[f"s{e}_{c}"] = index
            index += 1
    return layout


def graph_coloring_problem(
    instance: GraphColoringInstance, name: str | None = None
) -> ConstrainedBinaryProblem:
    """Build the :class:`ConstrainedBinaryProblem` for a GCP instance."""
    layout = variable_layout(instance)
    num_variables = instance.num_variables

    objective = Objective()
    for v in range(instance.num_vertices):
        for c in range(instance.num_colors):
            objective.add_term((layout[f"x{v}_{c}"],), instance.color_costs[c])

    constraints: list[LinearConstraint] = []
    for v in range(instance.num_vertices):
        coefficients = [0.0] * num_variables
        for c in range(instance.num_colors):
            coefficients[layout[f"x{v}_{c}"]] = 1.0
        constraints.append(LinearConstraint(tuple(coefficients), 1.0))
    for e, (u, v) in enumerate(instance.edges):
        for c in range(instance.num_colors):
            coefficients = [0.0] * num_variables
            coefficients[layout[f"x{u}_{c}"]] = 1.0
            coefficients[layout[f"x{v}_{c}"]] = 1.0
            coefficients[layout[f"s{e}_{c}"]] = 1.0
            constraints.append(LinearConstraint(tuple(coefficients), 1.0))

    variable_names = [""] * num_variables
    for symbol, index in layout.items():
        variable_names[index] = symbol
    return ConstrainedBinaryProblem(
        num_variables=num_variables,
        objective=objective,
        constraints=constraints,
        sense="min",
        name=name or f"gcp-{instance.num_vertices}V-{len(instance.edges)}E-{instance.num_colors}C",
        variable_names=variable_names,
    )


def coloring_from_assignment(
    instance: GraphColoringInstance, assignment: "tuple[int, ...] | list[int]"
) -> dict[int, int]:
    """Decode a register assignment into a vertex -> color mapping."""
    layout = variable_layout(instance)
    coloring: dict[int, int] = {}
    for v in range(instance.num_vertices):
        for c in range(instance.num_colors):
            if assignment[layout[f"x{v}_{c}"]] == 1:
                coloring[v] = c
    return coloring


def is_proper_coloring(instance: GraphColoringInstance, coloring: dict[int, int]) -> bool:
    """Check that adjacent vertices received different colors."""
    if len(coloring) != instance.num_vertices:
        return False
    return all(coloring[u] != coloring[v] for u, v in instance.edges)
