"""Declarative experiment plans and the parallel batch runner.

The paper's evaluation is a grid of (solver x problem x seed) runs; this
module makes that grid a first-class, serializable object:

* :class:`RunSpec` — one run as pure data: solver name, config dict,
  benchmark name/case, seed, shot budget and optimizer settings.  A spec has
  a canonical JSON form and a content hash, so identical work is
  recognisable across processes and sessions.
* :class:`ExperimentPlan` — an ordered list of specs (usually built with
  :meth:`ExperimentPlan.grid`).  Specs without an explicit seed get one
  derived deterministically from the plan's ``base_seed`` via
  ``SeedSequence``-style spawn keys, so results never depend on execution
  order or worker count.
* :func:`run_plan` — executes a plan sequentially or with
  :class:`concurrent.futures.ProcessPoolExecutor` workers.  Completed runs
  are appended to a JSONL file as they finish; re-running the same plan
  against the same file skips every spec whose content hash is already
  recorded (crash-safe resume, and a content-addressed result cache).

Because a run is deterministic given its spec, the parallel execution is
bit-identical in metrics to the sequential one — asserted by the test suite.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import SolverError
from repro.run.problems import benchmark_optimum, resolve_benchmark
from repro.run.registry import make_solver
from repro.serialization import json_sanitize
from repro.solvers.base import SolverResult
from repro.solvers.optimizer import make_optimizer
from repro.solvers.variational import EngineOptions

#: Spec fields that identify the computation (everything except ``label``,
#: which is presentation-only and excluded from the content hash).
_HASHED_FIELDS = (
    "solver",
    "benchmark",
    "case_index",
    "config",
    "seed",
    "shots",
    "optimizer",
    "max_iterations",
    "multistart",
    "noise",
)


@dataclass(frozen=True)
class RunSpec:
    """One run of the experiment grid, as pure serializable data.

    ``noise`` is the serializable device-noise scenario — a
    :class:`~repro.solvers.config.NoiseConfig`, a device name, or the dict
    form (``{"device": "fez", ...}``); ``None`` samples ideally.  It is
    canonicalised to the full validated ``NoiseConfig`` dict on
    construction, so equivalent spellings (partial dict, mixed-case device
    name, config instance) are one spec with one content hash — and cached
    noisy and noiseless runs of otherwise identical specs never collide.
    """

    solver: str
    benchmark: str
    config: dict | None = None
    seed: int | None = None
    shots: int = 4096
    optimizer: str = "cobyla"
    max_iterations: int = 100
    multistart: int = 1
    case_index: int = 0
    noise: dict | str | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if self.noise is not None:
            from repro.solvers.config import as_noise_config

            object.__setattr__(self, "noise", as_noise_config(self.noise).to_dict())

    def to_dict(self) -> dict:
        """Canonical JSON form (config/noise sanitized to plain JSON types)."""
        return {
            "solver": self.solver,
            "benchmark": self.benchmark,
            "case_index": int(self.case_index),
            "config": json_sanitize(dict(self.config)) if self.config else None,
            "seed": self.seed if self.seed is None else int(self.seed),
            "shots": int(self.shots),
            "optimizer": self.optimizer,
            "max_iterations": int(self.max_iterations),
            "multistart": int(self.multistart),
            "noise": json_sanitize(self.noise) if self.noise else None,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSpec":
        known = {f for f in data if f in {*_HASHED_FIELDS, "label"}}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SolverError(f"unknown RunSpec field(s) {unknown}")
        return cls(**{key: data[key] for key in known})

    def content_hash(self) -> str:
        """Hash of the computation-identifying fields (``label`` excluded).

        A ``noise`` of ``None`` is dropped from the hashed payload, so every
        noiseless spec keeps the content hash it had before the noise field
        existed — JSONL caches written by earlier revisions stay valid.
        """
        payload = {key: value for key, value in self.to_dict().items() if key in _HASHED_FIELDS}
        if payload.get("noise") is None:
            payload.pop("noise", None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def display_name(self) -> str:
        return self.label or f"{self.solver}@{self.benchmark}"


@dataclass
class ExperimentPlan:
    """An ordered grid of :class:`RunSpec` runs."""

    specs: list[RunSpec] = field(default_factory=list)
    name: str = "plan"
    base_seed: int = 0

    @classmethod
    def grid(
        cls,
        solvers: Sequence[str],
        benchmarks: Sequence[str],
        seeds: Sequence[int | None] = (None,),
        *,
        configs: Mapping[str, dict] | None = None,
        shots: int = 4096,
        optimizer: str = "cobyla",
        max_iterations: int = 100,
        multistart: int = 1,
        noise=None,
        name: str = "grid",
        base_seed: int = 0,
    ) -> "ExperimentPlan":
        """The cartesian product benchmark x solver x seed as a plan.

        ``configs`` maps solver names to config-override dicts.  Seeds may be
        ``None`` to request plan-derived deterministic seeds.  ``noise``
        applies one device-noise scenario to every spec of the grid — a
        :class:`~repro.solvers.config.NoiseConfig`, a device name such as
        ``"fez"``, or the dict form (each spec canonicalises and validates
        it on construction).
        """
        specs = [
            RunSpec(
                solver=solver,
                benchmark=str(benchmark),
                config=dict((configs or {}).get(solver) or {}) or None,
                seed=seed,
                shots=shots,
                optimizer=optimizer,
                max_iterations=max_iterations,
                multistart=multistart,
                noise=noise,
                label=f"{solver}@{benchmark}" + (f"#s{seed}" if seed is not None else ""),
            )
            for benchmark in benchmarks
            for solver in solvers
            for seed in seeds
        ]
        return cls(specs=specs, name=name, base_seed=base_seed)

    def resolved_specs(self) -> list[RunSpec]:
        """Specs with every ``seed=None`` replaced by a derived seed.

        Derivation mirrors ``SeedSequence.spawn`` without mutating any shared
        sequence: child ``i`` is ``SeedSequence(entropy=base_seed,
        spawn_key=(i,))``, collapsed to one integer.  The seed depends only
        on ``(base_seed, position)``, so parallel and sequential executions
        of the same plan are seeded identically.
        """
        resolved = []
        for index, spec in enumerate(self.specs):
            if spec.seed is None:
                child = np.random.SeedSequence(entropy=self.base_seed, spawn_key=(index,))
                derived = int(child.generate_state(1, np.uint64)[0])
                spec = RunSpec(**{**spec.to_dict(), "seed": derived})
            resolved.append(spec)
        return resolved

    def __len__(self) -> int:
        return len(self.specs)


@dataclass
class RunRecord:
    """One completed run: its spec, the serialized result, and the metrics."""

    spec: RunSpec
    spec_hash: str
    result: dict
    metrics: dict
    cached: bool = False

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "result": self.result,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: Mapping, cached: bool = False) -> "RunRecord":
        return cls(
            spec=RunSpec.from_dict(data["spec"]),
            spec_hash=data["spec_hash"],
            result=dict(data["result"]),
            metrics=dict(data["metrics"]),
            cached=cached,
        )

    def solver_result(self) -> SolverResult:
        """The run's full :class:`SolverResult`, rebuilt from its dict form."""
        return SolverResult.from_dict(self.result)


def execute_spec(spec: RunSpec) -> RunRecord:
    """Run one spec to completion (the unit of work a pool worker executes).

    The record's ``metrics`` are deterministic given the spec —
    ``latency_s`` is the one wall-clock-dependent entry.
    """
    problem = resolve_benchmark(spec.benchmark, spec.case_index)
    # The noise scenario rides as a config override: every registered solver
    # config carries a ``noise`` field, and the engine seeds the materialised
    # model from the spec seed, so a noisy spec is as deterministic as an
    # ideal one.
    overrides = {"noise": dict(spec.noise)} if spec.noise else {}
    solver = make_solver(
        spec.solver,
        spec.config or None,
        optimizer=make_optimizer(spec.optimizer, max_iterations=spec.max_iterations),
        options=EngineOptions(shots=spec.shots, seed=spec.seed, multistart=spec.multistart),
        **overrides,
    )
    result = solver.solve(problem)
    optimal_value = benchmark_optimum(spec.benchmark, spec.case_index)
    report = result.metrics(problem, optimal_value)
    metrics = {
        "success_rate": report.success_rate,
        "in_constraints_rate": report.in_constraints_rate,
        "arg": report.approximation_ratio_gap,
        "depth": report.circuit_depth,
        "iterations": int(result.metadata.get("iterations", 0)),
        "optimal_value": float(optimal_value),
        "latency_s": result.latency.total,
    }
    return RunRecord(
        spec=spec,
        spec_hash=spec.content_hash(),
        result=result.to_dict(),
        metrics=metrics,
    )


def _execute_spec_payload(spec_dict: dict) -> dict:
    """Pickle-friendly worker entry point: dict in, dict out."""
    return execute_spec(RunSpec.from_dict(spec_dict)).to_dict()


def load_records(jsonl_path) -> dict[str, dict]:
    """Completed records from a JSONL file, keyed by spec content hash.

    Later lines win on duplicate hashes (append-only files self-heal);
    malformed trailing lines — a run killed mid-write — are skipped.
    """
    records: dict[str, dict] = {}
    if not jsonl_path or not os.path.exists(jsonl_path):
        return records
    with open(jsonl_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(data, dict) and "spec_hash" in data:
                records[data["spec_hash"]] = data
    return records


def _pool_context():
    """Prefer ``fork`` so runtime-registered solvers/benchmarks reach workers."""
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def run_plan(
    plan: ExperimentPlan,
    *,
    max_workers: int = 1,
    jsonl_path: str | os.PathLike | None = None,
    resume: bool = True,
    progress: bool = False,
) -> list[RunRecord]:
    """Execute every spec of a plan; return records in plan order.

    Args:
        plan: the grid to run (seeds are resolved deterministically first).
        max_workers: ``1`` runs in-process; larger values fan pending specs
            out over a process pool.
        jsonl_path: persistence file.  Completed runs are appended as they
            finish; with ``resume=True`` (default) any spec whose content
            hash already appears in the file is returned from the file
            instead of re-executed (``RunRecord.cached`` marks those).
        progress: print one line per completed run.
    """
    specs = plan.resolved_specs()
    cache = load_records(jsonl_path) if resume else {}

    records: list[RunRecord | None] = [None] * len(specs)
    pending: list[tuple[int, RunSpec]] = []
    for index, spec in enumerate(specs):
        cached = cache.get(spec.content_hash())
        if cached is not None:
            records[index] = RunRecord.from_dict(cached, cached=True)
        else:
            pending.append((index, spec))

    sink = open(jsonl_path, "a", encoding="utf-8") if jsonl_path else None
    try:
        def finish(index: int, record: RunRecord) -> None:
            records[index] = record
            if sink is not None:
                sink.write(json.dumps(record.to_dict()) + "\n")
                sink.flush()
            if progress:
                done = sum(1 for r in records if r is not None)
                print(f"[{plan.name}] {done}/{len(specs)} {record.spec.display_name()}")

        if max_workers <= 1 or len(pending) <= 1:
            for index, spec in pending:
                finish(index, execute_spec(spec))
        else:
            context = _pool_context()
            # Drain every future even when one fails: completed runs must
            # reach the JSONL sink (that is the crash-safety contract), so
            # the first failure is re-raised only after the pool is empty.
            first_failure: BaseException | None = None
            with ProcessPoolExecutor(max_workers=max_workers, mp_context=context) as pool:
                futures = {
                    pool.submit(_execute_spec_payload, spec.to_dict()): index
                    for index, spec in pending
                }
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        try:
                            record = RunRecord.from_dict(future.result())
                        except BaseException as error:  # noqa: BLE001 - re-raised below
                            if first_failure is None:
                                first_failure = error
                            continue
                        finish(futures[future], record)
            if first_failure is not None:
                raise first_failure
    finally:
        if sink is not None:
            sink.close()

    return [record for record in records if record is not None]
