"""Declarative experiment plans and the parallel batch runner.

The paper's evaluation is a grid of (solver x problem x seed) runs; this
module makes that grid a first-class, serializable object:

* :class:`RunSpec` — one run as pure data: solver name, config dict,
  benchmark name/case, seed, shot budget and optimizer settings.  A spec has
  a canonical JSON form and a content hash, so identical work is
  recognisable across processes and sessions.
* :class:`ExperimentPlan` — an ordered list of specs (usually built with
  :meth:`ExperimentPlan.grid`).  Specs without an explicit seed get one
  derived deterministically from the plan's ``base_seed`` via
  ``SeedSequence``-style spawn keys, so results never depend on execution
  order or worker count.
* :func:`run_plan` — executes a plan sequentially or with
  :class:`concurrent.futures.ProcessPoolExecutor` workers.  Completed runs
  are appended to a JSONL file as they finish; re-running the same plan
  against the same file skips every spec whose content hash is already
  recorded (crash-safe resume, and a content-addressed result cache).
* :func:`shard_plan` / :func:`merge_records` — the zero-coordination farm
  layer: shard ``i`` of ``n`` owns exactly the specs whose content hash maps
  to it, each shard appends to its own JSONL file, and merging the shard
  files is idempotent (later lines win, duplicate hashes tolerated).

Because a run is deterministic given its spec, the parallel execution is
bit-identical in metrics to the sequential one — asserted by the test suite.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import PlanExecutionError, SolverError
from repro.run.jsonl import JsonlSink, load_jsonl_records
from repro.run.problems import benchmark_optimum, resolve_benchmark
from repro.run.registry import make_solver
from repro.serialization import json_sanitize
from repro.solvers.base import SolverResult
from repro.solvers.optimizer import make_optimizer
from repro.solvers.variational import EngineOptions

#: Spec fields that identify the computation (everything except ``label``,
#: which is presentation-only and excluded from the content hash).
_HASHED_FIELDS = (
    "solver",
    "benchmark",
    "case_index",
    "config",
    "seed",
    "shots",
    "optimizer",
    "max_iterations",
    "multistart",
    "noise",
    "optimization_level",
)


@dataclass(frozen=True)
class RunSpec:
    """One run of the experiment grid, as pure serializable data.

    ``noise`` is the serializable device-noise scenario — a
    :class:`~repro.solvers.config.NoiseConfig`, a device name, or the dict
    form (``{"device": "fez", ...}``); ``None`` samples ideally.  It is
    canonicalised to the full validated ``NoiseConfig`` dict on
    construction, so equivalent spellings (partial dict, mixed-case device
    name, config instance) are one spec with one content hash — and cached
    noisy and noiseless runs of otherwise identical specs never collide.
    """

    solver: str
    benchmark: str
    config: dict | None = None
    seed: int | None = None
    shots: int = 4096
    optimizer: str = "cobyla"
    max_iterations: int = 100
    multistart: int = 1
    case_index: int = 0
    noise: dict | str | None = None
    optimization_level: int | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if self.noise is not None:
            from repro.solvers.config import as_noise_config

            object.__setattr__(self, "noise", as_noise_config(self.noise).to_dict())

    def to_dict(self) -> dict:
        """Canonical JSON form (config/noise sanitized to plain JSON types)."""
        return {
            "solver": self.solver,
            "benchmark": self.benchmark,
            "case_index": int(self.case_index),
            "config": json_sanitize(dict(self.config)) if self.config else None,
            "seed": self.seed if self.seed is None else int(self.seed),
            "shots": int(self.shots),
            "optimizer": self.optimizer,
            "max_iterations": int(self.max_iterations),
            "multistart": int(self.multistart),
            "noise": json_sanitize(self.noise) if self.noise else None,
            "optimization_level": (
                None if self.optimization_level is None else int(self.optimization_level)
            ),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSpec":
        known = {f for f in data if f in {*_HASHED_FIELDS, "label"}}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SolverError(f"unknown RunSpec field(s) {unknown}")
        return cls(**{key: data[key] for key in known})

    def content_hash(self) -> str:
        """Hash of the computation-identifying fields (``label`` excluded).

        A ``noise`` of ``None`` is dropped from the hashed payload, so every
        noiseless spec keeps the content hash it had before the noise field
        existed — JSONL caches written by earlier revisions stay valid.  The
        same convention covers ``optimization_level``: ``None`` (package
        default) is dropped, an explicit level is hashed.
        """
        payload = {key: value for key, value in self.to_dict().items() if key in _HASHED_FIELDS}
        if payload.get("noise") is None:
            payload.pop("noise", None)
        if payload.get("optimization_level") is None:
            payload.pop("optimization_level", None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def display_name(self) -> str:
        return self.label or f"{self.solver}@{self.benchmark}"


@dataclass
class ExperimentPlan:
    """An ordered grid of :class:`RunSpec` runs."""

    specs: list[RunSpec] = field(default_factory=list)
    name: str = "plan"
    base_seed: int = 0

    @classmethod
    def grid(
        cls,
        solvers: Sequence[str],
        benchmarks: Sequence[str],
        seeds: Sequence[int | None] = (None,),
        *,
        configs: Mapping[str, dict] | None = None,
        shots: int = 4096,
        optimizer: str = "cobyla",
        max_iterations: int = 100,
        multistart: int = 1,
        noise=None,
        optimization_level: int | None = None,
        name: str = "grid",
        base_seed: int = 0,
    ) -> "ExperimentPlan":
        """The cartesian product benchmark x solver x seed as a plan.

        ``configs`` maps solver names to config-override dicts.  Seeds may be
        ``None`` to request plan-derived deterministic seeds.  ``noise``
        applies one device-noise scenario to every spec of the grid — a
        :class:`~repro.solvers.config.NoiseConfig`, a device name such as
        ``"fez"``, or the dict form (each spec canonicalises and validates
        it on construction).  ``optimization_level`` pins the transpiler's
        optimization pipeline for every spec (``None`` = package default).
        """
        specs = [
            RunSpec(
                solver=solver,
                benchmark=str(benchmark),
                config=dict((configs or {}).get(solver) or {}) or None,
                seed=seed,
                shots=shots,
                optimizer=optimizer,
                max_iterations=max_iterations,
                multistart=multistart,
                noise=noise,
                optimization_level=optimization_level,
                label=f"{solver}@{benchmark}" + (f"#s{seed}" if seed is not None else ""),
            )
            for benchmark in benchmarks
            for solver in solvers
            for seed in seeds
        ]
        return cls(specs=specs, name=name, base_seed=base_seed)

    def to_dict(self) -> dict:
        """Canonical JSON form — the file a farm distributes to its shards."""
        return {
            "name": self.name,
            "base_seed": int(self.base_seed),
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentPlan":
        return cls(
            specs=[RunSpec.from_dict(spec) for spec in data.get("specs", [])],
            name=str(data.get("name", "plan")),
            base_seed=int(data.get("base_seed", 0)),
        )

    def resolved_specs(self) -> list[RunSpec]:
        """Specs with every ``seed=None`` replaced by a derived seed.

        Derivation mirrors ``SeedSequence.spawn`` without mutating any shared
        sequence: child ``i`` is ``SeedSequence(entropy=base_seed,
        spawn_key=(i,))``, collapsed to one integer.  The seed depends only
        on ``(base_seed, position)``, so parallel and sequential executions
        of the same plan are seeded identically.
        """
        resolved = []
        for index, spec in enumerate(self.specs):
            if spec.seed is None:
                child = np.random.SeedSequence(entropy=self.base_seed, spawn_key=(index,))
                derived = int(child.generate_state(1, np.uint64)[0])
                spec = RunSpec(**{**spec.to_dict(), "seed": derived})
            resolved.append(spec)
        return resolved

    def __len__(self) -> int:
        return len(self.specs)


@dataclass
class RunRecord:
    """One completed run: its spec, the serialized result, and the metrics."""

    spec: RunSpec
    spec_hash: str
    result: dict
    metrics: dict
    cached: bool = False

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "result": self.result,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: Mapping, cached: bool = False) -> "RunRecord":
        return cls(
            spec=RunSpec.from_dict(data["spec"]),
            spec_hash=data["spec_hash"],
            result=dict(data["result"]),
            metrics=dict(data["metrics"]),
            cached=cached,
        )

    def solver_result(self) -> SolverResult:
        """The run's full :class:`SolverResult`, rebuilt from its dict form."""
        return SolverResult.from_dict(self.result)


def execute_spec(spec: RunSpec) -> RunRecord:
    """Run one spec to completion (the unit of work a pool worker executes).

    The record's ``metrics`` are deterministic given the spec —
    ``latency_s`` is the one wall-clock-dependent entry.
    """
    problem = resolve_benchmark(spec.benchmark, spec.case_index)
    # The noise scenario rides as a config override: every registered solver
    # config carries a ``noise`` field, and the engine seeds the materialised
    # model from the spec seed, so a noisy spec is as deterministic as an
    # ideal one.
    overrides = {"noise": dict(spec.noise)} if spec.noise else {}
    solver = make_solver(
        spec.solver,
        spec.config or None,
        optimizer=make_optimizer(spec.optimizer, max_iterations=spec.max_iterations),
        options=EngineOptions(
            shots=spec.shots,
            seed=spec.seed,
            multistart=spec.multistart,
            optimization_level=spec.optimization_level,
        ),
        **overrides,
    )
    result = solver.solve(problem)
    optimal_value = benchmark_optimum(spec.benchmark, spec.case_index)
    report = result.metrics(problem, optimal_value)
    metrics = {
        "success_rate": report.success_rate,
        "in_constraints_rate": report.in_constraints_rate,
        "arg": report.approximation_ratio_gap,
        "depth": report.circuit_depth,
        "iterations": int(result.metadata.get("iterations", 0)),
        "optimal_value": float(optimal_value),
        "latency_s": result.latency.total,
    }
    return RunRecord(
        spec=spec,
        spec_hash=spec.content_hash(),
        result=result.to_dict(),
        metrics=metrics,
    )


def _execute_spec_payload(spec_dict: dict) -> dict:
    """Pickle-friendly worker entry point: dict in, dict out."""
    return execute_spec(RunSpec.from_dict(spec_dict)).to_dict()


def load_records(jsonl_path) -> dict[str, dict]:
    """Completed records from a JSONL file, keyed by spec content hash.

    Later lines win on duplicate hashes (append-only files self-heal);
    malformed trailing lines — a run killed mid-write — are skipped.
    """
    return load_jsonl_records(jsonl_path)


def _pool_context():
    """Prefer ``fork`` so runtime-registered solvers/benchmarks reach workers."""
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def run_plan(
    plan: ExperimentPlan,
    *,
    max_workers: int = 1,
    jsonl_path: str | os.PathLike | None = None,
    resume: bool = True,
    progress: bool = False,
) -> list[RunRecord]:
    """Execute every spec of a plan; return records in plan order.

    Args:
        plan: the grid to run (seeds are resolved deterministically first).
        max_workers: ``1`` runs in-process; larger values fan pending specs
            out over a process pool.
        jsonl_path: persistence file.  Completed runs are appended as they
            finish; with ``resume=True`` (default) any spec whose content
            hash already appears in the file is returned from the file
            instead of re-executed (``RunRecord.cached`` marks those).
        progress: print one line per completed run.

    Raises:
        :class:`~repro.exceptions.PlanExecutionError` when any spec fails;
        its ``failures`` list names every failed spec (display name + content
        hash) and the original exception is chained.  Completed runs still
        reach the JSONL sink before the raise — that is the crash-safety
        contract.
    """
    specs = plan.resolved_specs()
    cache = load_records(jsonl_path) if resume else {}

    records: list[RunRecord | None] = [None] * len(specs)
    pending: list[tuple[int, RunSpec]] = []
    # Duplicate content hashes inside one plan (e.g. the same spec under two
    # labels) execute exactly once: the first index owns the execution and
    # the record fans out to every index sharing the hash.
    owners: dict[str, list[int]] = {}
    for index, spec in enumerate(specs):
        spec_hash = spec.content_hash()
        cached = cache.get(spec_hash)
        if cached is not None:
            records[index] = RunRecord.from_dict(cached, cached=True)
            continue
        if spec_hash in owners:
            owners[spec_hash].append(index)
        else:
            owners[spec_hash] = [index]
            pending.append((index, spec))
    num_cached = sum(1 for record in records if record is not None)

    executed = 0
    failures: list[dict] = []
    sink = JsonlSink(jsonl_path) if jsonl_path else None
    try:
        def finish(record: RunRecord) -> None:
            nonlocal executed
            executed += 1
            owner_index, *duplicate_indices = owners[record.spec_hash]
            records[owner_index] = record
            for position in duplicate_indices:
                # A duplicate-hash index keeps its own spec (labels may
                # differ) around the one shared execution's payload.
                records[position] = RunRecord(
                    spec=specs[position],
                    spec_hash=record.spec_hash,
                    result=record.result,
                    metrics=record.metrics,
                )
            if sink is not None:
                sink.append(record.to_dict())
            if progress:
                print(
                    f"[{plan.name}] executed {executed}/{len(pending)} "
                    f"(+{num_cached} cached) {record.spec.display_name()}"
                )

        def record_failure(spec: RunSpec, error: BaseException) -> None:
            failures.append(
                {
                    "display_name": spec.display_name(),
                    "spec_hash": spec.content_hash(),
                    "error": str(error),
                }
            )

        if max_workers <= 1 or len(pending) <= 1:
            for _index, spec in pending:
                try:
                    record = execute_spec(spec)
                except Exception as error:
                    record_failure(spec, error)
                    raise PlanExecutionError(failures) from error
                finish(record)
        else:
            context = _pool_context()
            # Drain every future even when one fails: completed runs must
            # reach the JSONL sink (that is the crash-safety contract), so
            # failures are collected and re-raised only after the pool is
            # empty — with every failed spec identified.
            first_failure: BaseException | None = None
            with ProcessPoolExecutor(max_workers=max_workers, mp_context=context) as pool:
                futures = {
                    pool.submit(_execute_spec_payload, spec.to_dict()): spec
                    for _index, spec in pending
                }
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        spec = futures[future]
                        try:
                            record = RunRecord.from_dict(future.result())
                        except BaseException as error:  # noqa: BLE001 - re-raised below
                            record_failure(spec, error)
                            if first_failure is None:
                                first_failure = error
                            continue
                        finish(record)
            if failures:
                raise PlanExecutionError(failures) from first_failure
    finally:
        if sink is not None:
            sink.close()

    return [record for record in records if record is not None]


# ---------------------------------------------------------------------------
# Sharding: split one plan over a farm with zero coordination
# ---------------------------------------------------------------------------


def shard_owner(spec_hash: str, num_shards: int) -> int:
    """The shard index that owns a spec content hash.

    Ownership is a pure function of the hash, so any number of machines can
    partition one plan without talking to each other.
    """
    return int(spec_hash, 16) % num_shards


def shard_plan(plan: ExperimentPlan, num_shards: int, shard_index: int) -> ExperimentPlan:
    """The sub-plan shard ``shard_index`` of ``num_shards`` owns.

    Seeds are resolved *before* partitioning (a spec's content hash depends
    on its seed), so every shard derives the same seed for the same grid
    position and the shards exactly partition the resolved plan:
    ``run_plan`` over each shard, merged, is record-for-record identical to
    ``run_plan`` of the whole plan.
    """
    if num_shards < 1:
        raise SolverError("num_shards must be at least 1")
    if not 0 <= shard_index < num_shards:
        raise SolverError(
            f"shard_index must be in [0, {num_shards}), got {shard_index}"
        )
    specs = [
        spec
        for spec in plan.resolved_specs()
        if shard_owner(spec.content_hash(), num_shards) == shard_index
    ]
    return ExperimentPlan(
        specs=specs,
        name=f"{plan.name}-shard{shard_index}of{num_shards}",
        base_seed=plan.base_seed,
    )


def merge_records(
    paths: Sequence["str | os.PathLike"],
    output_path: "str | os.PathLike | None" = None,
) -> dict[str, dict]:
    """Merge shard JSONL files into one record set, keyed by content hash.

    Idempotent and duplicate-tolerant: within a file later lines win, across
    files later *paths* win, and merging a file with itself (or re-merging
    merged output) is a no-op.  Missing paths are skipped, so a partially
    finished farm merges cleanly.  When ``output_path`` is given the merged
    records are written there as JSONL via an atomic rename, so a crashed
    merge never leaves a half-written file.
    """
    merged: dict[str, dict] = {}
    for path in paths:
        merged.update(load_records(path))
    if output_path is not None:
        output_path = os.fspath(output_path)
        staging = output_path + ".tmp"
        with open(staging, "w", encoding="utf-8") as handle:
            for payload in merged.values():
                handle.write(json.dumps(payload) + "\n")
        os.replace(staging, output_path)
    return merged
