"""The one-call run surface: ``repro.solve(problem, solver="choco-q")``.

The facade ties the registry together: resolve the solver name, build its
config (defaults, a config instance/dict, plus keyword overrides), construct
the solver with the given optimizer/options, and run it.  Every example and
benchmark drives solvers through this entry point; scripts no longer need to
know which class implements which design.
"""

from __future__ import annotations

from repro.core.problem import ConstrainedBinaryProblem
from repro.exceptions import SolverError
from repro.run.problems import resolve_benchmark
from repro.run.registry import make_solver
from repro.solvers.base import QuantumSolver, SolverResult
from repro.solvers.optimizer import Optimizer
from repro.solvers.variational import EngineOptions


def solve(
    problem: ConstrainedBinaryProblem | str,
    solver: str | QuantumSolver = "choco-q",
    config=None,
    *,
    optimizer: Optimizer | str | None = None,
    options: EngineOptions | None = None,
    noise=None,
    **overrides,
) -> SolverResult:
    """Solve ``problem`` with a registered solver.

    Args:
        problem: a :class:`~repro.core.problem.ConstrainedBinaryProblem`, or
            a benchmark name resolvable by
            :func:`~repro.run.problems.resolve_benchmark` (``"G2"``...).
        solver: a registered solver name (see
            :func:`~repro.run.registry.available_solvers`) or an already
            constructed :class:`~repro.solvers.base.QuantumSolver`.
        config: the solver's ``*Config`` instance, its dict form, or ``None``
            for defaults.
        optimizer: an :class:`~repro.solvers.optimizer.Optimizer` or an
            optimizer name (``"cobyla"``, ``"nelder-mead"``, ``"spsa"``).
        options: shared :class:`~repro.solvers.variational.EngineOptions`
            (shots, seed, noise model, multistart...).
        noise: serializable device-noise scenario — a
            :class:`~repro.solvers.config.NoiseConfig`, a device-profile
            name (``"fez"``, ``"osaka"``, ``"sherbrooke"``) or its dict
            form.  Sugar for the ``noise`` field every solver config
            carries; the engine seeds the materialised model from the run
            seed, so ``repro.solve(..., seed via options, noise="fez")`` is
            reproducible.
        **overrides: config-field overrides, e.g. ``num_layers=2``.

    Returns:
        The solver's :class:`~repro.solvers.base.SolverResult`.
    """
    if isinstance(problem, str):
        problem = resolve_benchmark(problem)
    if isinstance(solver, QuantumSolver):
        if (
            config is not None
            or overrides
            or optimizer is not None
            or options is not None
            or noise is not None
        ):
            raise SolverError(
                "when passing a solver instance, configure it directly instead of "
                "passing config/optimizer/options/noise/overrides to solve()"
            )
        return solver.solve(problem)
    if noise is not None:
        if options is not None and (options.noise is not None or options.noise_model is not None):
            # Config-level noise always yields to options-level noise (see
            # EngineOptions.with_noise), so accepting this call would
            # silently ignore the explicit argument.
            raise SolverError(
                "pass noise either to solve() or inside options, not both"
            )
        overrides["noise"] = noise
    instance = make_solver(solver, config, optimizer=optimizer, options=options, **overrides)
    return instance.solve(problem)
