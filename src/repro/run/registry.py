"""String-addressable solver registry.

Mirrors :func:`repro.solvers.optimizer.make_optimizer`: every solver is
registered under its canonical name together with its config dataclass, so
experiment specs can name solvers as plain strings and the
:func:`~repro.run.facade.solve` facade / :mod:`~repro.run.plan` batch runner
can construct them uniformly.

The four solvers of the paper's evaluation are registered at import time;
downstream code can add its own with :func:`register_solver`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SolverError
from repro.solvers.base import QuantumSolver
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.config import SolverConfig
from repro.solvers.cyclic_qaoa import CyclicQAOAConfig, CyclicQAOASolver
from repro.solvers.hea import HEAConfig, HEASolver
from repro.solvers.optimizer import Optimizer, make_optimizer
from repro.solvers.penalty_qaoa import PenaltyQAOAConfig, PenaltyQAOASolver
from repro.solvers.variational import EngineOptions


@dataclass(frozen=True)
class SolverEntry:
    """One registered solver: its class, config class and a description."""

    name: str
    solver_cls: type[QuantumSolver]
    config_cls: type[SolverConfig]
    description: str = ""


_REGISTRY: dict[str, SolverEntry] = {}


def register_solver(
    name: str,
    solver_cls: type[QuantumSolver],
    config_cls: type[SolverConfig],
    description: str = "",
    *,
    replace: bool = False,
) -> SolverEntry:
    """Register a solver class under a string name.

    ``solver_cls`` must accept ``(config=..., optimizer=..., options=...)``
    — the uniform constructor contract every built-in solver follows.
    Re-registering an existing name raises unless ``replace=True``.
    """
    key = name.lower()
    if key in _REGISTRY and not replace:
        raise SolverError(f"solver {name!r} is already registered (pass replace=True to override)")
    entry = SolverEntry(name=key, solver_cls=solver_cls, config_cls=config_cls, description=description)
    _REGISTRY[key] = entry
    return entry


def unregister_solver(name: str) -> None:
    """Remove a registered solver (mainly for tests tearing down fixtures)."""
    _REGISTRY.pop(name.lower(), None)


def available_solvers() -> list[str]:
    """Sorted names of every registered solver."""
    return sorted(_REGISTRY)


def get_solver_entry(name: str) -> SolverEntry:
    """Look up one registry entry by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise SolverError(f"unknown solver {name!r}; available: {available_solvers()}")
    return _REGISTRY[key]


def resolve_config(entry: SolverEntry, config, overrides: dict) -> SolverConfig:
    """Normalise ``(config, overrides)`` into one validated config instance.

    ``config`` may be a config instance of the entry's class, a plain dict
    (the serialized form an experiment spec carries), or ``None`` for the
    solver defaults; ``overrides`` are field overrides applied on top.
    """
    if config is None:
        base = entry.config_cls()
    elif isinstance(config, entry.config_cls):
        base = config
    elif isinstance(config, SolverConfig):
        raise SolverError(
            f"solver {entry.name!r} expects a {entry.config_cls.__name__}, "
            f"got {type(config).__name__}"
        )
    elif isinstance(config, dict):
        base = entry.config_cls.from_dict(config)
    else:
        raise SolverError(
            f"config must be a {entry.config_cls.__name__}, a dict or None, "
            f"got {type(config).__name__}"
        )
    return base.replace(**overrides) if overrides else base


def make_solver(
    name: str,
    config=None,
    *,
    optimizer: Optimizer | str | None = None,
    options: EngineOptions | None = None,
    **overrides,
) -> QuantumSolver:
    """Construct a registered solver from its name.

    ``optimizer`` accepts an :class:`~repro.solvers.optimizer.Optimizer`
    instance or an optimizer name for :func:`make_optimizer`; ``overrides``
    are config-field overrides merged into ``config`` — including ``noise``,
    which every registered config carries (a
    :class:`~repro.solvers.config.NoiseConfig`, a device name, or its dict
    form; the config normalises it on construction).
    """
    entry = get_solver_entry(name)
    resolved = resolve_config(entry, config, overrides)
    if isinstance(optimizer, str):
        optimizer = make_optimizer(optimizer)
    return entry.solver_cls(config=resolved, optimizer=optimizer, options=options)


# ---------------------------------------------------------------------------
# The paper's evaluation line-up
# ---------------------------------------------------------------------------

register_solver(
    "choco-q", ChocoQSolver, ChocoQConfig,
    "commute-Hamiltonian QAOA (the paper's contribution)",
)
register_solver(
    "penalty-qaoa", PenaltyQAOASolver, PenaltyQAOAConfig,
    "soft-constraint QAOA with the transverse-field mixer",
)
register_solver(
    "cyclic-qaoa", CyclicQAOASolver, CyclicQAOAConfig,
    "hard-constraint QAOA with the cyclic XY-ring driver",
)
register_solver(
    "hea", HEASolver, HEAConfig,
    "hardware-efficient ansatz trained on the penalty objective",
)
