"""Concurrency-safe JSONL persistence shared by the batch runner and service.

Run records persist as one JSON object per line, keyed by spec content hash.
Two properties make the format safe for a zero-coordination farm of writers:

* **Atomic appends.**  :class:`JsonlSink` writes each record as a single
  ``write(2)`` call on an ``O_APPEND`` file descriptor.  POSIX guarantees
  that appends to a regular file are atomic with respect to other appending
  writers, so concurrent processes sharing one file never interleave bytes
  *within* a line — the failure mode a buffered ``write()`` + ``flush()``
  pair has when a record exceeds the stream buffer and is flushed in pieces.
* **Self-healing reads.**  :func:`load_jsonl_records` tolerates duplicate
  hashes (later lines win, so re-executed specs simply supersede older
  records) and skips malformed trailing lines — a writer killed mid-append
  leaves at most one torn line at EOF.
"""

from __future__ import annotations

import json
import os
from typing import Mapping

__all__ = ["JsonlSink", "load_jsonl_records"]


class JsonlSink:
    """Append-only JSONL writer with single-``write`` line appends.

    Opens (creating if needed) ``path`` with ``O_APPEND`` and emits every
    record as exactly one OS-level write, so any number of sinks — across
    threads or processes — can share the file without torn lines.
    """

    def __init__(self, path: "str | os.PathLike") -> None:
        self.path = os.fspath(path)
        self._fd: int | None = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def append(self, payload: Mapping) -> None:
        """Append one record as a single atomic ``write(2)`` call."""
        if self._fd is None:
            raise ValueError(f"sink for {self.path!r} is closed")
        data = (json.dumps(payload) + "\n").encode("utf-8")
        written = os.write(self._fd, data)
        if written != len(data):  # pragma: no cover - only on ENOSPC-like edges
            raise OSError(
                f"short append to {self.path!r}: wrote {written} of {len(data)} "
                "bytes; the trailing line may be torn"
            )

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_jsonl_records(jsonl_path) -> dict[str, dict]:
    """Completed records from a JSONL file, keyed by spec content hash.

    Later lines win on duplicate hashes (append-only files self-heal);
    malformed trailing lines — a run killed mid-write — are skipped.
    """
    records: dict[str, dict] = {}
    if not jsonl_path or not os.path.exists(jsonl_path):
        return records
    with open(jsonl_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(data, dict) and "spec_hash" in data:
                records[data["spec_hash"]] = data
    return records
