"""Benchmark-name resolution for experiment specs.

A :class:`~repro.run.plan.RunSpec` addresses its problem by name so a spec
stays a pure-data record.  Resolution order:

1. problems registered at runtime with :func:`register_benchmark` — tiny
   test instances, custom workloads;
2. the paper's Table-II suite via
   :func:`repro.problems.make_benchmark` (``F1``-``F4``, ``G1``-``G4``,
   ``K1``-``K4``, with an optional case index).

Registered factories live in this process; the batch runner's process
workers inherit them through the ``fork`` start method (see
:mod:`repro.run.plan`).  On platforms without ``fork`` a registered factory
must be importable from the worker instead.
"""

from __future__ import annotations

import functools
from typing import Callable

from repro.core.problem import ConstrainedBinaryProblem
from repro.exceptions import ProblemError
from repro.problems import SCALE_NAMES, make_benchmark

ProblemFactory = Callable[[], ConstrainedBinaryProblem]

_CUSTOM: dict[str, ProblemFactory] = {}


def register_benchmark(name: str, factory: ProblemFactory, *, replace: bool = False) -> None:
    """Register a named problem factory for experiment specs to address.

    The name must not shadow a Table-II scale; ``replace=True`` allows
    re-registering a custom name.
    """
    key = name.lower()
    if key.upper() in SCALE_NAMES:
        raise ProblemError(f"{name!r} shadows a built-in benchmark scale")
    if key in _CUSTOM and not replace:
        raise ProblemError(f"benchmark {name!r} is already registered (pass replace=True)")
    _CUSTOM[key] = factory
    benchmark_optimum.cache_clear()


def unregister_benchmark(name: str) -> None:
    """Remove a registered benchmark (mainly for tests tearing down fixtures)."""
    _CUSTOM.pop(name.lower(), None)
    benchmark_optimum.cache_clear()


def available_benchmarks() -> list[str]:
    """Every addressable benchmark name: Table-II scales plus registered ones."""
    return sorted({*SCALE_NAMES, *_CUSTOM})


def resolve_benchmark(name: str, case_index: int = 0) -> ConstrainedBinaryProblem:
    """Build the problem a spec's ``benchmark`` field names."""
    factory = _CUSTOM.get(name.lower())
    if factory is not None:
        return factory()
    return make_benchmark(name, case_index)


@functools.lru_cache(maxsize=256)
def benchmark_optimum(name: str, case_index: int = 0) -> float:
    """Memoized brute-force optimum of a named benchmark case.

    The sweep is O(2^n) and identical for every run spec sharing a
    benchmark, so each process computes it once per (benchmark, case)
    instead of once per spec.  The cache lives next to the registry because
    (un)registering a name must invalidate it.
    """
    _, optimal_value = resolve_benchmark(name, case_index).brute_force_optimum()
    return float(optimal_value)
