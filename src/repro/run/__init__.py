"""Unified experiment API: solver registry, facade, and batch runner.

This package is the single addressable run surface for the repository:

* :mod:`repro.run.registry` — string-addressable solver registry
  (:func:`register_solver`, :func:`available_solvers`, :func:`make_solver`);
* :mod:`repro.run.facade` — ``repro.solve(problem, solver="choco-q", ...)``;
* :mod:`repro.run.plan` — declarative :class:`ExperimentPlan` grids of
  :class:`RunSpec` runs, executed by :func:`run_plan` with process workers,
  deterministic per-run seeding, and a content-hashed JSONL result cache;
* :mod:`repro.run.problems` — benchmark-name resolution (Table-II scales
  plus runtime-registered problems).
"""

from repro.run.facade import solve
from repro.run.jsonl import JsonlSink, load_jsonl_records
from repro.run.plan import (
    ExperimentPlan,
    RunRecord,
    RunSpec,
    execute_spec,
    load_records,
    merge_records,
    run_plan,
    shard_owner,
    shard_plan,
)
from repro.run.problems import (
    available_benchmarks,
    register_benchmark,
    resolve_benchmark,
    unregister_benchmark,
)
from repro.run.registry import (
    SolverEntry,
    available_solvers,
    get_solver_entry,
    make_solver,
    register_solver,
    unregister_solver,
)

__all__ = [
    "ExperimentPlan",
    "JsonlSink",
    "RunRecord",
    "RunSpec",
    "SolverEntry",
    "available_benchmarks",
    "available_solvers",
    "execute_spec",
    "get_solver_entry",
    "load_jsonl_records",
    "load_records",
    "make_solver",
    "merge_records",
    "register_benchmark",
    "register_solver",
    "resolve_benchmark",
    "run_plan",
    "shard_owner",
    "shard_plan",
    "solve",
    "unregister_benchmark",
    "unregister_solver",
]
