"""The committed lint baseline: fingerprints of tolerated findings.

The repo ships a **zero-entry** baseline (``lint_baseline.json``) — CI
fails on any new finding — but the mechanism exists so a future emergency
can land with a recorded debt list instead of an untracked one.  Entries
are :meth:`~repro.lint.findings.Finding.fingerprint` strings (line-number
free, so unrelated edits do not resurrect baselined findings).
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from repro.lint.findings import Finding

DEFAULT_BASELINE_NAME = "lint_baseline.json"

_FORMAT_VERSION = 1


def load_baseline(path: str) -> frozenset[str]:
    """Fingerprints recorded in a baseline file (empty when absent)."""
    if not os.path.exists(path):
        return frozenset()
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _FORMAT_VERSION
        or not isinstance(payload.get("entries"), list)
    ):
        raise ValueError(
            f"{path} is not a version-{_FORMAT_VERSION} lint baseline "
            "({'version': 1, 'entries': [...]})"
        )
    return frozenset(str(entry) for entry in payload["entries"])


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Record ``findings`` as the new baseline; returns the entry count."""
    entries = sorted({finding.fingerprint() for finding in findings})
    payload = {"version": _FORMAT_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return len(entries)


def update_baseline(
    path: str, findings: Iterable[Finding]
) -> tuple[list[str], list[str], list[str]]:
    """Rewrite the baseline to the current findings, pruning stale entries.

    Returns ``(kept, added, pruned)`` fingerprint lists: ``kept`` entries
    were in the old baseline and still fire, ``added`` are newly tolerated,
    ``pruned`` were recorded but no longer fire anywhere — stale debt the
    caller should surface, since a fixed finding must not linger as a free
    pass for a future regression with the same fingerprint.
    """
    previous = load_baseline(path)
    current = {finding.fingerprint() for finding in findings}
    kept = sorted(previous & current)
    added = sorted(current - previous)
    pruned = sorted(previous - current)
    write_baseline(path, findings)
    return kept, added, pruned


def split_by_baseline(
    findings: Sequence[Finding], baseline: frozenset[str]
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (new, baselined)."""
    new: list[Finding] = []
    known: list[Finding] = []
    for finding in findings:
        (known if finding.fingerprint() in baseline else new).append(finding)
    return new, known
