"""Rule ``deadcode``: private functions nobody references.

A ``_private`` function or method that no scanned source mentions — not the
project, not the benchmarks/scripts, not even the tests — is unreachable
weight: it rots silently, keeps dependencies alive, and misleads readers
about what the module actually does.  Public names are exempt (they are
API, referenced or not), as are dunders (called by the runtime).

The reference index is deliberately name-based and repo-wide: ``self._m()``,
``other._m``, ``from mod import _m``, a decorator mention — any appearance
of the identifier outside the function's own body keeps it alive.  That
makes the rule conservative (a same-named method on an unrelated class also
counts), which is the right bias for a deletion-recommending check.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.project import ProjectGraph
from repro.lint.registry import PROJECT_SCOPE, Rule, register


@register
class DeadCodeRule(Rule):
    code = "deadcode"
    scope = PROJECT_SCOPE
    description = (
        "no unreferenced non-public functions: a _private def no scanned "
        "source mentions (tests included) should be deleted"
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        for fid, function in sorted(project.functions.items()):
            if function.is_public or function.is_dunder:
                continue
            if project.references_outside(function):
                continue
            kind = "method" if function.owner else "function"
            yield self.finding(
                function.path,
                function.lineno,
                f"private {kind} {function.qualname}() is never referenced "
                "anywhere in the scanned sources; delete it (or export it "
                "if it is meant as API)",
            )
