"""Rule ``config``: every ``*Config`` dataclass stays frozen and serializable.

The ROADMAP's distributed solve service keys its shared JSONL result cache
on content hashes of serialized configs.  That only works while every
``*Config`` class is

* ``@dataclass(frozen=True)`` — a mutable config invalidates its own hash;
* built from statically serializable field types (JSON scalars, containers
  of them, or nested ``*Config`` objects) so ``to_dict`` round-trips;
* reachable from the shared ``to_dict``/``from_dict`` machinery (inherits a
  config base, or defines both itself);
* *append-only evolvable*: every field carries a default so yesterday's
  serialized specs still load, and ``Optional`` fields default to ``None``
  — the hash convention that excludes ``None`` fields keeps every
  pre-existing cache entry valid when such a field is added.

Classes named ``Test*`` are ignored (test fixtures), as is a field-less
class that itself defines ``to_dict`` + ``from_dict`` (that is the shared
machinery, e.g. ``SolverConfig``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.astutil import terminal_name
from repro.lint.engine import ModuleUnderLint
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Annotation names accepted as serializable leaves or containers.
_SERIALIZABLE_NAMES = frozenset(
    {
        "str", "int", "float", "bool", "None",
        "tuple", "Tuple", "list", "List", "dict", "Dict",
        "Mapping", "Sequence", "Optional", "Union", "Literal",
    }
)


def _annotation_violations(node: ast.AST) -> Iterable[str]:
    """Type names in an annotation tree that are not statically serializable."""
    if isinstance(node, ast.Constant):
        if node.value is None or node.value is Ellipsis:
            return
        if isinstance(node.value, str):
            # Quoted (string) annotation: lint the inner expression too.
            try:
                inner = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                yield repr(node.value)
                return
            yield from _annotation_violations(inner)
            return
        yield repr(node.value)
    elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        yield from _annotation_violations(node.left)
        yield from _annotation_violations(node.right)
    elif isinstance(node, ast.Subscript):
        yield from _annotation_violations(node.value)
        yield from _annotation_violations(node.slice)
    elif isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _annotation_violations(element)
    elif isinstance(node, (ast.Name, ast.Attribute)):
        name = terminal_name(node)
        if name in _SERIALIZABLE_NAMES or (name and name.endswith("Config")):
            return
        yield name or ast.dump(node)
    else:
        yield ast.unparse(node) if hasattr(ast, "unparse") else type(node).__name__


def _annotation_mentions_none(node: ast.AST) -> bool:
    for inner in ast.walk(node):
        if isinstance(inner, ast.Constant):
            if inner.value is None:
                return True
            if isinstance(inner.value, str) and "None" in inner.value:
                return True
        if isinstance(inner, ast.Name) and inner.id == "Optional":
            return True
    return False


def _dataclass_frozen(class_def: ast.ClassDef) -> bool | None:
    """True/False for a dataclass decorator's frozen-ness, None if not a dataclass."""
    for decorator in class_def.decorator_list:
        if isinstance(decorator, ast.Call):
            name = terminal_name(decorator.func)
            if name == "dataclass":
                for keyword in decorator.keywords:
                    if keyword.arg == "frozen":
                        return (
                            isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        )
                return False
        elif terminal_name(decorator) == "dataclass":
            return False
    return None


def _defined_methods(class_def: ast.ClassDef) -> frozenset[str]:
    return frozenset(
        statement.name
        for statement in class_def.body
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
    )


def _has_config_base(class_def: ast.ClassDef) -> bool:
    for base in class_def.bases:
        name = terminal_name(base)
        if name and name.endswith("Config"):
            return True
    return False


@register
class ConfigDisciplineRule(Rule):
    code = "config"
    description = (
        "*Config dataclasses must be frozen=True, carry only serializable "
        "defaulted fields, and reach to_dict/from_dict"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Config") or node.name.startswith("Test"):
                continue
            yield from self._check_config_class(module.path, node)

    def _check_config_class(
        self, path: str, node: ast.ClassDef
    ) -> Iterable[Finding]:
        fields = [
            statement
            for statement in node.body
            if isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and not statement.target.id.startswith("_")
        ]
        methods = _defined_methods(node)
        if not fields and {"to_dict", "from_dict"} <= methods:
            return  # the shared machinery itself (SolverConfig), not a config
        frozen = _dataclass_frozen(node)
        if frozen is None:
            yield self.finding(
                path, node.lineno,
                f"{node.name} must be a @dataclass(frozen=True) to stay hash-stable",
            )
        elif not frozen:
            yield self.finding(
                path, node.lineno,
                f"{node.name} is a dataclass but not frozen=True; mutable "
                "configs invalidate their own content hash",
            )
        if not (_has_config_base(node) or {"to_dict", "from_dict"} <= methods):
            yield self.finding(
                path, node.lineno,
                f"{node.name} is not reachable from to_dict/from_dict: inherit "
                "a config base (e.g. SolverConfig) or define both methods",
            )
        for field in fields:
            field_name = field.target.id  # type: ignore[union-attr]
            for bad in set(_annotation_violations(field.annotation)):
                yield self.finding(
                    path, field.lineno,
                    f"{node.name}.{field_name} annotated with non-serializable "
                    f"type {bad!r}; configs may only carry JSON scalars, "
                    "containers of them, or nested *Config values",
                )
            if field.value is None:
                yield self.finding(
                    path, field.lineno,
                    f"{node.name}.{field_name} has no default; config fields "
                    "must be defaulted so previously serialized specs still load",
                )
            elif _annotation_mentions_none(field.annotation) and not (
                isinstance(field.value, ast.Constant) and field.value.value is None
            ):
                yield self.finding(
                    path, field.lineno,
                    f"{node.name}.{field_name} is Optional but defaults to a "
                    "non-None value; Optional fields must default to None so "
                    "the None-excluded hash keeps old cache entries valid",
                )
