"""Rule ``concurrency``: the asyncio service's cross-module invariants.

PR 7 put an event loop at the center of the repo; these checks encode the
four ways that loop silently degrades, all of them interprocedural:

1. **Blocking calls on the loop.**  A blocking primitive — ``time.sleep``,
   file/socket I/O, ``subprocess``, ``Future.result()``, a slow
   ``threading.Lock`` — reachable from an ``async def`` through any chain of
   *synchronous* project calls stalls every request on the loop.  Hops
   through ``run_in_executor``/``asyncio.to_thread`` break the chain (the
   hopped function runs on a worker thread), and acquiring a lock counts as
   blocking only when the project also holds that lock across a blocking
   site somewhere (a "slow lock") — a lock guarding pure dict ops is fine.

2. **Fire-and-forget tasks.**  A ``create_task``/``ensure_future`` result
   that is neither awaited, gathered, nor given a done-callback beyond
   container bookkeeping (``set.discard``) drops its exception on the floor.
   Factories that *return* an unobserved task propagate the obligation to
   their call sites.

3. **Await under a sync lock.**  ``await`` inside ``with threading.Lock():``
   holds the lock across a suspension point — every other thread touching
   that lock stalls for an arbitrary number of loop iterations.

4. **Cross-thread attribute writes.**  An attribute written (unguarded) by
   executor-side code and touched by loop-side code of the same class is a
   data race the GIL only probabilistically hides.

The runtime cross-check for all four lives in
:mod:`repro.lint.sanitize` (``loop_stall_guard``).
"""

from __future__ import annotations

import ast
import collections
from typing import Iterable

from repro.lint.astutil import terminal_name
from repro.lint.findings import Finding
from repro.lint.project import (
    CallSite,
    FunctionInfo,
    ProjectGraph,
    task_value_usage,
)
from repro.lint.registry import PROJECT_SCOPE, Rule, register

#: Canonical dotted names that block the calling thread outright.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system", "os.wait", "os.waitpid",
        "os.open", "os.read", "os.write", "os.fsync", "os.fdatasync",
        "subprocess.run", "subprocess.call", "subprocess.check_call",
        "subprocess.check_output", "subprocess.getoutput",
        "socket.create_connection", "socket.getaddrinfo",
        "urllib.request.urlopen",
        "shutil.copy", "shutil.copy2", "shutil.copyfile", "shutil.copytree",
        "input",
    }
)

#: Blocking methods keyed by the receiver's (pseudo-)type.
BLOCKING_METHODS = {
    "concurrent.futures.Future": frozenset({"result", "exception"}),
    "concurrent.futures.Executor": frozenset({"shutdown"}),
    "threading.Thread": frozenset({"join"}),
    "threading.Event": frozenset({"wait"}),
    "queue.Queue": frozenset({"get", "put", "join"}),
    "subprocess.Popen": frozenset({"wait", "communicate"}),
    "socket.socket": frozenset(
        {"connect", "accept", "recv", "send", "sendall", "recvfrom"}
    ),
}

#: ``with lock:`` / ``lock.acquire()`` methods (blocking iff the lock is slow).
_LOCK_METHODS = frozenset({"acquire", "wait", "wait_for"})


def _primitive_blocking_site(site: CallSite) -> str | None:
    """Description when a call site is an unconditional blocking primitive."""
    if site.dotted in BLOCKING_CALLS:
        return f"{site.dotted}(...)"
    if site.dotted is None and site.attr == "open" and isinstance(
        site.node.func, ast.Name
    ):
        return "open(...)"
    if site.receiver_type in BLOCKING_METHODS and site.attr in BLOCKING_METHODS[
        site.receiver_type
    ]:
        if site.receiver_type == "concurrent.futures.Executor":
            # shutdown(wait=False) does not join the workers.
            for keyword in site.node.keywords:
                if (
                    keyword.arg == "wait"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False
                ):
                    return None
        return f"{site.receiver_type.rsplit('.', 1)[-1]}.{site.attr}(...)"
    if site.receiver_type == "threading.Lock" and site.attr in _LOCK_METHODS:
        return None  # handled by the slow-lock analysis
    return None


@register
class ConcurrencyRule(Rule):
    code = "concurrency"
    scope = PROJECT_SCOPE
    description = (
        "event-loop safety: no blocking calls reachable from async code "
        "without an executor hop, no fire-and-forget task exceptions, no "
        "await under a sync lock, no unguarded cross-thread attribute writes"
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        blocking, slow_locks, primitives = _blocking_fixpoint(project)
        yield from self._check_async_bodies(
            project, blocking, slow_locks, primitives
        )
        yield from self._check_task_spawns(project)
        yield from self._check_shared_attributes(project)

    # -- 1: blocking calls reachable from async code -------------------

    def _check_async_bodies(self, project, blocking, slow_locks, primitives):
        for function in project.functions.values():
            if not function.is_async:
                continue
            for lineno, description in primitives.get(function.fid, ()):
                yield self.finding(
                    function.path,
                    lineno,
                    f"blocking call {description} on the event loop in "
                    f"`async def {function.qualname}`; hop it through "
                    "run_in_executor/to_thread",
                )
            for lineno, lock_id, display in function.lock_acquires:
                if lock_id in slow_locks:
                    yield self.finding(
                        function.path,
                        lineno,
                        f"acquiring {display} on the event loop in "
                        f"`async def {function.qualname}`: the project holds "
                        "this lock across blocking work elsewhere, so the "
                        "loop can stall behind it",
                    )
            for site in function.calls:
                callee = site.callee
                if callee is None or callee not in blocking:
                    continue
                callee_info = project.functions[callee]
                if callee_info.is_async:
                    continue  # flagged inside its own body, not at the await
                chain = _blocking_chain(project, callee, blocking, primitives)
                yield self.finding(
                    function.path,
                    site.lineno,
                    f"`async def {function.qualname}` calls "
                    f"{callee_info.qualname}(), which blocks ({chain}); "
                    "hop it through run_in_executor/to_thread",
                )

    # -- 2: fire-and-forget tasks --------------------------------------

    def _check_task_spawns(self, project: ProjectGraph):
        factories = _unobserved_task_factories(project)
        for function in project.functions.values():
            for spawn in function.task_spawns:
                usage = task_value_usage(project, function, spawn)
                if not usage.observed and not usage.returned:
                    yield self._task_finding(function, spawn.lineno, usage.detail)
            for site in function.calls:
                if site.callee in factories and not site.via_callback:
                    usage = task_value_usage(project, function, site.node)
                    if not usage.observed and not usage.returned:
                        factory = project.functions[site.callee]
                        yield self._task_finding(
                            function,
                            site.lineno,
                            f"task returned by {factory.qualname}() "
                            f"{usage.detail}",
                        )

    def _task_finding(self, function: FunctionInfo, lineno: int, detail: str):
        return self.finding(
            function.path,
            lineno,
            f"fire-and-forget task in {function.qualname}: {detail}; await "
            "it, gather it, or attach an exception-surfacing done-callback",
        )

    # -- 3: await while holding a sync lock ----------------------------
    # -- 4: cross-thread attribute writes ------------------------------

    def _check_async_lock_regions(self, project: ProjectGraph):
        for function in project.functions.values():
            if not function.is_async:
                continue
            for region in function.lock_regions:
                for lineno in region.await_linenos:
                    yield self.finding(
                        function.path,
                        lineno,
                        f"await while holding sync lock {region.display} in "
                        f"`async def {function.qualname}`: the lock is held "
                        "across a suspension point, stalling every thread "
                        "that contends for it",
                    )

    def _check_shared_attributes(self, project: ProjectGraph):
        yield from self._check_async_lock_regions(project)
        loop_side = project.reachable_from(
            fid for fid, fn in project.functions.items() if fn.is_async
        )
        executor_side = project.reachable_from(project.executor_entries)
        # Attribute accesses by class and side; __init__ is construction
        # (happens-before any concurrency) and is excluded from both sides.
        for cid, info in project.classes.items():
            loop_attrs: set[str] = set()
            for name, fid in info.methods.items():
                if name == "__init__" or fid not in loop_side:
                    continue
                loop_attrs.update(
                    access.attr for access in project.functions[fid].attr_accesses
                )
            if not loop_attrs:
                continue
            for name, fid in info.methods.items():
                if name == "__init__" or fid not in executor_side:
                    continue
                function = project.functions[fid]
                for access in function.attr_accesses:
                    if (
                        access.is_write
                        and not access.guarded
                        and access.attr in loop_attrs
                    ):
                        yield self.finding(
                            function.path,
                            access.lineno,
                            f"{info.name}.{access.attr} is written from "
                            f"executor-side code ({function.qualname}) and "
                            "touched by event-loop code; guard the write "
                            "with a lock or hand it back via "
                            "call_soon_threadsafe",
                        )


# ---------------------------------------------------------------------------
# Whole-program blocking classification
# ---------------------------------------------------------------------------


def _function_primitives(function: FunctionInfo) -> list[tuple[int, str]]:
    sites = []
    for site in function.calls:
        description = _primitive_blocking_site(site)
        if description is not None:
            sites.append((site.lineno, description))
    return sites


def _blocking_fixpoint(project: ProjectGraph):
    """(blocking sync fns, slow locks, per-fn primitive sites) to a fixpoint.

    Blocking functions and slow locks are mutually recursive — a lock is
    slow when held across blocking work; acquiring a slow lock is itself
    blocking — so both sets grow together until stable.  Every iteration
    only adds elements, so termination is bounded by the project size.
    """
    primitives = {
        fid: _function_primitives(function)
        for fid, function in project.functions.items()
    }
    slow_locks: set[str] = set()
    while True:
        blocking = _propagate_blocking(project, primitives, slow_locks)
        grown = set(slow_locks)
        for function in project.functions.values():
            for region in function.lock_regions:
                held_across_blocking = any(
                    _primitive_blocking_site(site) is not None
                    or (
                        site.callee is not None
                        and site.callee in blocking
                        and not project.functions[site.callee].is_async
                    )
                    for site in region.calls
                )
                if held_across_blocking:
                    grown.add(region.lock_id)
        if grown == slow_locks:
            return blocking, slow_locks, primitives
        slow_locks = grown


def _propagate_blocking(project, primitives, slow_locks) -> set[str]:
    """Sync functions that block, propagated through sync call edges."""
    blocking = set()
    for fid, function in project.functions.items():
        if primitives[fid]:
            blocking.add(fid)
        elif any(lock in slow_locks for _line, lock, _d in function.lock_acquires):
            blocking.add(fid)
    changed = True
    while changed:
        changed = False
        for fid, function in project.functions.items():
            if fid in blocking or function.is_async:
                continue
            for callee in project.callees(fid):
                callee_info = project.functions.get(callee)
                if (
                    callee in blocking
                    and callee_info is not None
                    and not callee_info.is_async
                ):
                    blocking.add(fid)
                    changed = True
                    break
    return blocking


def _blocking_chain(project, start, blocking, primitives) -> str:
    """Human-readable shortest chain from a function to a primitive site."""
    queue = collections.deque([(start, [start])])
    seen = {start}
    while queue:
        fid, path = queue.popleft()
        function = project.functions[fid]
        if primitives[fid]:
            lineno, description = primitives[fid][0]
            via = " -> ".join(project.functions[hop].qualname for hop in path)
            return f"via {via}: {description} at {function.path}:{lineno}"
        for callee in project.callees(fid):
            callee_info = project.functions.get(callee)
            if (
                callee in blocking
                and callee not in seen
                and callee_info is not None
                and not callee_info.is_async
            ):
                seen.add(callee)
                queue.append((callee, path + [callee]))
    # Blocking through a slow lock with no primitive of its own.
    function = project.functions[start]
    for _line, _lock, display in function.lock_acquires:
        return f"acquires slow lock {display}"
    return "blocking"


def _unobserved_task_factories(project: ProjectGraph) -> set[str]:
    """Functions that return a task nobody attached an exception consumer to."""
    factories: set[str] = set()
    for fid, function in project.functions.items():
        for spawn in function.task_spawns:
            usage = task_value_usage(project, function, spawn)
            if usage.returned and not usage.observed:
                factories.add(fid)
    return factories
