"""Rule ``hotpath`` (advisory): keep basis-sized work vectorised in hot modules.

The three modules every cost evaluation flows through —
``hamiltonian/compiled.py``, ``qcircuit/statevector.py`` and
``core/subspace.py`` — earned their speedups (BENCH_iteration_throughput:
6.8x) by keeping all basis-sized work inside NumPy.  This advisory tier
flags the two regressions that quietly undo that:

* a Python-level ``for``/comprehension iterating a basis-sized sequence
  (amplitudes, probabilities, the feasible basis) element by element;
* array allocations (``np.zeros``/``np.arange``/...) inside a loop body,
  the repeated-allocation pattern the compile-once refactor removed.

Heuristic by nature, hence *advisory* severity: a justified occurrence
(one-time construction, sparse export) carries a
``# repro: ignore[hotpath]`` with its justification instead of being
reworked.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.astutil import ImportMap, call_name, terminal_name
from repro.lint.engine import ModuleUnderLint
from repro.lint.findings import ADVISORY, Finding
from repro.lint.registry import Rule, register

#: Path suffixes of the designated hot modules.
HOT_MODULE_SUFFIXES = (
    "repro/hamiltonian/compiled.py",
    "repro/qcircuit/statevector.py",
    "repro/core/subspace.py",
)

#: Identifiers that (in the hot modules) name basis-sized sequences.
_BASIS_SIZED_NAMES = frozenset(
    {"basis", "data", "amplitudes", "probabilities", "states", "outcomes"}
)

#: Wrappers through which a basis-sized iterable is still basis-sized.
_ITER_WRAPPERS = frozenset({"enumerate", "reversed", "sorted", "iter", "list", "tuple"})

#: NumPy allocators that should be hoisted out of loops.
_ALLOCATORS = frozenset(
    {
        "numpy.zeros", "numpy.empty", "numpy.ones", "numpy.full",
        "numpy.eye", "numpy.arange", "numpy.zeros_like", "numpy.empty_like",
        "numpy.ones_like", "numpy.full_like",
    }
)


def is_hot_module(path: str) -> bool:
    return path.endswith(HOT_MODULE_SUFFIXES)


def _iterable_is_basis_sized(node: ast.AST) -> bool:
    if isinstance(node, (ast.Name, ast.Attribute)):
        return terminal_name(node) in _BASIS_SIZED_NAMES
    if isinstance(node, ast.Call):
        callee = terminal_name(node.func)
        if callee in _ITER_WRAPPERS:
            return any(_iterable_is_basis_sized(argument) for argument in node.args)
    return False


@register
class HotPathRule(Rule):
    code = "hotpath"
    severity = ADVISORY
    description = (
        "advisory: no Python-level loops over basis-sized iterables and no "
        "array allocations inside loops in the designated hot modules"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if not is_hot_module(module.path):
            return
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _iterable_is_basis_sized(node.iter):
                    yield self._loop_finding(module.path, node.lineno)
                yield from self._allocations_in_loop(module.path, node, imports)
            elif isinstance(node, ast.While):
                yield from self._allocations_in_loop(module.path, node, imports)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if _iterable_is_basis_sized(generator.iter):
                        yield self._loop_finding(module.path, node.lineno)

    def _loop_finding(self, path: str, line: int) -> Finding:
        return self.finding(
            path, line,
            "Python-level loop over a basis-sized iterable in a hot module; "
            "vectorise with NumPy, or justify with # repro: ignore[hotpath]",
        )

    def _allocations_in_loop(
        self, path: str, loop: ast.stmt, imports: ImportMap
    ) -> Iterable[Finding]:
        for field in ("body", "orelse"):
            for statement in getattr(loop, field, []):
                for inner in ast.walk(statement):
                    if (
                        isinstance(inner, ast.Call)
                        and call_name(inner, imports) in _ALLOCATORS
                    ):
                        allocator = call_name(inner, imports)
                        yield self.finding(
                            path, inner.lineno,
                            f"{allocator} allocated inside a loop in a hot "
                            "module; hoist the allocation out of the loop",
                        )
