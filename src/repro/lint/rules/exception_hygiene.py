"""Rule ``exceptions``: no bare ``except:`` and no silent broad swallows.

A bare ``except:`` catches ``KeyboardInterrupt``/``SystemExit`` and hides
typos; ``except Exception: pass`` converts any bug into silence — the exact
failure mode the dropped-shot accounting bug hid behind.  Narrow handlers
that deliberately ignore a *specific* exception (``except ImportError:
pass`` around an optional dependency) stay legal.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.astutil import terminal_name
from repro.lint.engine import ModuleUnderLint
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_BROAD = frozenset({"Exception", "BaseException"})


def _catches_broad(node: ast.ExceptHandler) -> bool:
    handler_type = node.type
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Tuple):
        return any(terminal_name(element) in _BROAD for element in handler_type.elts)
    return terminal_name(handler_type) in _BROAD


def _body_is_silent(body: list[ast.stmt]) -> bool:
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Continue):
            continue
        if (
            isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis
        ):
            continue
        return False
    return True


@register
class ExceptionHygieneRule(Rule):
    code = "exceptions"
    description = "no bare `except:`; no silent `except Exception: pass`"

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module.path,
                    node.lineno,
                    "bare `except:` catches SystemExit/KeyboardInterrupt; "
                    "name the exception(s) you mean",
                )
            elif _catches_broad(node) and _body_is_silent(node.body):
                yield self.finding(
                    module.path,
                    node.lineno,
                    "silent `except Exception: pass` swallows every bug; "
                    "narrow the type or handle (log/re-raise) the error",
                )
