"""Rule ``artifacts``: committed ``BENCH_*.json`` files obey one schema.

The BENCH files are the repo's perf trajectory — later PRs gate speedups
against the recorded numbers, which only works while every file stays
machine-readable under one contract (the shape
``benchmarks/harness.write_bench_json`` produces):

* required top-level keys: ``benchmark``, ``created_utc``, ``python``,
  ``machine``, ``metadata`` (object) and non-empty ``rows``;
* ``benchmark`` matches the ``BENCH_<name>.json`` filename;
* ``created_utc`` is a timezone-aware ISO-8601 instant inside a sane window
  (post-2020, not in the future), and any per-row timestamp column is
  monotone non-decreasing in row order;
* all rows share one key set (no half-renamed columns), and numeric values
  are JSON numbers — not strings — so gates can compare them;
* percent columns (key ending in ``_%`` or carrying a ``_%[...]`` label) hold
  JSON numbers within [-100, 100] — a rate outside that window means the
  writer recorded a raw fraction or a ratio under a percent name;
* the speedup gate travels with the data: rows with ``*speedup*`` columns
  require ``metadata.target_speedup``, and vice versa.
"""

from __future__ import annotations

import datetime
import re
from typing import Any, Iterable

from repro.lint.engine import ArtifactUnderLint
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_REQUIRED_KEYS = ("benchmark", "created_utc", "python", "machine", "metadata", "rows")

_NUMERIC_STRING = re.compile(r"^-?\d+(\.\d+)?([eE][+-]?\d+)?$")

_TIMESTAMP_KEYS = ("timestamp", "created_utc", "time_utc")


def _is_percent_key(key: str) -> bool:
    """True for percent-valued columns: ``size_red_%``, ``success_%[hea]``."""
    return key.endswith("_%") or "_%[" in key

#: Committed timestamps earlier than this are bogus (repo did not exist).
_EPOCH_FLOOR = datetime.datetime(2020, 1, 1, tzinfo=datetime.timezone.utc)


def _parse_instant(value: Any) -> datetime.datetime | None:
    if not isinstance(value, str):
        return None
    try:
        instant = datetime.datetime.fromisoformat(value)
    except ValueError:
        return None
    return instant if instant.tzinfo is not None else None


@register
class ArtifactHygieneRule(Rule):
    code = "artifacts"
    description = (
        "BENCH_*.json perf-trajectory files validate against the shared "
        "schema: required keys, sane timestamps, consistent typed rows, "
        "speedup-gate fields present"
    )

    def check_artifact(self, artifact: ArtifactUnderLint) -> Iterable[Finding]:
        if artifact.parse_error is not None:
            yield self.finding(
                artifact.path, 0, f"not valid JSON: {artifact.parse_error}"
            )
            return
        data = artifact.data
        if not isinstance(data, dict):
            yield self.finding(artifact.path, 0, "top level must be a JSON object")
            return
        missing = [key for key in _REQUIRED_KEYS if key not in data]
        if missing:
            yield self.finding(
                artifact.path, 0, f"missing required key(s): {', '.join(missing)}"
            )
            return
        yield from self._check_name(artifact, data)
        yield from self._check_timestamp(artifact, data)
        metadata = data["metadata"]
        if not isinstance(metadata, dict):
            yield self.finding(artifact.path, 0, "metadata must be a JSON object")
            metadata = {}
        rows = data["rows"]
        if not isinstance(rows, list) or not rows:
            yield self.finding(artifact.path, 0, "rows must be a non-empty array")
            return
        yield from self._check_rows(artifact, rows)
        yield from self._check_speedup_gate(artifact, metadata, rows)

    # ------------------------------------------------------------------

    def _check_name(self, artifact: ArtifactUnderLint, data: dict) -> Iterable[Finding]:
        filename = artifact.path.rsplit("/", 1)[-1]
        expected = f"BENCH_{data['benchmark']}.json"
        if filename != expected:
            yield self.finding(
                artifact.path, 0,
                f"benchmark field {data['benchmark']!r} does not match the "
                f"filename (expected {expected})",
            )

    def _check_timestamp(
        self, artifact: ArtifactUnderLint, data: dict
    ) -> Iterable[Finding]:
        instant = _parse_instant(data["created_utc"])
        if instant is None:
            yield self.finding(
                artifact.path, 0,
                f"created_utc {data['created_utc']!r} is not a timezone-aware "
                "ISO-8601 instant",
            )
            return
        now = datetime.datetime.now(datetime.timezone.utc)
        if instant < _EPOCH_FLOOR or instant > now + datetime.timedelta(days=1):
            yield self.finding(
                artifact.path, 0,
                f"created_utc {data['created_utc']!r} outside the sane window "
                "(post-2020, not in the future)",
            )

    def _check_rows(
        self, artifact: ArtifactUnderLint, rows: list
    ) -> Iterable[Finding]:
        first_keys: frozenset[str] | None = None
        previous_instants: dict[str, datetime.datetime] = {}
        for index, row in enumerate(rows):
            if not isinstance(row, dict):
                yield self.finding(
                    artifact.path, 0, f"rows[{index}] is not a JSON object"
                )
                return
            keys = frozenset(row)
            if first_keys is None:
                first_keys = keys
            elif keys != first_keys:
                missing = sorted(first_keys - keys)
                extra = sorted(keys - first_keys)
                detail = "; ".join(
                    part
                    for part in (
                        f"missing {missing}" if missing else "",
                        f"extra {extra}" if extra else "",
                    )
                    if part
                )
                yield self.finding(
                    artifact.path, 0,
                    f"rows[{index}] key set drifts from rows[0]: {detail}",
                )
            for key, value in row.items():
                if isinstance(value, str) and _NUMERIC_STRING.match(value):
                    yield self.finding(
                        artifact.path, 0,
                        f"rows[{index}][{key!r}] holds the number {value!r} as "
                        "a string; record JSON numbers so gates can compare them",
                    )
                if _is_percent_key(key):
                    if not isinstance(value, (int, float)) or isinstance(value, bool):
                        yield self.finding(
                            artifact.path, 0,
                            f"rows[{index}][{key!r}] is a percent column but "
                            "holds a non-number; record a JSON number",
                        )
                    elif not -100.0 <= value <= 100.0:
                        yield self.finding(
                            artifact.path, 0,
                            f"rows[{index}][{key!r}] = {value!r} outside "
                            "[-100, 100]; percent columns record percentages, "
                            "not raw fractions or ratios",
                        )
                if key in _TIMESTAMP_KEYS:
                    instant = _parse_instant(value)
                    if instant is None:
                        yield self.finding(
                            artifact.path, 0,
                            f"rows[{index}][{key!r}] is not a timezone-aware "
                            "ISO-8601 instant",
                        )
                    elif key in previous_instants and instant < previous_instants[key]:
                        yield self.finding(
                            artifact.path, 0,
                            f"rows[{index}][{key!r}] moves backwards in time; "
                            "row timestamps must be monotone non-decreasing",
                        )
                    if instant is not None:
                        previous_instants[key] = instant

    def _check_speedup_gate(
        self, artifact: ArtifactUnderLint, metadata: dict, rows: list
    ) -> Iterable[Finding]:
        row_has_speedup = any(
            "speedup" in key for row in rows if isinstance(row, dict) for key in row
        )
        metadata_has_target = any("target_speedup" in key for key in metadata)
        if row_has_speedup and not metadata_has_target:
            yield self.finding(
                artifact.path, 0,
                "rows record speedups but metadata carries no target_speedup "
                "gate; record the gate the benchmark enforces",
            )
        if metadata_has_target and not row_has_speedup:
            yield self.finding(
                artifact.path, 0,
                "metadata declares target_speedup but no row records a "
                "speedup column to gate on",
            )
