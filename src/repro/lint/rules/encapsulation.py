"""Rule ``encapsulation``: no cross-module access to ``_private`` attributes.

The PR 5 bug class: ``qcircuit.circuit`` grew a public
``append_instruction`` because the noise layer had been poking
``circuit._instructions`` directly — a silent contract that broke the moment
the list representation changed.  This rule makes that class of coupling a
lint error.

A private *attribute* access ``expr._name`` is allowed when

* the base is ``self`` or ``cls`` (ordinary intra-class use), or
* some class *in the same module* owns an attribute or method ``_name``
  (friend access between a class and its same-module peers — e.g. a binary
  method reading ``other._counts`` — is module-internal by definition).

Everything else is cross-module reach-through.  Importing a ``_private``
name from another absolute module (``from x.y import _helper``) is flagged
for the same reason; package-relative imports stay allowed so a package may
share internals among its own modules.

Test files are exempt: tests legitimately inspect internals to pin
behaviour (call-count spies, cache introspection).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import ModuleUnderLint
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _owned_private_names(tree: ast.AST) -> frozenset[str]:
    """Private attribute/method names any class defined in this module owns."""
    owned: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if statement.name.startswith("_"):
                    owned.add(statement.name)
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                owned.add(statement.target.id)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        owned.add(target.id)
        # `self._x = ...` anywhere inside the class body (methods included).
        for inner in ast.walk(node):
            targets: list[ast.expr] = []
            if isinstance(inner, ast.Assign):
                targets = list(inner.targets)
            elif isinstance(inner, (ast.AnnAssign, ast.AugAssign)):
                targets = [inner.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    owned.add(target.attr)
    return frozenset(name for name in owned if name.startswith("_"))


def _is_test_module(path: str) -> bool:
    parts = path.split("/")
    filename = parts[-1]
    return (
        "tests" in parts
        or filename.startswith("test_")
        or filename == "conftest.py"
    )


@register
class EncapsulationRule(Rule):
    code = "encapsulation"
    description = (
        "no cross-module access to another object's _private attributes "
        "(the PR 5 `_instructions` bug class); tests are exempt"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if _is_test_module(module.path):
            return
        owned = _owned_private_names(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import(module.path, node)
                continue
            if not isinstance(node, ast.Attribute):
                continue
            name = node.attr
            if not name.startswith("_") or _is_dunder(name):
                continue
            base = node.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                continue
            if name in owned:
                continue
            yield self.finding(
                module.path,
                node.lineno,
                f"access to private attribute {name!r} of a foreign object; "
                "use (or add) a public accessor on the owning class",
            )

    def _check_import(self, path: str, node: ast.ImportFrom) -> Iterable[Finding]:
        if node.level:  # package-relative: module-family internals are fair game
            return
        for alias in node.names:
            if alias.name.startswith("_") and not _is_dunder(alias.name):
                yield self.finding(
                    path,
                    node.lineno,
                    f"importing private name {alias.name!r} from "
                    f"{node.module!r}; export it publicly or keep it module-local",
                )
