"""Rule ``ipdeterminism``: interprocedural determinism taint propagation.

The per-module ``determinism`` rule flags the *line* that draws from a
global RNG.  This project rule answers the question the per-module rule
cannot: which entry points does that entropy leak *into*?  A private helper
drawing from ``np.random.uniform`` taints every public function or method
that transitively reaches it through the call graph — exactly the surface a
user of the experiment API touches — and each tainted public entry point is
flagged at its ``def`` line with the shortest chain to the draw.

Private helpers are not re-flagged here (the per-module rule already marks
the draw itself); the value added is the propagation.  Suppressing a draw
at its source line does *not* untaint callers — a sanctioned entropy source
should be threaded through an explicit seeded generator instead.
"""

from __future__ import annotations

import ast
import collections
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.project import ProjectGraph
from repro.lint.registry import PROJECT_SCOPE, Rule, register
from repro.lint.rules.determinism import global_rng_draw


@register
class InterproceduralDeterminismRule(Rule):
    code = "ipdeterminism"
    scope = PROJECT_SCOPE
    description = (
        "no public entry point may transitively reach a global-RNG draw "
        "hidden inside a helper (taint propagation over the call graph)"
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        draws = _direct_draws(project)
        tainted = _propagate_taint(project, draws)
        for fid, function in sorted(project.functions.items()):
            if not function.is_public or function.is_dunder:
                continue
            if fid in draws:
                continue  # the per-module determinism rule owns the draw line
            if fid not in tainted:
                continue
            chain = _shortest_chain(project, fid, draws)
            yield self.finding(
                function.path,
                function.lineno,
                f"public entry point {function.qualname}() transitively "
                f"draws from the global RNG ({chain}); thread a seeded "
                "Generator through instead",
            )


def _direct_draws(project: ProjectGraph) -> dict[str, tuple[int, str]]:
    """fid -> (lineno, draw name) for functions that draw directly."""
    draws: dict[str, tuple[int, str]] = {}
    for fid, function in project.functions.items():
        imports = project.import_map(function.module)
        for node in ast.walk(function.node):
            if isinstance(node, ast.Call):
                draw = global_rng_draw(node, imports)
                if draw is not None:
                    draws.setdefault(fid, (node.lineno, draw))
    return draws


def _propagate_taint(project: ProjectGraph, draws) -> set[str]:
    """Callers of tainted functions become tainted (cycle-safe fixpoint)."""
    callers: dict[str, set[str]] = collections.defaultdict(set)
    for fid in project.functions:
        for callee in project.callees(fid):
            callers[callee].add(fid)
    tainted = set(draws)
    queue = collections.deque(tainted)
    while queue:
        fid = queue.popleft()
        for caller in callers.get(fid, ()):
            if caller not in tainted:
                tainted.add(caller)
                queue.append(caller)
    return tainted


def _shortest_chain(project: ProjectGraph, start: str, draws) -> str:
    queue = collections.deque([(start, [start])])
    seen = {start}
    while queue:
        fid, path = queue.popleft()
        if fid in draws:
            lineno, draw = draws[fid]
            via = " -> ".join(project.functions[hop].qualname for hop in path)
            terminal = project.functions[fid]
            return f"via {via}: {draw} at {terminal.path}:{lineno}"
        for callee in project.callees(fid):
            if callee not in seen and callee in project.functions:
                seen.add(callee)
                queue.append((callee, path + [callee]))
    return "draw site unresolved"  # pragma: no cover - taint implies a path
