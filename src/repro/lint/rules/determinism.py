"""Rule ``determinism``: every random draw must trace back to an explicit seed.

The repo's parallel experiment runner promises bit-identical results across
process boundaries, which only holds when *all* randomness flows through
``np.random.SeedSequence``-derived generators (see
``repro.solvers.variational.derive_seed_sequence``).  This rule flags the
statically detectable ways entropy leaks in:

* seeding or drawing from NumPy's *global* generator
  (``np.random.seed(...)``, ``np.random.uniform(...)``, ...);
* ``np.random.default_rng()`` with no argument — an OS-entropy generator
  no seed can reproduce;
* the stdlib ``random`` module's global-state API (``random.random()``,
  ``random.shuffle(...)``, unseeded ``random.Random()``);
* wall-clock seeding: ``time.time()`` / ``time.time_ns()`` fed to a
  generator constructor or a ``seed=`` keyword.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.astutil import ImportMap, call_name
from repro.lint.engine import ModuleUnderLint
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Draws (and state pokes) on numpy's module-level global generator.
_NUMPY_GLOBAL = frozenset(
    {
        "seed", "get_state", "set_state", "rand", "randn", "randint",
        "random", "random_sample", "ranf", "sample", "bytes", "choice",
        "shuffle", "permutation", "uniform", "normal", "standard_normal",
        "binomial", "poisson", "beta", "gamma", "exponential", "chisquare",
        "dirichlet", "laplace", "logistic", "lognormal", "multinomial",
        "multivariate_normal", "pareto", "rayleigh", "triangular",
        "vonmises", "wald", "weibull", "zipf", "geometric", "gumbel",
    }
)

#: Stdlib ``random`` module functions backed by its hidden global instance.
_STDLIB_GLOBAL = frozenset(
    {
        "seed", "random", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "gauss", "normalvariate",
        "expovariate", "betavariate", "gammavariate", "triangular",
        "vonmisesvariate", "paretovariate", "weibullvariate",
        "getrandbits", "randbytes", "setstate", "getstate",
    }
)

#: Constructors whose argument is an RNG seed.
_SEED_SINKS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
        "numpy.random.seed",
        "random.Random",
        "random.seed",
    }
)

_WALL_CLOCK = frozenset({"time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns"})


def _contains_wall_clock(node: ast.AST, imports: ImportMap) -> bool:
    for inner in ast.walk(node):
        if isinstance(inner, ast.Call) and call_name(inner, imports) in _WALL_CLOCK:
            return True
    return False


def global_rng_draw(node: ast.Call, imports: ImportMap) -> str | None:
    """Canonical name of the global-RNG draw a call performs, or None.

    Shared with the interprocedural ``ipdeterminism`` project rule, which
    propagates this per-call-site fact through the call graph.
    """
    name = call_name(node, imports) or ""
    if name.startswith("numpy.random."):
        tail = name[len("numpy.random."):]
        if tail in _NUMPY_GLOBAL:
            return f"np.random.{tail}"
        if tail == "default_rng" and not node.args and not node.keywords:
            return "np.random.default_rng()  [unseeded]"
    elif name.startswith("random."):
        tail = name[len("random."):]
        if tail in _STDLIB_GLOBAL:
            return f"random.{tail}"
        if tail == "Random" and not node.args and not node.keywords:
            return "random.Random()  [unseeded]"
    return None


@register
class DeterminismRule(Rule):
    code = "determinism"
    description = (
        "randomness must come from seeded, SeedSequence-derived generators: "
        "no global-RNG draws, no unseeded default_rng(), no wall-clock seeds"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    module.path, node, call_name(node, imports), imports
                )

    def _check_call(
        self, path: str, node: ast.Call, name: str | None, imports: ImportMap
    ) -> Iterable[Finding]:
        if name is None:
            name = ""
        if name.startswith("numpy.random."):
            tail = name[len("numpy.random."):]
            if tail in _NUMPY_GLOBAL:
                yield self.finding(
                    path,
                    node.lineno,
                    f"np.random.{tail}() uses numpy's global generator; "
                    "draw from a seeded np.random.default_rng(seed) instead",
                )
            elif tail == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    path,
                    node.lineno,
                    "np.random.default_rng() without a seed draws OS entropy; "
                    "pass a seed or a SeedSequence-derived child",
                )
        elif name.startswith("random."):
            tail = name[len("random."):]
            if tail in _STDLIB_GLOBAL:
                yield self.finding(
                    path,
                    node.lineno,
                    f"random.{tail}() uses the stdlib global RNG; use a seeded "
                    "np.random.default_rng(seed) instead",
                )
            elif tail == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    path,
                    node.lineno,
                    "random.Random() without a seed is non-reproducible; pass a seed",
                )
        if name in _SEED_SINKS:
            for argument in [*node.args, *(kw.value for kw in node.keywords)]:
                if _contains_wall_clock(argument, imports):
                    yield self.finding(
                        path,
                        node.lineno,
                        f"{name.split('.')[-1]}(...) seeded from the wall clock; "
                        "wall-clock seeds are unreproducible by construction",
                    )
        # `anything(seed=time.time())` — a wall-clock seed smuggled through a
        # keyword into a helper that forwards it to a generator.
        for keyword in node.keywords:
            if keyword.arg == "seed" and name not in _SEED_SINKS:
                if _contains_wall_clock(keyword.value, imports):
                    yield self.finding(
                        path,
                        node.lineno,
                        "seed= derived from the wall clock; pass a reproducible seed",
                    )
