"""Built-in lint rules.

Importing this package registers every shipped rule with the registry —
one module per rule family, each grounded in a bug class an earlier PR
actually fixed (see the module docstrings).  Per-module rules see one AST
at a time; the project rules (``concurrency``, ``ipdeterminism``,
``deadcode``) see the whole-program :class:`~repro.lint.project.ProjectGraph`.
New rules follow the recipe in :mod:`repro.lint.registry`.
"""

from repro.lint.rules import (  # noqa: F401  (imported for their @register side effect)
    artifacts,
    concurrency,
    config_discipline,
    deadcode,
    determinism,
    encapsulation,
    exception_hygiene,
    hotpath,
    ipdeterminism,
)
