"""Built-in lint rules.

Importing this package registers every shipped rule with the registry —
one module per rule family, each grounded in a bug class PRs 1–5 actually
fixed (see the module docstrings).  New rules follow the recipe in
:mod:`repro.lint.registry`.
"""

from repro.lint.rules import (  # noqa: F401  (imported for their @register side effect)
    artifacts,
    config_discipline,
    determinism,
    encapsulation,
    exception_hygiene,
    hotpath,
)
