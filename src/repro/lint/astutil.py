"""Small AST helpers shared by the rule implementations.

The rules never guess at spelling: an :class:`ImportMap` records every
import alias in a module, and :func:`resolve_dotted` canonicalises a
``Name``/``Attribute`` chain through those aliases — so ``np.random.seed``,
``numpy.random.seed`` and ``from numpy.random import seed`` all resolve to
the same dotted string ``numpy.random.seed``.
"""

from __future__ import annotations

import ast


class ImportMap:
    """Alias -> canonical dotted module/name mapping for one module."""

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    # `import numpy.random` binds `numpy`; with an asname the
                    # alias points at the full dotted path.
                    target = alias.name if alias.asname else bound
                    self.aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay package-local names
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"


def dotted_chain(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_dotted(node: ast.AST, imports: ImportMap) -> str | None:
    """Canonical dotted name of an expression, through the module's aliases.

    Returns ``None`` for anything that is not a plain attribute chain rooted
    at an imported name (calls, subscripts, local variables, ...).
    """
    chain = dotted_chain(node)
    if chain is None:
        return None
    head, _, rest = chain.partition(".")
    canonical_head = imports.aliases.get(head)
    if canonical_head is None:
        return None
    return f"{canonical_head}.{rest}" if rest else canonical_head


def terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a Name/Attribute expression (``self.data`` -> ``data``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_name(node: ast.Call, imports: ImportMap) -> str | None:
    """Canonical dotted name of a call's callee (or None)."""
    return resolve_dotted(node.func, imports)
