"""Event-loop stall sanitizer: the runtime counterpart to rule ``concurrency``.

The static ``concurrency`` rule proves the *absence of known* blocking
patterns on the event loop; this module catches the ones it cannot see —
dynamic dispatch, third-party code, a lock that turned slow at runtime.
:func:`loop_stall_guard` wraps a block of test code so that every event
loop created inside it (including the ones ``asyncio.run`` makes) runs in
asyncio debug mode with a tightened ``slow_callback_duration``; any
callback or task step that holds the loop longer than the threshold is
recorded as a :class:`StallEvent`, and unhandled task exceptions are
captured instead of vanishing into the default handler's log noise.  On
exit the guard raises :class:`EventLoopStallError` with a full report.

Typical pytest wiring (see ``tests/conftest.py``)::

    @pytest.fixture
    def stall_guard():
        with loop_stall_guard(threshold=0.5) as guard:
            yield guard
        # exiting the context raises if the loop stalled

Loops are intercepted by temporarily installing an event-loop policy whose
``new_event_loop`` configures each fresh loop, so the guard composes with
``asyncio.run`` / ``asyncio.Runner`` without the test touching the loop.
Stall warnings are harvested from the ``asyncio`` logger (debug mode emits
``Executing <handle> took N seconds`` at WARNING), so the guard works on
any CPython the repo supports without poking loop internals.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import logging
import re
from typing import Any, Iterator

__all__ = [
    "EventLoopStallError",
    "LoopStallGuard",
    "StallEvent",
    "loop_stall_guard",
]

#: Default stall threshold (seconds) — deliberately far above scheduler
#: jitter but far below anything a healthy handler should take.
DEFAULT_THRESHOLD = 0.25

#: Debug-mode slow-callback warning shape (asyncio.base_events / events).
_STALL_MESSAGE = re.compile(r"^Executing (?P<handle>.+) took (?P<seconds>[\d.]+) seconds$")


class EventLoopStallError(AssertionError):
    """The guarded block stalled its event loop (or dropped an exception)."""


@dataclasses.dataclass(frozen=True)
class StallEvent:
    """One callback/task step that held the event loop past the threshold."""

    handle: str
    seconds: float

    def __str__(self) -> str:
        return f"{self.seconds:.3f}s in {self.handle}"


class _AsyncioWarningHandler(logging.Handler):
    """Harvests slow-callback warnings off the ``asyncio`` logger."""

    def __init__(self, guard: "LoopStallGuard") -> None:
        super().__init__(level=logging.WARNING)
        self._guard = guard

    def emit(self, record: logging.LogRecord) -> None:
        match = _STALL_MESSAGE.match(record.getMessage())
        if match is not None:
            self._guard.stalls.append(
                StallEvent(
                    handle=match.group("handle"),
                    seconds=float(match.group("seconds")),
                )
            )


class LoopStallGuard:
    """Collects stall events and unhandled exceptions from guarded loops.

    Use through :func:`loop_stall_guard`; the class is public so tests can
    assert on ``stalls`` / ``unhandled`` directly or call :meth:`check` at
    a chosen point instead of at context exit.
    """

    def __init__(self, threshold: float = DEFAULT_THRESHOLD) -> None:
        self.threshold = float(threshold)
        self.stalls: list[StallEvent] = []
        self.unhandled: list[str] = []
        self.loops_guarded = 0
        self._handler = _AsyncioWarningHandler(self)
        self._previous_policy: asyncio.AbstractEventLoopPolicy | None = None
        self._logger_level: int | None = None

    # -- loop wiring --------------------------------------------------------

    def configure_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Arm one loop: debug mode, tight threshold, capturing handler."""
        loop.set_debug(True)
        loop.slow_callback_duration = self.threshold
        loop.set_exception_handler(self._on_loop_exception)
        self.loops_guarded += 1

    def _on_loop_exception(self, loop: asyncio.AbstractEventLoop, context: dict[str, Any]) -> None:
        message = context.get("message") or "unhandled exception in event loop"
        exception = context.get("exception")
        if exception is not None:
            message = f"{message}: {exception!r}"
        source = context.get("future") or context.get("handle") or context.get("task")
        if source is not None:
            message = f"{message} (from {source!r})"
        self.unhandled.append(message)

    # -- activation ---------------------------------------------------------

    @contextlib.contextmanager
    def activate(self) -> Iterator["LoopStallGuard"]:
        """Install the loop-intercepting policy and log harvester."""
        guard = self
        previous_policy = asyncio.get_event_loop_policy()

        class _GuardedPolicy(type(previous_policy)):  # type: ignore[misc]
            def new_event_loop(self) -> asyncio.AbstractEventLoop:
                loop = super().new_event_loop()
                guard.configure_loop(loop)
                return loop

        logger = logging.getLogger("asyncio")
        previous_level = logger.level
        if logger.getEffectiveLevel() > logging.WARNING:
            logger.setLevel(logging.WARNING)
        logger.addHandler(self._handler)
        asyncio.set_event_loop_policy(_GuardedPolicy())
        try:
            yield self
        finally:
            asyncio.set_event_loop_policy(previous_policy)
            logger.removeHandler(self._handler)
            logger.setLevel(previous_level)

    # -- reporting ----------------------------------------------------------

    def report(self) -> str:
        lines = [
            f"event-loop sanitizer: {len(self.stalls)} stall(s) over "
            f"{self.threshold:.3f}s across {self.loops_guarded} guarded loop(s), "
            f"{len(self.unhandled)} unhandled exception(s)"
        ]
        lines.extend(f"  stall: {event}" for event in self.stalls)
        lines.extend(f"  unhandled: {entry}" for entry in self.unhandled)
        return "\n".join(lines)

    def check(self) -> None:
        """Raise :class:`EventLoopStallError` if anything bad was recorded."""
        if self.stalls or self.unhandled:
            raise EventLoopStallError(self.report())


@contextlib.contextmanager
def loop_stall_guard(
    threshold: float = DEFAULT_THRESHOLD, check: bool = True
) -> Iterator[LoopStallGuard]:
    """Guard every event loop created inside the ``with`` block.

    Raises :class:`EventLoopStallError` on exit when a callback held a
    guarded loop longer than ``threshold`` seconds or a task exception went
    unhandled.  Pass ``check=False`` to only collect (the caller asserts on
    ``guard.stalls`` / ``guard.unhandled`` itself — e.g. the seeded-stall
    self-test).
    """
    guard = LoopStallGuard(threshold=threshold)
    with guard.activate():
        yield guard
    if check:
        guard.check()
