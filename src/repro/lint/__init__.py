"""``repro.lint`` — the repo's own AST-based invariant checker.

Every bug class the early PRs fixed by hand was a statically detectable
violation of a repo invariant; this package turns those invariants into
machine-checkable rules that gate CI (``make lint`` /
``python -m repro.lint``).  Shipped rules:

================  =========  ====================================================
code              severity   invariant
================  =========  ====================================================
``determinism``   error      all randomness from seeded, SeedSequence-derived
                             generators; no global-RNG draws or wall-clock seeds
``encapsulation`` error      no cross-module ``obj._private`` pokes (the PR 5
                             ``_instructions`` bug class)
``config``        error      ``*Config`` dataclasses frozen, serializable,
                             defaulted, reachable from ``to_dict``/``from_dict``
``exceptions``    error      no bare ``except:``; no silent broad swallows
``hotpath``       advisory   no Python loops over basis-sized data / allocations
                             in loops inside the designated hot modules
``artifacts``     error      committed ``BENCH_*.json`` files validate against
                             the shared perf-trajectory schema
================  =========  ====================================================

Per-line suppression: ``# repro: ignore[code]`` (with a justification).
The committed ``lint_baseline.json`` is empty and stays that way.
"""

from repro.lint.engine import lint_paths, lint_source
from repro.lint.findings import ADVISORY, ERROR, Finding
from repro.lint.registry import Rule, all_rules, get_rule, register

__all__ = [
    "ADVISORY",
    "ERROR",
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register",
]
