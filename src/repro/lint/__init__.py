"""``repro.lint`` — the repo's own AST-based invariant checker.

Every bug class the early PRs fixed by hand was a statically detectable
violation of a repo invariant; this package turns those invariants into
machine-checkable rules that gate CI (``make lint`` /
``python -m repro.lint``).  Shipped rules:

=================  =========  =======  ==========================================
code               severity   scope    invariant
=================  =========  =======  ==========================================
``determinism``    error      module   all randomness from seeded generators; no
                                       global-RNG draws or wall-clock seeds
``encapsulation``  error      module   no cross-module ``obj._private`` pokes
                                       (the PR 5 ``_instructions`` bug class)
``config``         error      module   ``*Config`` dataclasses frozen,
                                       serializable, defaulted, round-trippable
``exceptions``     error      module   no bare ``except:``; no silent broad
                                       swallows
``hotpath``        advisory   module   no Python loops over basis-sized data /
                                       allocations in designated hot modules
``artifacts``      error      module   committed ``BENCH_*.json`` files validate
                                       against the perf-trajectory schema
``concurrency``    error      project  no blocking work reachable on the event
                                       loop; no fire-and-forget tasks; no await
                                       under a sync lock; no unguarded shared
                                       attribute writes across loop/executor
``ipdeterminism``  error      project  no public entry point transitively
                                       reaching a global-RNG draw in a helper
``deadcode``       error      project  no ``_private`` functions unreferenced
                                       anywhere in the scanned sources
=================  =========  =======  ==========================================

Module rules see one AST at a time; project rules see the whole-program
:class:`~repro.lint.project.ProjectGraph` (symbol table + approximate call
graph) and run on full scans.  The runtime counterpart to the static
``concurrency`` rule is :func:`~repro.lint.sanitize.loop_stall_guard`, an
event-loop stall sanitizer tests can wrap around asyncio code.

Per-line suppression: ``# repro: ignore[code]`` (with a justification).
The committed ``lint_baseline.json`` is empty and stays that way.
"""

from repro.lint.engine import lint_paths, lint_project_sources, lint_source
from repro.lint.findings import ADVISORY, ERROR, Finding
from repro.lint.registry import (
    MODULE_SCOPE,
    PROJECT_SCOPE,
    Rule,
    all_rules,
    get_rule,
    register,
)

__all__ = [
    "ADVISORY",
    "ERROR",
    "Finding",
    "MODULE_SCOPE",
    "PROJECT_SCOPE",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_project_sources",
    "lint_source",
    "register",
]
