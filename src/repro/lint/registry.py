"""The lint rule registry.

Rules self-register at import time via the :func:`register` decorator; the
engine asks :func:`all_rules` for the active set.  A rule sees one unit at a
time — a parsed Python module (:meth:`Rule.check_module`) or a JSON
artifact (:meth:`Rule.check_artifact`) — and yields
:class:`~repro.lint.findings.Finding` records; suppression filtering and
baseline matching happen in the engine, never inside a rule.

Adding a rule is three steps (see README "Static analysis"):

1. subclass :class:`Rule` in a module under ``repro/lint/rules/`` with a
   unique lowercase ``code`` (that code is the suppression token);
2. decorate it with ``@register`` and import the module from
   ``repro/lint/rules/__init__.py``;
3. add violating + clean + suppressed fixtures to
   ``tests/test_lint_rules.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.lint.findings import ERROR, SEVERITIES, Finding

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.engine import ArtifactUnderLint, ModuleUnderLint
    from repro.lint.project import ProjectGraph

#: Rule scopes: per-module rules see one unit at a time; project rules see
#: the whole-program :class:`~repro.lint.project.ProjectGraph` once per run.
MODULE_SCOPE = "module"
PROJECT_SCOPE = "project"


class Rule:
    """Base class every lint rule subclasses.

    Attributes:
        code: lowercase identifier; the ``# repro: ignore[code]`` token and
            the ``--select`` key.
        severity: default severity stamped on this rule's findings.
        description: one-line summary shown by ``--list-rules``.
        scope: :data:`MODULE_SCOPE` for per-unit rules (``check_module`` /
            ``check_artifact``); :data:`PROJECT_SCOPE` for whole-program
            rules (``check_project``).  Project rules run only on full
            scans, where the call graph is complete — linting a single file
            must never produce spurious whole-program findings.
    """

    code: str = ""
    severity: str = ERROR
    description: str = ""
    scope: str = MODULE_SCOPE

    def check_module(self, module: "ModuleUnderLint") -> Iterable[Finding]:
        """Findings for one parsed Python module (default: none)."""
        return ()

    def check_artifact(self, artifact: "ArtifactUnderLint") -> Iterable[Finding]:
        """Findings for one JSON artifact file (default: none)."""
        return ()

    def check_project(self, project: "ProjectGraph") -> Iterable[Finding]:
        """Findings over the whole project graph (default: none)."""
        return ()

    def finding(self, path: str, line: int, message: str) -> Finding:
        """A finding stamped with this rule's code and severity."""
        return Finding(
            path=path, line=line, rule=self.code, message=message, severity=self.severity
        )


_RULES: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator instantiating and registering a rule by its code."""
    rule = rule_cls()
    if not rule.code or rule.code != rule.code.lower():
        raise ValueError(f"rule {rule_cls.__name__} needs a lowercase code")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"rule {rule.code}: unknown severity {rule.severity!r}")
    if rule.scope not in (MODULE_SCOPE, PROJECT_SCOPE):
        raise ValueError(f"rule {rule.code}: unknown scope {rule.scope!r}")
    if rule.code in _RULES:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    _RULES[rule.code] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in registration order."""
    import repro.lint.rules  # noqa: F401  (importing the package registers the built-ins)

    return tuple(_RULES.values())


def get_rule(code: str) -> Rule:
    all_rules()
    try:
        return _RULES[code]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {code!r}; known: {sorted(_RULES)}"
        ) from None
