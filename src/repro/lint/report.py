"""Finding reporters: ``file:line`` text for humans/CI, JSON for tooling."""

from __future__ import annotations

import json
from typing import Sequence, TextIO

from repro.lint.findings import ADVISORY, ERROR, Finding


def summarize(findings: Sequence[Finding], baselined: int, files_scanned: int) -> str:
    """The one-line summary both reporters end with."""
    errors = sum(1 for finding in findings if finding.severity == ERROR)
    advisories = sum(1 for finding in findings if finding.severity == ADVISORY)
    if not findings and not baselined:
        return f"lint: clean ({files_scanned} files scanned)"
    parts = [f"{len(findings)} finding(s)", f"{errors} error(s)", f"{advisories} advisory"]
    if baselined:
        parts.append(f"{baselined} baselined")
    return "lint: " + ", ".join(parts) + f" across {files_scanned} files"


def write_text(
    findings: Sequence[Finding],
    baselined: int,
    files_scanned: int,
    stream: TextIO,
) -> None:
    for finding in findings:
        stream.write(finding.format() + "\n")
    stream.write(summarize(findings, baselined, files_scanned) + "\n")


def write_json(
    findings: Sequence[Finding],
    baselined: int,
    files_scanned: int,
    stream: TextIO,
) -> None:
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "baselined": baselined,
        "files_scanned": files_scanned,
        "summary": summarize(findings, baselined, files_scanned),
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")
