"""The lint engine: collect files, parse, run rules, filter suppressions.

The engine owns everything rule-agnostic — file discovery, AST parsing,
``# repro: ignore[...]`` filtering, deduplication and stable ordering — so
each rule is a pure function from one unit (module, artifact, or the whole
:class:`~repro.lint.project.ProjectGraph`) to findings.  :func:`lint_paths`
is the CLI's workhorse; :func:`lint_source` lints an in-memory snippet and
:func:`lint_project_sources` an in-memory multi-module project — the two
fixture entry points ``tests/test_lint_rules.py`` and
``tests/test_lint_project.py`` drive.

Every file is parsed exactly once per run: the parsed modules feed the
per-module rules and then, on full scans, the project graph the project
rules consume.  ``jobs > 1`` fans the per-module phase out over a process
pool (the project phase stays in-parent, where the whole graph lives);
output order is identical either way because findings are sorted at the end.
"""

from __future__ import annotations

import ast
import concurrent.futures
import dataclasses
import json
import os
from typing import Any, Sequence

from repro.lint.findings import Finding
from repro.lint.registry import MODULE_SCOPE, PROJECT_SCOPE, Rule, all_rules
from repro.lint.suppressions import is_suppressed, line_suppressions

#: Directory names never descended into during file discovery.
_SKIPPED_DIRECTORIES = frozenset({"__pycache__", ".git", ".pytest_cache", ".claude"})

#: Filename prefix of the perf-trajectory artifacts the artifact rules see.
ARTIFACT_PREFIX = "BENCH_"


@dataclasses.dataclass(frozen=True)
class ModuleUnderLint:
    """One parsed Python module as the rules see it."""

    path: str  # root-relative, "/"-separated
    source: str
    tree: ast.Module
    suppressed: dict[int, frozenset[str]]


@dataclasses.dataclass(frozen=True)
class ArtifactUnderLint:
    """One JSON artifact file as the rules see it."""

    path: str  # root-relative, "/"-separated
    data: Any
    parse_error: str | None = None


def display_path(path: str, root: str) -> str:
    """Root-relative, forward-slash path (the stable form findings carry)."""
    relative = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    return relative.replace(os.sep, "/")


def collect_files(
    paths: Sequence[str], root: str
) -> tuple[list[str], list[str]]:
    """Expand CLI path arguments into (python files, artifact files)."""
    python_files: list[str] = []
    artifact_files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for directory, subdirectories, filenames in os.walk(path):
                subdirectories[:] = sorted(
                    name for name in subdirectories if name not in _SKIPPED_DIRECTORIES
                )
                for filename in sorted(filenames):
                    full = os.path.join(directory, filename)
                    if filename.endswith(".py"):
                        python_files.append(full)
                    elif filename.startswith(ARTIFACT_PREFIX) and filename.endswith(
                        ".json"
                    ):
                        artifact_files.append(full)
        elif path.endswith(".py"):
            python_files.append(path)
        elif path.endswith(".json"):
            artifact_files.append(path)
    return sorted(set(python_files)), sorted(set(artifact_files))


def default_paths(root: str) -> list[str]:
    """The whole-repo scan set: every code tree plus the committed artifacts."""
    paths = [
        os.path.join(root, name)
        for name in ("src", "benchmarks", "examples", "scripts", "tests")
        if os.path.isdir(os.path.join(root, name))
    ]
    entries = sorted(os.listdir(root))
    paths.extend(
        os.path.join(root, name)
        for name in entries
        if name.startswith(ARTIFACT_PREFIX) and name.endswith(".json")
    )
    return paths


# ---------------------------------------------------------------------------
# Running rules
# ---------------------------------------------------------------------------


def _select_rules(select: Sequence[str] | None) -> tuple[Rule, ...]:
    rules = all_rules()
    if select is None:
        return rules
    wanted = {code.strip().lower() for code in select if code.strip()}
    unknown = wanted - {rule.code for rule in rules}
    if unknown:
        raise ValueError(
            f"unknown lint rule(s) {sorted(unknown)}; "
            f"known: {sorted(rule.code for rule in rules)}"
        )
    return tuple(rule for rule in rules if rule.code in wanted)


def parse_module(path: str, source: str) -> ModuleUnderLint | Finding:
    """Parse one module; a syntax error comes back as a ``parse`` finding."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return Finding(
            path=path,
            line=error.lineno or 0,
            rule="parse",
            message=f"syntax error: {error.msg}",
        )
    return ModuleUnderLint(
        path=path,
        source=source,
        tree=tree,
        suppressed=line_suppressions(source),
    )


def _run_module_rules(
    module: ModuleUnderLint, rules: Sequence[Rule]
) -> set[Finding]:
    findings: set[Finding] = set()
    for rule in rules:
        if rule.scope != MODULE_SCOPE:
            continue
        for finding in rule.check_module(module):
            if not is_suppressed(module.suppressed, finding.line, finding.rule):
                findings.add(finding)
    return findings


def lint_module(
    path: str, source: str, rules: Sequence[Rule]
) -> list[Finding]:
    """Lint one Python module's source; a syntax error is itself a finding."""
    parsed = parse_module(path, source)
    if isinstance(parsed, Finding):
        return [parsed]
    return sorted(_run_module_rules(parsed, rules))


def lint_artifact(path: str, raw: str, rules: Sequence[Rule]) -> list[Finding]:
    """Lint one JSON artifact (no line suppressions: JSON has no comments)."""
    try:
        data = json.loads(raw)
        artifact = ArtifactUnderLint(path=path, data=data)
    except json.JSONDecodeError as error:
        artifact = ArtifactUnderLint(path=path, data=None, parse_error=str(error))
    findings: set[Finding] = set()
    for rule in rules:
        findings.update(rule.check_artifact(artifact))
    return sorted(findings)


def lint_source(
    source: str,
    path: str = "src/repro/snippet.py",
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint an in-memory snippet as though it lived at ``path``.

    The fixture entry point: rule tests feed good/bad/suppressed snippets
    through here with a path that puts them in (or out of) a rule's scope.
    Per-module rules only — multi-module fixtures go through
    :func:`lint_project_sources`.
    """
    return lint_module(path, source, _select_rules(select))


def lint_project_sources(
    sources: dict[str, str],
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint an in-memory project given ``{root-relative path: source}``.

    The project-rule fixture entry point: modules under the project trees
    form the :class:`~repro.lint.project.ProjectGraph`; test-named files
    feed only its reference index, exactly as on disk.  Runs the project
    rules *and* the per-module rules so fixtures can assert interplay
    (e.g. a suppressed draw still tainting its callers).
    """
    from repro.lint.project import ProjectGraph, is_project_path

    rules = _select_rules(select)
    findings: set[Finding] = set()
    modules: dict[str, ModuleUnderLint] = {}
    for path in sorted(sources):
        parsed = parse_module(path, sources[path])
        if isinstance(parsed, Finding):
            findings.add(parsed)
            continue
        modules[path] = parsed
        findings.update(_run_module_rules(parsed, rules))
    project_rules = tuple(rule for rule in rules if rule.scope == PROJECT_SCOPE)
    if project_rules:
        graph = ProjectGraph.build(
            [m for p, m in modules.items() if is_project_path(p)],
            [m for p, m in modules.items() if not is_project_path(p)],
        )
        findings.update(_run_project_rules(graph, modules, project_rules))
    return sorted(findings)


def _run_project_rules(
    graph: Any,
    modules: dict[str, ModuleUnderLint],
    rules: Sequence[Rule],
) -> set[Finding]:
    """Run project rules, filtering each finding through the suppression
    map of the module it lands in."""
    findings: set[Finding] = set()
    empty: dict[int, frozenset[str]] = {}
    for rule in rules:
        for finding in rule.check_project(graph):
            module = modules.get(finding.path)
            suppressed = module.suppressed if module is not None else empty
            if not is_suppressed(suppressed, finding.line, finding.rule):
                findings.add(finding)
    return findings


def _lint_one_file(task: tuple[str, str, tuple[str, ...] | None]) -> list[Finding]:
    """Process-pool worker: read, parse, and module-rule one file.

    Top-level (picklable) and self-contained: each worker process imports
    the rule registry itself.  Project rules never run here — the whole
    graph lives in the parent.
    """
    import repro.lint.rules  # noqa: F401  (registers rules in the worker)

    path, display, select = task
    rules = _select_rules(list(select) if select is not None else None)
    if display.endswith(".py"):
        return lint_module(display, _read_text(path), rules)
    return lint_artifact(display, _read_text(path), rules)


def lint_paths(
    paths: Sequence[str] | None = None,
    root: str | None = None,
    select: Sequence[str] | None = None,
    jobs: int = 1,
) -> tuple[list[Finding], int]:
    """Lint files/directories; returns (sorted findings, files scanned).

    ``paths`` defaults to the whole-repo scan set under ``root`` (itself
    defaulting to the current directory).  Findings carry root-relative
    paths so their fingerprints are stable across checkouts.

    Project rules run on full scans (``paths`` omitted) and whenever
    ``select`` names one explicitly; linting a handful of files keeps to
    per-module rules, since a partial graph would call live code dead.

    ``jobs > 1`` distributes the per-module phase over a process pool.
    Findings are deduplicated and sorted at the end, so output order is
    independent of ``jobs``.
    """
    root = root or os.getcwd()
    rules = _select_rules(select)
    project_rules = tuple(rule for rule in rules if rule.scope == PROJECT_SCOPE)
    run_project = bool(project_rules) and (paths is None or select is not None)
    python_files, artifact_files = collect_files(
        list(paths) if paths is not None else default_paths(root), root
    )
    findings: set[Finding] = set()
    modules: dict[str, ModuleUnderLint] = {}

    if jobs > 1:
        tasks = [
            (path, display_path(path, root), tuple(select) if select else None)
            for path in python_files + artifact_files
        ]
        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            # map() submits everything up front, so the parent can run the
            # whole project phase (re-parse + graph + project rules) while
            # the workers chew through the per-module phase concurrently.
            results = pool.map(_lint_one_file, tasks, chunksize=8)
            if run_project:
                for path in python_files:
                    display = display_path(path, root)
                    parsed = parse_module(display, _read_text(path))
                    if isinstance(parsed, Finding):
                        continue  # already reported by the worker
                    modules[display] = parsed
            for file_findings in results:
                findings.update(file_findings)
    else:
        for path in python_files:
            display = display_path(path, root)
            parsed = parse_module(display, _read_text(path))
            if isinstance(parsed, Finding):
                findings.add(parsed)
                continue
            modules[display] = parsed
            findings.update(_run_module_rules(parsed, rules))
        for path in artifact_files:
            raw = _read_text(path)
            findings.update(lint_artifact(display_path(path, root), raw, rules))

    if run_project:
        from repro.lint.project import ProjectGraph, is_project_path

        graph = ProjectGraph.build(
            [m for p, m in modules.items() if is_project_path(p)],
            [m for p, m in modules.items() if not is_project_path(p)],
        )
        findings.update(_run_project_rules(graph, modules, project_rules))
    return sorted(findings), len(python_files) + len(artifact_files)


def _read_text(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()
