"""The lint engine: collect files, parse, run rules, filter suppressions.

The engine owns everything rule-agnostic — file discovery, AST parsing,
``# repro: ignore[...]`` filtering, deduplication and stable ordering — so
each rule is a pure function from one unit (module or artifact) to
findings.  :func:`lint_paths` is the CLI's workhorse; :func:`lint_source`
lints an in-memory snippet and is what the rule fixtures in
``tests/test_lint_rules.py`` drive.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import os
from typing import Any, Sequence

from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules
from repro.lint.suppressions import is_suppressed, line_suppressions

#: Directory names never descended into during file discovery.
_SKIPPED_DIRECTORIES = frozenset({"__pycache__", ".git", ".pytest_cache", ".claude"})

#: Filename prefix of the perf-trajectory artifacts the artifact rules see.
ARTIFACT_PREFIX = "BENCH_"


@dataclasses.dataclass(frozen=True)
class ModuleUnderLint:
    """One parsed Python module as the rules see it."""

    path: str  # root-relative, "/"-separated
    source: str
    tree: ast.Module
    suppressed: dict[int, frozenset[str]]


@dataclasses.dataclass(frozen=True)
class ArtifactUnderLint:
    """One JSON artifact file as the rules see it."""

    path: str  # root-relative, "/"-separated
    data: Any
    parse_error: str | None = None


def display_path(path: str, root: str) -> str:
    """Root-relative, forward-slash path (the stable form findings carry)."""
    relative = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    return relative.replace(os.sep, "/")


def collect_files(
    paths: Sequence[str], root: str
) -> tuple[list[str], list[str]]:
    """Expand CLI path arguments into (python files, artifact files)."""
    python_files: list[str] = []
    artifact_files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for directory, subdirectories, filenames in os.walk(path):
                subdirectories[:] = sorted(
                    name for name in subdirectories if name not in _SKIPPED_DIRECTORIES
                )
                for filename in sorted(filenames):
                    full = os.path.join(directory, filename)
                    if filename.endswith(".py"):
                        python_files.append(full)
                    elif filename.startswith(ARTIFACT_PREFIX) and filename.endswith(
                        ".json"
                    ):
                        artifact_files.append(full)
        elif path.endswith(".py"):
            python_files.append(path)
        elif path.endswith(".json"):
            artifact_files.append(path)
    return sorted(set(python_files)), sorted(set(artifact_files))


def default_paths(root: str) -> list[str]:
    """The whole-repo scan set: every code tree plus the committed artifacts."""
    paths = [
        os.path.join(root, name)
        for name in ("src", "benchmarks", "examples", "scripts", "tests")
        if os.path.isdir(os.path.join(root, name))
    ]
    entries = sorted(os.listdir(root))
    paths.extend(
        os.path.join(root, name)
        for name in entries
        if name.startswith(ARTIFACT_PREFIX) and name.endswith(".json")
    )
    return paths


# ---------------------------------------------------------------------------
# Running rules
# ---------------------------------------------------------------------------


def _select_rules(select: Sequence[str] | None) -> tuple[Rule, ...]:
    rules = all_rules()
    if select is None:
        return rules
    wanted = {code.strip().lower() for code in select if code.strip()}
    unknown = wanted - {rule.code for rule in rules}
    if unknown:
        raise ValueError(
            f"unknown lint rule(s) {sorted(unknown)}; "
            f"known: {sorted(rule.code for rule in rules)}"
        )
    return tuple(rule for rule in rules if rule.code in wanted)


def lint_module(
    path: str, source: str, rules: Sequence[Rule]
) -> list[Finding]:
    """Lint one Python module's source; a syntax error is itself a finding."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 0,
                rule="parse",
                message=f"syntax error: {error.msg}",
            )
        ]
    suppressed = line_suppressions(source)
    module = ModuleUnderLint(path=path, source=source, tree=tree, suppressed=suppressed)
    findings: set[Finding] = set()
    for rule in rules:
        for finding in rule.check_module(module):
            if not is_suppressed(suppressed, finding.line, finding.rule):
                findings.add(finding)
    return sorted(findings)


def lint_artifact(path: str, raw: str, rules: Sequence[Rule]) -> list[Finding]:
    """Lint one JSON artifact (no line suppressions: JSON has no comments)."""
    try:
        data = json.loads(raw)
        artifact = ArtifactUnderLint(path=path, data=data)
    except json.JSONDecodeError as error:
        artifact = ArtifactUnderLint(path=path, data=None, parse_error=str(error))
    findings: set[Finding] = set()
    for rule in rules:
        findings.update(rule.check_artifact(artifact))
    return sorted(findings)


def lint_source(
    source: str,
    path: str = "src/repro/snippet.py",
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint an in-memory snippet as though it lived at ``path``.

    The fixture entry point: rule tests feed good/bad/suppressed snippets
    through here with a path that puts them in (or out of) a rule's scope.
    """
    return lint_module(path, source, _select_rules(select))


def lint_paths(
    paths: Sequence[str] | None = None,
    root: str | None = None,
    select: Sequence[str] | None = None,
) -> tuple[list[Finding], int]:
    """Lint files/directories; returns (sorted findings, files scanned).

    ``paths`` defaults to the whole-repo scan set under ``root`` (itself
    defaulting to the current directory).  Findings carry root-relative
    paths so their fingerprints are stable across checkouts.
    """
    root = root or os.getcwd()
    rules = _select_rules(select)
    python_files, artifact_files = collect_files(
        list(paths) if paths else default_paths(root), root
    )
    findings: list[Finding] = []
    for path in python_files:
        source = _read_text(path)
        findings.extend(lint_module(display_path(path, root), source, rules))
    for path in artifact_files:
        raw = _read_text(path)
        findings.extend(lint_artifact(display_path(path, root), raw, rules))
    return sorted(set(findings)), len(python_files) + len(artifact_files)


def _read_text(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()
