"""Per-line lint suppressions: ``# repro: ignore[rule]``.

A suppression comment silences the named rule(s) on its own physical line
only — broad opt-outs belong in the baseline file, not in source.  The
syntax is::

    rng = np.random.default_rng()  # repro: ignore[determinism] sanctioned entropy
    obj._poke()                    # repro: ignore[encapsulation, hotpath]

Comments are found with :mod:`tokenize` (not a regex over raw lines), so a
suppression-shaped string literal never silences anything.
"""

from __future__ import annotations

import io
import re
import tokenize

_SUPPRESSION = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_\-, ]+)\]")


def line_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule codes suppressed on that line.

    Unparseable source yields no suppressions (the engine reports the syntax
    error separately); an empty bracket suppresses nothing.
    """
    suppressed: dict[int, frozenset[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION.search(token.string)
        if match is None:
            continue
        codes = frozenset(
            code.strip().lower() for code in match.group(1).split(",") if code.strip()
        )
        if codes:
            line = token.start[0]
            suppressed[line] = suppressed.get(line, frozenset()) | codes
    return suppressed


def is_suppressed(
    suppressed: dict[int, frozenset[str]], line: int, rule: str
) -> bool:
    """Whether ``rule`` is silenced on ``line`` by a suppression comment."""
    return rule in suppressed.get(line, frozenset())
