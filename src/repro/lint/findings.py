"""The finding record every lint rule emits.

A :class:`Finding` is deliberately tiny and frozen: the engine sorts,
filters (suppressions, baseline) and formats findings without ever asking
the rule that produced them for more context, so reporters and the baseline
store stay decoupled from individual rules.
"""

from __future__ import annotations

import dataclasses

#: Severity of a finding that must be fixed (or explicitly suppressed) for
#: the lint gate to pass.
ERROR = "error"

#: Severity of the advisory tier (hot-path discipline): reported and counted
#: by the gate exactly like errors — the repo ships with zero of either —
#: but labelled so a reader knows the rule is a heuristic, not an invariant.
ADVISORY = "advisory"

SEVERITIES = (ERROR, ADVISORY)


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location.

    Attributes:
        path: repo-root-relative path with ``/`` separators (stable across
            machines, so fingerprints can live in a committed baseline).
        line: 1-based line number (0 for whole-file findings such as an
            unparseable artifact).
        rule: the rule code, usable in a ``# repro: ignore[rule]`` comment.
        message: human-readable description of the violation.
        severity: :data:`ERROR` or :data:`ADVISORY`.
    """

    path: str
    line: int
    rule: str
    message: str
    severity: str = ERROR

    def fingerprint(self) -> str:
        """Location-stable identity used by the baseline store.

        Excludes the line number so an unrelated edit above a baselined
        finding does not resurrect it.
        """
        return f"{self.path}::{self.rule}::{self.message}"

    def format(self) -> str:
        """The ``file:line: severity[rule] message`` text reporters print."""
        return f"{self.path}:{self.line}: {self.severity}[{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)
