"""Whole-program view of the repo for *project rules*.

Per-module rules see one AST at a time; the bug classes PR 7 introduced —
blocking calls buried two frames below an ``async def``, task exceptions
dropped by fire-and-forget ``create_task``, RNG draws hidden inside a
helper — span modules.  :class:`ProjectGraph` parses every project module
once and resolves, through each module's :class:`~repro.lint.astutil.ImportMap`:

* a **symbol table** — module-level functions, classes and methods, keyed by
  qualified id (``repro.service.store.ResultStore.put``), with re-export
  aliases followed (``repro.service.SolveService`` resolves through the
  package ``__init__``);
* an approximate **call graph** — direct calls, ``self.method()`` dispatch,
  constructor calls (edges to ``__init__``), and attribute-typed dispatch
  (``self.store.put()`` resolves because ``__init__`` assigned
  ``self.store = ResultStore(...)``); loop callbacks registered via
  ``call_soon``/``call_later``/``add_done_callback`` count as calls, while
  functions handed to ``run_in_executor``/``to_thread``/``submit`` become
  :attr:`ProjectGraph.executor_entries` instead of call edges (the hop off
  the loop is exactly what the concurrency rules must respect);
* a light **type approximation** for locals, parameters (annotations) and
  ``self.*`` attributes, covering project classes plus the stdlib
  concurrency primitives (locks, executors, futures, threads, queues);
* a **reference index** over *all* scanned sources (tests included) so the
  deadcode rule can ask "is this name used anywhere?".

Everything here is a static approximation: dynamic dispatch, ``getattr``
strings and monkeypatching are invisible.  The rules built on top are tuned
so the approximation errs toward silence, and every recursive walk
(reachability, base-class lookup, alias following) carries a visited set or
depth bound so import/call/inheritance cycles terminate.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.lint.astutil import ImportMap, dotted_chain, resolve_dotted, terminal_name

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.engine import ModuleUnderLint

#: Directory trees whose modules join the project graph (tests are scanned
#: for *references* only — they may poke internals, but they are not part of
#: the program under analysis).
PROJECT_TREES = ("src", "benchmarks", "scripts", "examples")

#: Stdlib constructors folded into the type approximation, mapped to the
#: pseudo-type id the concurrency tables key on.
EXTERNAL_CONSTRUCTORS = {
    "threading.Lock": "threading.Lock",
    "threading.RLock": "threading.Lock",
    "threading.Condition": "threading.Lock",
    "threading.Semaphore": "threading.Lock",
    "threading.BoundedSemaphore": "threading.Lock",
    "multiprocessing.Lock": "threading.Lock",
    "threading.Thread": "threading.Thread",
    "threading.Event": "threading.Event",
    "queue.Queue": "queue.Queue",
    "queue.SimpleQueue": "queue.Queue",
    "concurrent.futures.ThreadPoolExecutor": "concurrent.futures.Executor",
    "concurrent.futures.ProcessPoolExecutor": "concurrent.futures.Executor",
    "concurrent.futures.Future": "concurrent.futures.Future",
    "subprocess.Popen": "subprocess.Popen",
    "socket.socket": "socket.socket",
}

#: ``executor.submit(...)`` / ``pool.submit(...)`` produce a blocking future.
_SUBMIT_RESULT_TYPE = "concurrent.futures.Future"

#: Terminal method names that hand their function argument to a thread/process
#: pool: (name, index of the function argument).
_EXECUTOR_HOPS = {"run_in_executor": 1, "to_thread": 0, "submit": 1, "map": 1}

#: Terminal method names that schedule their function argument *on the loop*
#: (these become ordinary call edges, not executor entries).
_LOOP_CALLBACKS = {
    "call_soon": 0,
    "call_soon_threadsafe": 0,
    "call_later": 1,
    "call_at": 1,
    "add_done_callback": 0,
}

#: Terminal names of the task-spawning APIs.
_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})

#: Done-callbacks that are pure container bookkeeping — attaching only these
#: does not surface a task's exception.
BOOKKEEPING_CALLBACKS = frozenset({"discard", "remove", "add", "append"})


def module_id_for_path(path: str) -> str | None:
    """Dotted module id for a root-relative path, or None for non-project files.

    ``src/repro/service/server.py`` -> ``repro.service.server``;
    ``benchmarks/harness.py`` -> ``benchmarks.harness``; package
    ``__init__.py`` files collapse onto the package id.
    """
    if not path.endswith(".py"):
        return None
    parts = path[: -len(".py")].split("/")
    if parts[0] == "src":
        parts = parts[1:]
    elif parts[0] not in PROJECT_TREES and len(parts) > 1:
        return None
    if not parts:
        return None
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


def is_project_path(path: str) -> bool:
    """Whether a root-relative path belongs to the analyzed program."""
    first = path.split("/", 1)[0]
    filename = path.rsplit("/", 1)[-1]
    if filename.startswith("test_") or filename == "conftest.py":
        return False
    return first in PROJECT_TREES


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    lineno: int
    node: ast.Call = dataclasses.field(compare=False, repr=False)
    callee: str | None  # resolved project function id, or None
    dotted: str | None  # canonical external dotted name (e.g. "time.sleep")
    receiver_type: str | None  # type id of `x` in `x.m(...)`, when known
    attr: str | None  # terminal attribute/function name
    via_callback: bool = False  # edge created by call_soon/add_done_callback


@dataclasses.dataclass(frozen=True)
class LockRegion:
    """A ``with <lock>:`` block (or explicit ``.acquire()``/``.release()`` span)."""

    lineno: int
    lock_id: str
    display: str
    calls: tuple[CallSite, ...]
    await_linenos: tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class AttrAccess:
    """A ``self.<attr>`` read/write inside a method body."""

    attr: str
    lineno: int
    is_write: bool
    guarded: bool  # inside a `with <lock>:` region


@dataclasses.dataclass
class FunctionInfo:
    """One module-level function or class method, with its analysis facts."""

    fid: str
    module: str
    path: str
    qualname: str
    name: str
    lineno: int
    end_lineno: int
    is_async: bool
    owner: str | None  # class id for methods, None for functions
    node: ast.AST
    calls: tuple[CallSite, ...] = ()
    lock_acquires: tuple[tuple[int, str, str], ...] = ()  # (line, lock_id, display)
    lock_regions: tuple[LockRegion, ...] = ()
    attr_accesses: tuple[AttrAccess, ...] = ()
    task_spawns: tuple[ast.Call, ...] = ()

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def is_dunder(self) -> bool:
        return self.name.startswith("__") and self.name.endswith("__")


@dataclasses.dataclass
class ClassInfo:
    """One class: its methods, raw base expressions, and attribute types."""

    cid: str
    module: str
    path: str
    name: str
    lineno: int
    bases: tuple[str, ...]  # raw dotted base names, unresolved
    methods: dict[str, str] = dataclasses.field(default_factory=dict)
    attr_types: dict[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class Reference:
    """One appearance of an identifier somewhere in the scanned sources."""

    path: str
    lineno: int


class ProjectGraph:
    """Symbol table + call graph + reference index over the whole project."""

    def __init__(self) -> None:
        self.modules: "dict[str, ModuleUnderLint]" = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.executor_entries: set[str] = set()
        self.references: dict[str, list[Reference]] = {}
        self._import_maps: dict[str, ImportMap] = {}
        self._base_cache: dict[str, tuple[str, ...]] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        project_modules: "Sequence[ModuleUnderLint]",
        reference_modules: "Sequence[ModuleUnderLint]" = (),
    ) -> "ProjectGraph":
        """Analyze the project once; ``reference_modules`` feed only the
        reference index (tests poking internals keep symbols "used")."""
        graph = cls()
        for module in project_modules:
            module_id = module_id_for_path(module.path)
            if module_id is None or module_id in graph.modules:
                continue
            graph.modules[module_id] = module
            graph._import_maps[module_id] = ImportMap(module.tree)
        for module_id, module in graph.modules.items():
            graph._collect_symbols(module_id, module)
        for module_id, module in graph.modules.items():
            graph._collect_attr_types(module_id)
        for function in list(graph.functions.values()):
            _FunctionAnalyzer(graph, function).run()
        for module in [*graph.modules.values(), *reference_modules]:
            graph._collect_references(module)
        return graph

    def _collect_symbols(self, module_id: str, module: "ModuleUnderLint") -> None:
        for statement in module.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module_id, module.path, statement, owner=None)
            elif isinstance(statement, ast.ClassDef):
                cid = f"{module_id}.{statement.name}"
                bases = tuple(
                    base for base in map(dotted_chain, statement.bases) if base
                )
                info = ClassInfo(
                    cid=cid,
                    module=module_id,
                    path=module.path,
                    name=statement.name,
                    lineno=statement.lineno,
                    bases=bases,
                )
                self.classes[cid] = info
                for inner in statement.body:
                    if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fid = self._add_function(
                            module_id, module.path, inner, owner=cid
                        )
                        info.methods[inner.name] = fid

    def _add_function(
        self, module_id: str, path: str, node, owner: str | None
    ) -> str:
        qualname = (
            f"{owner.rsplit('.', 1)[-1]}.{node.name}" if owner else node.name
        )
        fid = f"{owner}.{node.name}" if owner else f"{module_id}.{node.name}"
        self.functions[fid] = FunctionInfo(
            fid=fid,
            module=module_id,
            path=path,
            qualname=qualname,
            name=node.name,
            lineno=node.lineno,
            end_lineno=getattr(node, "end_lineno", node.lineno) or node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            owner=owner,
            node=node,
        )
        return fid

    def _collect_attr_types(self, module_id: str) -> None:
        """Fill ``ClassInfo.attr_types`` from ``self.x = Ctor(...)`` assignments."""
        imports = self._import_maps[module_id]
        for info in self.classes.values():
            if info.module != module_id:
                continue
            for method_fid in info.methods.values():
                method = self.functions[method_fid]
                for node in ast.walk(method.node):
                    target = None
                    value = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    if (
                        not isinstance(target, ast.Attribute)
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self"
                    ):
                        continue
                    inferred = None
                    if value is not None:
                        inferred = self._constructed_type(value, module_id, imports)
                    if inferred is None and isinstance(node, ast.AnnAssign):
                        inferred = self._annotation_type(
                            node.annotation, module_id, imports
                        )
                    if inferred is not None:
                        info.attr_types.setdefault(target.attr, inferred)

    def _collect_references(self, module: "ModuleUnderLint") -> None:
        for node in ast.walk(module.tree):
            name = None
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                name = node.id
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                name = node.attr
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    for candidate in (alias.name.rsplit(".", 1)[-1], alias.asname):
                        if candidate:
                            self.references.setdefault(candidate, []).append(
                                Reference(module.path, node.lineno)
                            )
                continue
            if name is not None:
                self.references.setdefault(name, []).append(
                    Reference(module.path, node.lineno)
                )

    # -- symbol resolution ---------------------------------------------

    def import_map(self, module_id: str) -> ImportMap:
        return self._import_maps[module_id]

    def resolve_symbol(
        self, dotted: str, *, _depth: int = 0
    ) -> tuple[str, str] | None:
        """(`"function"`/`"class"`, qualified id) for a canonical dotted name.

        Follows re-export aliases through package ``__init__`` modules with a
        depth bound, so import cycles cannot loop.
        """
        if _depth > 8:
            return None
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module_id = ".".join(parts[:split])
            if module_id in self.modules:
                return self._resolve_in_module(module_id, parts[split:], _depth)
        return None

    def _resolve_in_module(
        self, module_id: str, rest: list[str], depth: int
    ) -> tuple[str, str] | None:
        if not rest:
            return None
        head = f"{module_id}.{rest[0]}"
        if len(rest) == 1:
            if head in self.functions:
                return ("function", head)
            if head in self.classes:
                return ("class", head)
        elif len(rest) == 2 and head in self.classes:
            method = self.lookup_method(head, rest[1])
            if method is not None:
                return ("function", method)
        alias = self._import_maps[module_id].aliases.get(rest[0])
        if alias is not None:
            return self.resolve_symbol(
                ".".join([alias, *rest[1:]]), _depth=depth + 1
            )
        return None

    def lookup_method(self, cid: str, name: str) -> str | None:
        """Method id on a class or (approximate, cycle-safe) its bases."""
        seen: set[str] = set()
        stack = [cid]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            stack.extend(self._resolved_bases(current))
        return None

    def lookup_attr_type(self, cid: str, attr: str) -> str | None:
        """Attribute type on a class or its bases (cycle-safe)."""
        seen: set[str] = set()
        stack = [cid]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            stack.extend(self._resolved_bases(current))
        return None

    def _resolved_bases(self, cid: str) -> tuple[str, ...]:
        cached = self._base_cache.get(cid)
        if cached is not None:
            return cached
        self._base_cache[cid] = ()  # break inheritance cycles mid-resolution
        info = self.classes.get(cid)
        resolved: list[str] = []
        if info is not None:
            imports = self._import_maps[info.module]
            for base in info.bases:
                head, _, rest = base.partition(".")
                canonical = imports.aliases.get(head)
                dotted = (
                    f"{canonical}.{rest}" if canonical and rest
                    else canonical if canonical
                    else f"{info.module}.{base}"
                )
                symbol = self.resolve_symbol(dotted)
                if symbol is not None and symbol[0] == "class":
                    resolved.append(symbol[1])
        self._base_cache[cid] = tuple(resolved)
        return self._base_cache[cid]

    def _constructed_type(
        self, value: ast.AST, module_id: str, imports: ImportMap
    ) -> str | None:
        """Type id produced by an expression, when statically evident."""
        if isinstance(value, ast.IfExp):
            # ``X(...) if cond else None`` — the Optional pattern: take
            # whichever branch yields a type (soundly optimistic: the rules
            # care about what the value *can* be).
            return self._constructed_type(
                value.body, module_id, imports
            ) or self._constructed_type(value.orelse, module_id, imports)
        if not isinstance(value, ast.Call):
            return None
        dotted = resolve_dotted(value.func, imports)
        if dotted is None and isinstance(value.func, ast.Name):
            dotted = f"{module_id}.{value.func.id}"
        if dotted is not None:
            if dotted in EXTERNAL_CONSTRUCTORS:
                return EXTERNAL_CONSTRUCTORS[dotted]
            symbol = self.resolve_symbol(dotted)
            if symbol is not None and symbol[0] == "class":
                return symbol[1]
        if terminal_name(value.func) == "submit":
            return _SUBMIT_RESULT_TYPE
        return None

    def _annotation_type(
        self, annotation: ast.AST | None, module_id: str, imports: ImportMap
    ) -> str | None:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value.strip(), mode="eval").body
            except SyntaxError:
                return None
        dotted = resolve_dotted(annotation, imports)
        if dotted is None:
            chain = dotted_chain(annotation)
            if chain is None:
                return None
            dotted = f"{module_id}.{chain}"
        if dotted in EXTERNAL_CONSTRUCTORS:
            return EXTERNAL_CONSTRUCTORS[dotted]
        symbol = self.resolve_symbol(dotted)
        if symbol is not None and symbol[0] == "class":
            return symbol[1]
        return None

    # -- graph queries --------------------------------------------------

    def callees(self, fid: str) -> Iterator[str]:
        function = self.functions.get(fid)
        if function is None:
            return
        for site in function.calls:
            if site.callee is not None:
                yield site.callee

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """All functions reachable via call edges (cycle-safe BFS)."""
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            fid = stack.pop()
            if fid in seen:
                continue
            seen.add(fid)
            stack.extend(self.callees(fid))
        return seen

    def references_outside(self, function: FunctionInfo) -> list[Reference]:
        """References to a function's name excluding its own definition body."""
        return [
            reference
            for reference in self.references.get(function.name, [])
            if not (
                reference.path == function.path
                and function.lineno <= reference.lineno <= function.end_lineno
            )
        ]


class _FunctionAnalyzer:
    """One pass over a function body filling its ``FunctionInfo`` facts."""

    def __init__(self, graph: ProjectGraph, function: FunctionInfo) -> None:
        self.graph = graph
        self.function = function
        self.imports = graph.import_map(function.module)
        self.env: dict[str, str] = {}

    def run(self) -> None:
        self._build_env()
        calls: list[CallSite] = []
        acquires: list[tuple[int, str, str]] = []
        regions: list[LockRegion] = []
        accesses: list[AttrAccess] = []
        spawns: list[ast.Call] = []
        body = self.function.node.body
        self._scan(body, calls, acquires, regions, accesses, spawns, guarded=False)
        self.function.calls = tuple(calls)
        self.function.lock_acquires = tuple(acquires)
        self.function.lock_regions = tuple(regions)
        self.function.attr_accesses = tuple(accesses)
        self.function.task_spawns = tuple(spawns)

    # -- environment ----------------------------------------------------

    def _build_env(self) -> None:
        node = self.function.node
        arguments = node.args
        every_arg = [
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
            *filter(None, (arguments.vararg, arguments.kwarg)),
        ]
        for argument in every_arg:
            inferred = self.graph._annotation_type(
                argument.annotation, self.function.module, self.imports
            )
            if inferred is not None:
                self.env[argument.arg] = inferred
        if self.function.owner is not None and every_arg:
            self.env.setdefault(every_arg[0].arg, self.function.owner)
        # Two passes over simple assignments so `b = a` chains settle.
        for _ in range(2):
            for inner in ast.walk(node):
                if isinstance(inner, ast.Assign) and len(inner.targets) == 1:
                    target, value = inner.targets[0], inner.value
                elif isinstance(inner, ast.AnnAssign) and inner.value is not None:
                    target, value = inner.target, inner.value
                else:
                    continue
                if not isinstance(target, ast.Name):
                    continue
                inferred = self.graph._constructed_type(
                    value, self.function.module, self.imports
                ) or (
                    self._expr_type(value)
                    if isinstance(value, (ast.Name, ast.Attribute))
                    else None
                )
                if inferred is not None:
                    self.env[target.id] = inferred

    def _expr_type(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._expr_type(node.value)
            if base is not None and base in self.graph.classes:
                return self.graph.lookup_attr_type(base, node.attr)
            return None
        if isinstance(node, ast.Call):
            return self.graph._constructed_type(
                node, self.function.module, self.imports
            )
        return None

    # -- body scan -------------------------------------------------------

    def _lock_identity(self, node: ast.AST) -> tuple[str, str] | None:
        """(lock_id, display) when an expression is a known sync lock."""
        if self._expr_type(node) != "threading.Lock":
            return None
        display = dotted_chain(node) or "<lock>"
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and self.env.get(node.value.id) in self.graph.classes
        ):
            return f"{self.env[node.value.id]}.{node.attr}", display
        return f"{self.function.fid}:{display}", display

    def _scan(
        self,
        statements: Sequence[ast.stmt],
        calls: list[CallSite],
        acquires: list[tuple[int, str, str]],
        regions: list[LockRegion],
        accesses: list[AttrAccess],
        spawns: list[ast.Call],
        guarded: bool,
    ) -> None:
        for statement in statements:
            if isinstance(statement, ast.With):
                lock = None
                for item in statement.items:
                    lock = lock or self._lock_identity(item.context_expr)
                    self._scan_expressions(
                        [item.context_expr], calls, accesses, spawns, guarded
                    )
                if lock is not None:
                    lock_id, display = lock
                    acquires.append((statement.lineno, lock_id, display))
                    inner_calls: list[CallSite] = []
                    self._scan(
                        statement.body, inner_calls, acquires, regions,
                        accesses, spawns, guarded=True,
                    )
                    calls.extend(inner_calls)
                    regions.append(
                        LockRegion(
                            lineno=statement.lineno,
                            lock_id=lock_id,
                            display=display,
                            calls=tuple(inner_calls),
                            await_linenos=tuple(
                                inner.lineno
                                for statement_body in statement.body
                                for inner in self._walk_same_scope(statement_body)
                                if isinstance(inner, ast.Await)
                            ),
                        )
                    )
                else:
                    self._scan(
                        statement.body, calls, acquires, regions,
                        accesses, spawns, guarded,
                    )
                continue
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested defs: their calls are attributed to the enclosing
                # function (closures usually run right here), minus locking
                # structure which would not transfer.
                self._scan(
                    statement.body, calls, acquires, regions,
                    accesses, spawns, guarded,
                )
                continue
            compound = [
                field for field in ("body", "orelse", "finalbody") if hasattr(statement, field)
            ]
            handlers = getattr(statement, "handlers", ())
            if compound or handlers:
                self._scan_expressions(
                    list(ast.iter_child_nodes(statement)), calls, accesses,
                    spawns, guarded, shallow=True,
                )
                for field in compound:
                    self._scan(
                        getattr(statement, field), calls, acquires, regions,
                        accesses, spawns, guarded,
                    )
                for handler in handlers:
                    self._scan(
                        handler.body, calls, acquires, regions,
                        accesses, spawns, guarded,
                    )
                continue
            self._scan_expressions([statement], calls, accesses, spawns, guarded)

    def _walk_same_scope(self, node: ast.AST) -> Iterator[ast.AST]:
        """ast.walk that does not descend into nested function/class defs."""
        stack = [node]
        while stack:
            current = stack.pop()
            yield current
            for child in ast.iter_child_nodes(current):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
                ):
                    continue
                stack.append(child)

    def _scan_expressions(
        self,
        nodes: Sequence[ast.AST],
        calls: list[CallSite],
        accesses: list[AttrAccess],
        spawns: list[ast.Call],
        guarded: bool,
        shallow: bool = False,
    ) -> None:
        for node in nodes:
            if shallow and isinstance(node, (list, ast.stmt)):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call):
                    site = self._analyze_call(inner)
                    if site is not None:
                        calls.append(site)
                    calls.extend(self._callback_edges(inner))
                    self._note_executor_entries(inner)
                    if terminal_name(inner.func) in _TASK_SPAWNERS:
                        spawns.append(inner)
                elif isinstance(inner, ast.Attribute):
                    if (
                        isinstance(inner.value, ast.Name)
                        and self.env.get(inner.value.id) == self.function.owner
                        and self.function.owner is not None
                    ):
                        accesses.append(
                            AttrAccess(
                                attr=inner.attr,
                                lineno=inner.lineno,
                                is_write=isinstance(inner.ctx, (ast.Store, ast.Del)),
                                guarded=guarded,
                            )
                        )
                elif isinstance(inner, (ast.Assign, ast.AugAssign)):
                    targets = (
                        inner.targets if isinstance(inner, ast.Assign) else [inner.target]
                    )
                    for target in targets:
                        # `self.x[k] = v` and `self.x += 1` mutate self.x.
                        base = target
                        while isinstance(base, ast.Subscript):
                            base = base.value
                        if (
                            isinstance(base, ast.Attribute)
                            and isinstance(base.value, ast.Name)
                            and self.env.get(base.value.id) == self.function.owner
                            and self.function.owner is not None
                        ):
                            accesses.append(
                                AttrAccess(
                                    attr=base.attr,
                                    lineno=base.lineno,
                                    is_write=True,
                                    guarded=guarded,
                                )
                            )

    def _analyze_call(self, node: ast.Call) -> CallSite | None:
        func = node.func
        callee: str | None = None
        dotted = resolve_dotted(func, self.imports)
        receiver_type: str | None = None
        attr = terminal_name(func)
        if isinstance(func, ast.Name):
            if dotted is None:
                dotted_local = f"{self.function.module}.{func.id}"
                symbol = self.graph.resolve_symbol(dotted_local)
            else:
                symbol = self.graph.resolve_symbol(dotted)
            callee = self._symbol_to_callee(symbol)
        elif isinstance(func, ast.Attribute):
            symbol = self.graph.resolve_symbol(dotted) if dotted else None
            callee = self._symbol_to_callee(symbol)
            if callee is None:
                receiver_type = self._expr_type(func.value)
                if receiver_type in self.graph.classes:
                    callee = self.graph.lookup_method(receiver_type, func.attr)
        else:
            return None
        # Mutating a dict/list/set attribute through a method call:
        # `self.tasks.add(x)` is a write to self.tasks.
        return CallSite(
            lineno=node.lineno,
            node=node,
            callee=callee,
            dotted=dotted,
            receiver_type=receiver_type,
            attr=attr,
        )

    def _symbol_to_callee(self, symbol: tuple[str, str] | None) -> str | None:
        if symbol is None:
            return None
        kind, identifier = symbol
        if kind == "function":
            return identifier
        constructor = self.graph.lookup_method(identifier, "__init__")
        return constructor

    def _extract_function_arg(self, node: ast.AST) -> str | None:
        """Project function id referenced by a callable argument."""
        if isinstance(node, ast.Call):
            # functools.partial(fn, ...) hands off its first argument.
            if terminal_name(node.func) == "partial" and node.args:
                return self._extract_function_arg(node.args[0])
            return None
        if isinstance(node, ast.Lambda):
            return None
        dotted = resolve_dotted(node, self.imports)
        symbol = None
        if dotted is not None:
            symbol = self.graph.resolve_symbol(dotted)
        elif isinstance(node, ast.Name):
            symbol = self.graph.resolve_symbol(f"{self.function.module}.{node.id}")
        elif isinstance(node, ast.Attribute):
            receiver = self._expr_type(node.value)
            if receiver in self.graph.classes:
                method = self.graph.lookup_method(receiver, node.attr)
                if method is not None:
                    return method
        if symbol is not None and symbol[0] == "function":
            return symbol[1]
        return None

    def _note_executor_entries(self, node: ast.Call) -> None:
        name = terminal_name(node.func)
        index = _EXECUTOR_HOPS.get(name or "")
        if index is None or len(node.args) <= index:
            return
        if name == "submit" and self._is_project_receiver(node.func):
            return  # a project class's own `submit` method, not a pool's
        entry = self._extract_function_arg(node.args[index])
        if entry is not None:
            self.graph.executor_entries.add(entry)

    def _is_project_receiver(self, func: ast.AST) -> bool:
        if not isinstance(func, ast.Attribute):
            return False
        return self._expr_type(func.value) in self.graph.classes

    def _callback_edges(self, node: ast.Call) -> list[CallSite]:
        """call_soon/call_later/add_done_callback register loop-side calls."""
        name = terminal_name(node.func)
        index = _LOOP_CALLBACKS.get(name or "")
        if index is None or len(node.args) <= index:
            return []
        callee = self._extract_function_arg(node.args[index])
        if callee is None:
            return []
        return [
            CallSite(
                lineno=node.lineno,
                node=node,
                callee=callee,
                dotted=None,
                receiver_type=None,
                attr=name,
                via_callback=True,
            )
        ]


# ---------------------------------------------------------------------------
# Task-usage analysis (shared by the concurrency rule)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class TaskUsage:
    """How the value of a task-producing call is consumed."""

    observed: bool
    returned: bool
    detail: str


def task_value_usage(
    graph: ProjectGraph, function: FunctionInfo, call: ast.Call
) -> TaskUsage:
    """Classify how a ``create_task``-like call's result is used.

    *Observed* means the task's eventual exception has a consumer: the task
    is awaited, passed to ``gather``/``wait``/``wait_for``/``shield``, or
    given a done-callback that is not container bookkeeping
    (:data:`BOOKKEEPING_CALLBACKS`).  Plain storage — a local name, a
    ``set.add``, a ``self.attr`` — is *not* observation: a stored task whose
    exception nobody retrieves fails silently.
    """
    parents = _parent_map(function.node)
    parent = parents.get(call)
    if isinstance(parent, ast.Await):
        return TaskUsage(True, False, "awaited")
    if isinstance(parent, ast.Return):
        return TaskUsage(False, True, "returned")
    if isinstance(parent, ast.Call) and terminal_name(parent.func) in _AWAITERS:
        return TaskUsage(True, False, "gathered")
    if isinstance(parent, ast.Expr):
        return TaskUsage(False, False, "discarded")
    target = None
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
        target = parent.targets[0]
    elif isinstance(parent, ast.AnnAssign):
        target = parent.target
    if isinstance(target, ast.Name):
        return _trace_name_usage(function, target.id, parents)
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and function.owner is not None
    ):
        return _trace_attr_usage(graph, function, target.attr)
    return TaskUsage(False, False, "escaped")  # starred/tuple targets etc.


_AWAITERS = frozenset({"gather", "wait", "wait_for", "shield", "as_completed"})


def _parent_map(root: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _observing_use(node_parent: ast.AST, node: ast.AST) -> str | None:
    if isinstance(node_parent, ast.Await):
        return "awaited"
    if (
        isinstance(node_parent, ast.Call)
        and terminal_name(node_parent.func) in _AWAITERS
    ):
        return "gathered"
    return None


def _callback_is_surfacing(call: ast.Call) -> bool:
    if not call.args:
        return False
    return terminal_name(call.args[0]) not in BOOKKEEPING_CALLBACKS


def _trace_name_usage(
    function: FunctionInfo, name: str, parents: dict[ast.AST, ast.AST]
) -> TaskUsage:
    # Aggregate every use before deciding: ast.walk is breadth-first, so a
    # `return task` can be visited before an earlier add_done_callback.
    observed: str | None = None
    returned = False
    for node in ast.walk(function.node):
        if not (isinstance(node, ast.Name) and node.id == name):
            continue
        parent = parents.get(node)
        use = _observing_use(parent, node) if parent is not None else None
        if use is not None:
            observed = observed or use
        elif isinstance(parent, ast.Return):
            returned = True
        elif isinstance(parent, ast.Starred):
            grandparent = parents.get(parent)
            if (
                isinstance(grandparent, ast.Call)
                and terminal_name(grandparent.func) in _AWAITERS
            ):
                observed = observed or "gathered"
        elif (
            isinstance(parent, ast.Attribute)
            and parent.attr == "add_done_callback"
        ):
            grandparent = parents.get(parent)
            if isinstance(grandparent, ast.Call) and _callback_is_surfacing(
                grandparent
            ):
                observed = observed or "done-callback"
    if observed is not None:
        return TaskUsage(True, returned, observed)
    if returned:
        return TaskUsage(False, True, "returned")
    return TaskUsage(False, False, "stored without an exception consumer")


def _trace_attr_usage(
    graph: ProjectGraph, function: FunctionInfo, attr: str
) -> TaskUsage:
    """Scan every method of the owning class for observation of self.<attr>."""
    owner = graph.classes.get(function.owner or "")
    if owner is None:
        return TaskUsage(False, False, "stored without an exception consumer")
    for method_fid in owner.methods.values():
        method = graph.functions[method_fid]
        parents = _parent_map(method.node)
        for node in ast.walk(method.node):
            if not (
                isinstance(node, ast.Attribute)
                and node.attr == attr
                and isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")
            ):
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.Await):
                return TaskUsage(True, False, "awaited")
            if isinstance(parent, ast.Call) and terminal_name(
                parent.func
            ) in _AWAITERS:
                return TaskUsage(True, False, "gathered")
            if isinstance(parent, ast.Attribute) and parent.attr in (
                "add_done_callback",
            ):
                grandparent = parents.get(parent)
                if isinstance(grandparent, ast.Call) and _callback_is_surfacing(
                    grandparent
                ):
                    return TaskUsage(True, False, "done-callback")
            if isinstance(parent, ast.Attribute) and parent.attr in (
                "result",
                "exception",
            ):
                return TaskUsage(True, False, "result() consumer")
    return TaskUsage(False, False, "stored without an exception consumer")
