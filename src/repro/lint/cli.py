"""Command-line interface: ``python -m repro.lint`` (wired as ``make lint``).

Exit status is 0 only when every finding is either suppressed in source or
recorded in the baseline — advisory findings gate exactly like errors, so
the repo's shipped state is *zero of both*.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_by_baseline,
    update_baseline,
)
from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules
from repro.lint.report import write_json, write_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker for this repository: determinism "
            "(per-module and interprocedural), encapsulation, config "
            "serialization, exception hygiene, hot-path discipline, "
            "async-concurrency rules, dead private code and BENCH artifact "
            "schemas.  Project rules (whole-program call graph) run on full "
            "scans and whenever --select names one."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files/directories to lint (default: src benchmarks examples "
            "scripts tests plus committed BENCH_*.json)"
        ),
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="output_format"
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to the current findings and exit 0; "
            "prunes (and warns about) stale entries that no longer fire"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run the per-module phase across N worker processes while the "
            "parent builds the project graph (output order is identical for "
            "any N; speedup tracks free cores — measured break-even on a "
            "1-CPU container, so leave at 1 unless cores are idle)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.list_rules:
        for rule in all_rules():
            print(
                f"{rule.code:15s} [{rule.severity}/{rule.scope}] {rule.description}"
            )
        return 0
    if arguments.jobs < 1:
        print("lint: --jobs must be >= 1", file=sys.stderr)
        return 2

    root = os.path.abspath(arguments.root or os.getcwd())
    select = arguments.select.split(",") if arguments.select else None
    try:
        findings, files_scanned = lint_paths(
            paths=arguments.paths or None,
            root=root,
            select=select,
            jobs=arguments.jobs,
        )
    except ValueError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2

    baseline_path = arguments.baseline or os.path.join(root, DEFAULT_BASELINE_NAME)
    if arguments.update_baseline:
        kept, added, pruned = update_baseline(baseline_path, findings)
        for fingerprint in pruned:
            print(
                f"lint: warning: pruned stale baseline entry {fingerprint} "
                "(no longer fires)",
                file=sys.stderr,
            )
        print(
            f"lint: baseline rewritten at {baseline_path}: "
            f"{len(kept)} kept, {len(added)} added, {len(pruned)} stale pruned"
        )
        return 0
    baseline = load_baseline(baseline_path)
    new_findings, known_findings = split_by_baseline(findings, baseline)

    reporter = write_json if arguments.output_format == "json" else write_text
    reporter(new_findings, len(known_findings), files_scanned, sys.stdout)
    return 1 if new_findings else 0
