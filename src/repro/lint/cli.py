"""Command-line interface: ``python -m repro.lint`` (wired as ``make lint``).

Exit status is 0 only when every finding is either suppressed in source or
recorded in the baseline — advisory findings gate exactly like errors, so
the repo's shipped state is *zero of both*.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules
from repro.lint.report import write_json, write_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker for this repository: determinism, "
            "encapsulation, config serialization, exception hygiene, "
            "hot-path discipline and BENCH artifact schemas."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files/directories to lint (default: src benchmarks examples "
            "scripts tests plus committed BENCH_*.json)"
        ),
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="output_format"
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.list_rules:
        for rule in all_rules():
            print(f"{rule.code:15s} [{rule.severity}] {rule.description}")
        return 0

    root = os.path.abspath(arguments.root or os.getcwd())
    select = arguments.select.split(",") if arguments.select else None
    try:
        findings, files_scanned = lint_paths(
            paths=arguments.paths or None, root=root, select=select
        )
    except ValueError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2

    baseline_path = arguments.baseline or os.path.join(root, DEFAULT_BASELINE_NAME)
    if arguments.update_baseline:
        count = write_baseline(baseline_path, findings)
        print(f"lint: baseline rewritten with {count} entr(y/ies) at {baseline_path}")
        return 0
    baseline = load_baseline(baseline_path)
    new_findings, known_findings = split_by_baseline(findings, baseline)

    reporter = write_json if arguments.output_format == "json" else write_text
    reporter(new_findings, len(known_findings), files_scanned, sys.stdout)
    return 1 if new_findings else 0
