"""Trotter-Suzuki decomposition baseline.

Section IV and Fig. 12 compare Choco-Q's equivalent decomposition against the
Trotter decomposition of the driver unitary ``e^{-i beta H_d}``:

    e^{-i beta H_d} ≈ ( prod_u e^{-i beta H_c(u) / N} )^N            (Eq. 8)

with error ``O(1/N^2)`` after ``N`` repetitions.  Building the approximation
requires materialising each local unitary (and, in the conventional flow the
paper describes, the full ``2^n x 2^n`` driver matrix), which is exponential
in time and memory — this module reproduces that cost profile faithfully so
the Fig. 12 benchmark can regenerate the comparison.

:class:`TrotterDecomposer` returns a circuit made of opaque ``unitary`` gates
(one per local factor per repetition) plus a :class:`TrotterReport` recording
the wall-clock decomposition time, the peak bytes allocated for Hamiltonian
matrices, and the resulting circuit depth estimate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy.linalg import expm

from repro.exceptions import HamiltonianError
from repro.hamiltonian.commute import CommuteDriver
from repro.qcircuit.circuit import QuantumCircuit


@dataclass(frozen=True)
class TrotterReport:
    """Cost accounting for one Trotter decomposition run."""

    num_qubits: int
    repetitions: int
    decomposition_seconds: float
    memory_bytes: int
    circuit_depth: int
    num_unitaries: int


class TrotterDecomposer:
    """Approximate the driver unitary by repeated local-unitary products.

    Args:
        repetitions: the number ``N`` of repetitions in Eq. (8).  The paper
            notes ``N > 100`` is needed for acceptable accuracy; the default
            follows that.
        build_full_hamiltonian: when True (the conventional flow), the dense
            ``2^n x 2^n`` driver matrix is materialised to derive the local
            factors, reproducing the exponential memory footprint Fig. 12
            reports.  When False, only the local support-sized matrices are
            built (a kinder variant used to keep unit tests fast).
        max_qubits: guard against accidentally exponentiating a matrix too
            large for the host; mimics the "time out" entries in Fig. 12.
    """

    def __init__(
        self,
        repetitions: int = 128,
        build_full_hamiltonian: bool = True,
        max_qubits: int = 14,
    ) -> None:
        if repetitions < 1:
            raise HamiltonianError("repetitions must be positive")
        self.repetitions = repetitions
        self.build_full_hamiltonian = build_full_hamiltonian
        self.max_qubits = max_qubits

    # ------------------------------------------------------------------

    def decompose(self, driver: CommuteDriver, beta: float) -> tuple[QuantumCircuit, TrotterReport]:
        """Build the Trotterised circuit and its cost report."""
        if driver.num_qubits > self.max_qubits:
            raise HamiltonianError(
                f"Trotter decomposition of a {driver.num_qubits}-qubit driver exceeds "
                f"the {self.max_qubits}-qubit limit (the conventional flow times out here)"
            )
        start = time.perf_counter()
        memory_bytes = 0

        if self.build_full_hamiltonian:
            full_matrix = driver.hamiltonian_matrix()
            memory_bytes += full_matrix.nbytes
            # The conventional flow exponentiates the full matrix once to
            # validate the approximation error; include that cost.
            reference = expm(-1j * beta * full_matrix / self.repetitions)
            memory_bytes += reference.nbytes

        circuit = QuantumCircuit(driver.num_qubits, name="trotter_driver")
        local_unitaries: list[tuple[tuple[int, ...], np.ndarray]] = []
        for term in driver.terms:
            local_hamiltonian = _local_matrix(term.u, term.support)
            memory_bytes += local_hamiltonian.nbytes
            local_unitary = expm(-1j * beta * local_hamiltonian / self.repetitions)
            memory_bytes += local_unitary.nbytes
            local_unitaries.append((term.support, local_unitary))

        for _ in range(self.repetitions):
            for support, unitary in local_unitaries:
                circuit.unitary(unitary, support, label="trotter_step")

        elapsed = time.perf_counter() - start
        depth = _estimated_depth(circuit)
        report = TrotterReport(
            num_qubits=driver.num_qubits,
            repetitions=self.repetitions,
            decomposition_seconds=elapsed,
            memory_bytes=memory_bytes,
            circuit_depth=depth,
            num_unitaries=len(local_unitaries) * self.repetitions,
        )
        return circuit, report

    def approximation_error(self, driver: CommuteDriver, beta: float) -> float:
        """Spectral-norm error between the exact and Trotterised unitaries."""
        from repro.hamiltonian.evolution import driver_evolution_operator

        exact = driver_evolution_operator(driver, beta)
        approx = np.eye(2**driver.num_qubits, dtype=complex)
        step = np.eye(2**driver.num_qubits, dtype=complex)
        for term in driver.terms:
            term_unitary = expm(-1j * beta * term.to_matrix() / self.repetitions)
            step = term_unitary @ step
        for _ in range(self.repetitions):
            approx = step @ approx
        return float(np.linalg.norm(exact - approx, ord=2))


def _local_matrix(u: tuple[int, ...], support: tuple[int, ...]) -> np.ndarray:
    """The local Hamiltonian restricted to the support qubits."""
    sigma = {
        +1: np.array([[0, 0], [1, 0]], dtype=complex),
        -1: np.array([[0, 1], [0, 0]], dtype=complex),
    }
    matrix = np.array([[1.0]], dtype=complex)
    for qubit in reversed(support):
        matrix = np.kron(matrix, sigma[u[qubit]])
    return matrix + matrix.conj().T


def _estimated_depth(circuit: QuantumCircuit) -> int:
    """Depth after charging each opaque k-qubit unitary a 4^k synthesis cost.

    Generic unitary synthesis needs O(4^k) basic gates; this mirrors
    :func:`repro.qcircuit.transpile.depth_after_transpile` without paying the
    cost of actually lowering the (often enormous) Trotter circuit.
    """
    depth = 0
    for instruction in circuit:
        if instruction.gate.name == "unitary":
            depth += 4 ** len(instruction.qubits)
        elif not instruction.is_directive:
            depth += 1
    return depth
