"""Pauli-string algebra.

A :class:`PauliString` is a tensor product of single-qubit Pauli operators
(``I``, ``X``, ``Y``, ``Z``) with a complex coefficient; a :class:`PauliSum`
is a linear combination of Pauli strings.  The classes provide exactly the
operations the QAOA front-ends need:

* dense matrices (for small registers and for verification tests),
* products and commutators (``[A, B] = AB - BA``) — the paper's central
  correctness property is that the driver Hamiltonian commutes with the
  constraint operator,
* conversion of the cyclic driver Hamiltonian ``sum_i X_i X_{i+1} + Y_i Y_{i+1}``
  and of diagonal objective Hamiltonians into this representation.

Qubit ordering matches the simulator: qubit 0 is the least-significant bit of
a basis index.  ``PauliString("XY")`` therefore has ``X`` on qubit 0 and
``Y`` on qubit 1 (the label is read left-to-right as qubit 0, 1, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.exceptions import HamiltonianError

_SINGLE = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

# Single-qubit Pauli multiplication table: (a, b) -> (phase, result)
_PRODUCT: dict[tuple[str, str], tuple[complex, str]] = {
    ("I", "I"): (1, "I"),
    ("I", "X"): (1, "X"),
    ("I", "Y"): (1, "Y"),
    ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"),
    ("Y", "I"): (1, "Y"),
    ("Z", "I"): (1, "Z"),
    ("X", "X"): (1, "I"),
    ("Y", "Y"): (1, "I"),
    ("Z", "Z"): (1, "I"),
    ("X", "Y"): (1j, "Z"),
    ("Y", "X"): (-1j, "Z"),
    ("Y", "Z"): (1j, "X"),
    ("Z", "Y"): (-1j, "X"),
    ("Z", "X"): (1j, "Y"),
    ("X", "Z"): (-1j, "Y"),
}


@dataclass(frozen=True)
class PauliString:
    """A weighted tensor product of single-qubit Pauli operators."""

    label: str
    coefficient: complex = 1.0

    def __post_init__(self) -> None:
        for ch in self.label:
            if ch not in "IXYZ":
                raise HamiltonianError(f"invalid Pauli label character {ch!r}")

    # ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self.label)

    @property
    def support(self) -> tuple[int, ...]:
        """Qubits on which the string acts non-trivially."""
        return tuple(i for i, ch in enumerate(self.label) if ch != "I")

    @property
    def is_identity(self) -> bool:
        return all(ch == "I" for ch in self.label)

    @property
    def is_diagonal(self) -> bool:
        """True when the string contains only I and Z factors."""
        return all(ch in "IZ" for ch in self.label)

    # ------------------------------------------------------------------

    def to_matrix(self) -> np.ndarray:
        """Dense matrix, little-endian (qubit 0 = least significant bit)."""
        matrix = np.array([[self.coefficient]], dtype=complex)
        # Build with qubit n-1 as the slowest (left-most kron factor).
        for ch in reversed(self.label):
            matrix = np.kron(matrix, _SINGLE[ch])
        return matrix

    def __mul__(self, other: "PauliString | complex") -> "PauliString":
        if isinstance(other, (int, float, complex)):
            return PauliString(self.label, self.coefficient * other)
        if self.num_qubits != other.num_qubits:
            raise HamiltonianError("cannot multiply Pauli strings of different sizes")
        phase: complex = 1.0
        chars = []
        for a, b in zip(self.label, other.label):
            factor, result = _PRODUCT[(a, b)]
            phase *= factor
            chars.append(result)
        return PauliString("".join(chars), self.coefficient * other.coefficient * phase)

    __rmul__ = __mul__

    def __neg__(self) -> "PauliString":
        return PauliString(self.label, -self.coefficient)

    def commutes_with(self, other: "PauliString") -> bool:
        """True when the two strings commute as operators.

        Two Pauli strings commute iff they anticommute on an even number of
        qubits.
        """
        if self.num_qubits != other.num_qubits:
            raise HamiltonianError("size mismatch in commutation check")
        anticommuting = 0
        for a, b in zip(self.label, other.label):
            if a != "I" and b != "I" and a != b:
                anticommuting += 1
        return anticommuting % 2 == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PauliString({self.label!r}, {self.coefficient!r})"


class PauliSum:
    """A linear combination of Pauli strings over a fixed register size."""

    def __init__(self, terms: Iterable[PauliString] | None = None, num_qubits: int | None = None):
        self._terms: list[PauliString] = list(terms or [])
        if self._terms:
            sizes = {term.num_qubits for term in self._terms}
            if len(sizes) != 1:
                raise HamiltonianError("all terms must act on the same number of qubits")
            inferred = sizes.pop()
            if num_qubits is not None and num_qubits != inferred:
                raise HamiltonianError("num_qubits does not match the provided terms")
            self.num_qubits = inferred
        else:
            if num_qubits is None:
                raise HamiltonianError("empty PauliSum requires an explicit num_qubits")
            self.num_qubits = num_qubits

    # ------------------------------------------------------------------

    @property
    def terms(self) -> tuple[PauliString, ...]:
        return tuple(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[PauliString]:
        return iter(self._terms)

    def __add__(self, other: "PauliSum | PauliString") -> "PauliSum":
        if isinstance(other, PauliString):
            other = PauliSum([other])
        if other.num_qubits != self.num_qubits:
            raise HamiltonianError("cannot add Pauli sums of different sizes")
        return PauliSum(list(self._terms) + list(other._terms), num_qubits=self.num_qubits)

    def __mul__(self, scalar: complex) -> "PauliSum":
        return PauliSum(
            [PauliString(t.label, t.coefficient * scalar) for t in self._terms],
            num_qubits=self.num_qubits,
        )

    __rmul__ = __mul__

    def __matmul__(self, other: "PauliSum") -> "PauliSum":
        """Operator product of two sums (term-by-term Pauli multiplication)."""
        if other.num_qubits != self.num_qubits:
            raise HamiltonianError("cannot multiply Pauli sums of different sizes")
        products = [a * b for a in self._terms for b in other._terms]
        return PauliSum(products, num_qubits=self.num_qubits).simplify()

    # ------------------------------------------------------------------

    def simplify(self, tolerance: float = 1e-12) -> "PauliSum":
        """Merge identical labels and drop terms with negligible coefficients."""
        merged: dict[str, complex] = {}
        for term in self._terms:
            merged[term.label] = merged.get(term.label, 0.0) + term.coefficient
        terms = [
            PauliString(label, coefficient)
            for label, coefficient in merged.items()
            if abs(coefficient) > tolerance
        ]
        return PauliSum(terms, num_qubits=self.num_qubits)

    def to_matrix(self) -> np.ndarray:
        dim = 2**self.num_qubits
        matrix = np.zeros((dim, dim), dtype=complex)
        for term in self._terms:
            matrix += term.to_matrix()
        return matrix

    def is_diagonal(self) -> bool:
        return all(term.is_diagonal for term in self._terms)

    def diagonal(self) -> np.ndarray:
        """Eigenvalues of a diagonal sum, indexed by basis state."""
        if not self.is_diagonal():
            raise HamiltonianError("PauliSum is not diagonal")
        dim = 2**self.num_qubits
        values = np.zeros(dim, dtype=complex)
        indices = np.arange(dim)
        for term in self._terms:
            sign = np.ones(dim)
            for qubit, ch in enumerate(term.label):
                if ch == "Z":
                    bit = (indices >> qubit) & 1
                    sign = sign * (1 - 2 * bit)
            values = values + term.coefficient * sign
        return values

    def commutator(self, other: "PauliSum") -> "PauliSum":
        """Return ``[self, other] = self other - other self`` (simplified)."""
        return ((self @ other) + ((other @ self) * -1.0)).simplify()

    def commutes_with(self, other: "PauliSum", tolerance: float = 1e-10) -> bool:
        commutator = self.commutator(other)
        return all(abs(term.coefficient) <= tolerance for term in commutator.terms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PauliSum({len(self._terms)} terms, {self.num_qubits} qubits)"


# ---------------------------------------------------------------------------
# Constructors used by the solver front-ends
# ---------------------------------------------------------------------------


def single_pauli(num_qubits: int, qubit: int, kind: str, coefficient: complex = 1.0) -> PauliString:
    """A Pauli operator on one qubit, identity elsewhere."""
    if not 0 <= qubit < num_qubits:
        raise HamiltonianError(f"qubit {qubit} out of range")
    kind = kind.upper()
    if kind not in "XYZ":
        raise HamiltonianError(f"invalid Pauli kind {kind!r}")
    label = "".join(kind if i == qubit else "I" for i in range(num_qubits))
    return PauliString(label, coefficient)


def two_pauli(
    num_qubits: int,
    qubit_a: int,
    kind_a: str,
    qubit_b: int,
    kind_b: str,
    coefficient: complex = 1.0,
) -> PauliString:
    """A two-qubit Pauli product, identity elsewhere."""
    if qubit_a == qubit_b:
        raise HamiltonianError("two_pauli requires distinct qubits")
    chars = ["I"] * num_qubits
    chars[qubit_a] = kind_a.upper()
    chars[qubit_b] = kind_b.upper()
    return PauliString("".join(chars), coefficient)


def cyclic_driver_terms(num_qubits: int, qubits: list[int]) -> PauliSum:
    """The cyclic driver Hamiltonian of Eq. (2) on the given qubit chain.

    ``H_d = sum_i X_i X_{i+1} + Y_i Y_{i+1}`` over consecutive pairs of the
    chain ``qubits`` (the variables appearing in one summation-format
    constraint).
    """
    if len(qubits) < 2:
        raise HamiltonianError("cyclic driver needs at least two qubits")
    terms: list[PauliString] = []
    for a, b in zip(qubits, qubits[1:]):
        terms.append(two_pauli(num_qubits, a, "X", b, "X"))
        terms.append(two_pauli(num_qubits, a, "Y", b, "Y"))
    return PauliSum(terms, num_qubits=num_qubits)


def ising_from_quadratic(
    num_qubits: int,
    linear: Mapping[int, float],
    quadratic: Mapping[tuple[int, int], float],
    constant: float = 0.0,
) -> PauliSum:
    """Convert a binary quadratic polynomial into an Ising (I/Z) Pauli sum.

    Substitutes ``x_j = (I - Z_j) / 2`` into
    ``constant + sum_j linear[j] x_j + sum_{i<j} quadratic[i, j] x_i x_j``.
    """
    identity = PauliString("I" * num_qubits, 0.0)
    label_z = lambda qubit: single_pauli(num_qubits, qubit, "Z")  # noqa: E731
    terms: list[PauliString] = [PauliString("I" * num_qubits, complex(constant))]
    for qubit, weight in linear.items():
        terms.append(PauliString("I" * num_qubits, weight / 2.0))
        terms.append(label_z(qubit) * (-weight / 2.0))
    for (qa, qb), weight in quadratic.items():
        if qa == qb:
            # x^2 = x for binary variables
            terms.append(PauliString("I" * num_qubits, weight / 2.0))
            terms.append(label_z(qa) * (-weight / 2.0))
            continue
        terms.append(PauliString("I" * num_qubits, weight / 4.0))
        terms.append(label_z(qa) * (-weight / 4.0))
        terms.append(label_z(qb) * (-weight / 4.0))
        terms.append(two_pauli(num_qubits, qa, "Z", qb, "Z", weight / 4.0))
    del identity
    return PauliSum(terms, num_qubits=num_qubits).simplify()
