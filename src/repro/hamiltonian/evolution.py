"""Exact Hamiltonian evolution utilities.

Provides dense matrix exponentials ``e^{-i t H}`` for verification of the
serialization (Lemma 1) and decomposition (Lemma 2) passes, and the
"monolithic" driver unitary that the Trotter baseline approximates.  These
routines are exponential in the register size by construction — that cost is
exactly the overhead the paper's optimizations remove — so they are guarded
by a qubit limit.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from repro.exceptions import HamiltonianError, SimulationError
from repro.hamiltonian.commute import CommuteDriver, CommuteHamiltonianTerm
from repro.hamiltonian.pauli import PauliSum

_MAX_DENSE_QUBITS = 14


def dense_evolution_operator(hamiltonian: np.ndarray, time: float) -> np.ndarray:
    """The unitary ``e^{-i time H}`` for a dense Hermitian matrix ``H``."""
    hamiltonian = np.asarray(hamiltonian, dtype=complex)
    if hamiltonian.ndim != 2 or hamiltonian.shape[0] != hamiltonian.shape[1]:
        raise HamiltonianError("hamiltonian must be a square matrix")
    return expm(-1j * time * hamiltonian)


def pauli_sum_evolution(pauli_sum: PauliSum, time: float) -> np.ndarray:
    """Exact unitary of a Pauli-sum Hamiltonian (dense)."""
    if pauli_sum.num_qubits > _MAX_DENSE_QUBITS:
        raise SimulationError(
            f"dense evolution limited to {_MAX_DENSE_QUBITS} qubits, "
            f"got {pauli_sum.num_qubits}"
        )
    return dense_evolution_operator(pauli_sum.to_matrix(), time)


def term_evolution_operator(term: CommuteHamiltonianTerm, beta: float) -> np.ndarray:
    """Exact dense unitary ``e^{-i beta H_c(u)}`` of a single commute term."""
    if term.num_qubits > _MAX_DENSE_QUBITS:
        raise SimulationError(
            f"dense evolution limited to {_MAX_DENSE_QUBITS} qubits, "
            f"got {term.num_qubits}"
        )
    return dense_evolution_operator(term.to_matrix(), beta)


def driver_evolution_operator(driver: CommuteDriver, beta: float) -> np.ndarray:
    """The *monolithic* driver unitary ``e^{-i beta sum_u H_c(u)}``.

    This is what the Trotter baseline approximates and what Lemma 1 proves
    can be replaced by the serialized product while conserving constraint
    expectations.
    """
    if driver.num_qubits > _MAX_DENSE_QUBITS:
        raise SimulationError(
            f"dense evolution limited to {_MAX_DENSE_QUBITS} qubits, "
            f"got {driver.num_qubits}"
        )
    return dense_evolution_operator(driver.hamiltonian_matrix(), beta)


def apply_dense_operator(state: np.ndarray, operator: np.ndarray) -> np.ndarray:
    """Apply a dense operator to a dense statevector."""
    if operator.shape[1] != state.shape[0]:
        raise SimulationError("operator and state dimensions do not match")
    return operator @ state
