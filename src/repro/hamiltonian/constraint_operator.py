"""The constraint operator of Eq. (3).

For a single linear constraint ``sum_i c_i x_i = c`` the paper defines the
operator ``C_hat = sum_i c_i sigma_z^i``.  The expectation of this operator is
conserved exactly when the driver Hamiltonian commutes with it, which is the
foundation of the commute-Hamiltonian encoding (Fig. 1b).

This module builds the operator both as a :class:`~repro.hamiltonian.pauli.PauliSum`
(for commutation checks) and as a diagonal vector (for fast expectation values
during simulation), for a single constraint or a whole constraint system.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import HamiltonianError
from repro.hamiltonian.pauli import PauliString, PauliSum, single_pauli


def constraint_operator(coefficients: Sequence[float], num_qubits: int | None = None) -> PauliSum:
    """Build ``C_hat = sum_i c_i Z_i`` for one constraint row.

    Args:
        coefficients: the row of the constraint matrix (length = #variables).
        num_qubits: register size; defaults to ``len(coefficients)``.
    """
    coefficients = list(coefficients)
    num_qubits = len(coefficients) if num_qubits is None else num_qubits
    if num_qubits < len(coefficients):
        raise HamiltonianError("register smaller than the coefficient vector")
    terms: list[PauliString] = []
    for qubit, coefficient in enumerate(coefficients):
        if coefficient != 0:
            terms.append(single_pauli(num_qubits, qubit, "Z", complex(coefficient)))
    if not terms:
        return PauliSum([], num_qubits=num_qubits)
    return PauliSum(terms, num_qubits=num_qubits)


def constraint_operator_diagonal(
    coefficients: Sequence[float], num_qubits: int | None = None
) -> np.ndarray:
    """Diagonal of ``C_hat`` indexed by basis state (little-endian).

    Basis state with bit ``x_i`` on qubit ``i`` has eigenvalue
    ``sum_i c_i (1 - 2 x_i)`` since ``Z|x_i> = (1 - 2 x_i)|x_i>``.
    """
    coefficients = np.asarray(list(coefficients), dtype=float)
    num_qubits = len(coefficients) if num_qubits is None else num_qubits
    dim = 2**num_qubits
    indices = np.arange(dim)
    diagonal = np.zeros(dim, dtype=float)
    for qubit, coefficient in enumerate(coefficients):
        if coefficient == 0:
            continue
        bits = (indices >> qubit) & 1
        diagonal += coefficient * (1 - 2 * bits)
    return diagonal


def constraint_system_operators(
    constraint_matrix: np.ndarray, num_qubits: int | None = None
) -> list[PauliSum]:
    """One :func:`constraint_operator` per row of the constraint matrix."""
    constraint_matrix = np.atleast_2d(np.asarray(constraint_matrix, dtype=float))
    num_qubits = constraint_matrix.shape[1] if num_qubits is None else num_qubits
    return [constraint_operator(row, num_qubits) for row in constraint_matrix]


def constraint_expectations(
    statevector_probabilities: np.ndarray,
    constraint_matrix: np.ndarray,
    num_qubits: int,
) -> np.ndarray:
    """Expectation of each row operator under a probability distribution."""
    constraint_matrix = np.atleast_2d(np.asarray(constraint_matrix, dtype=float))
    expectations = np.zeros(constraint_matrix.shape[0])
    for row_index, row in enumerate(constraint_matrix):
        diagonal = constraint_operator_diagonal(row, num_qubits)
        expectations[row_index] = float(np.dot(statevector_probabilities, diagonal))
    return expectations
