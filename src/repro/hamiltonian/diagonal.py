"""Diagonal objective Hamiltonians.

QAOA encodes the objective function ``f(x)`` as a Hamiltonian ``H_o`` that is
diagonal in the computational basis: the eigenvalue of basis state ``|x>`` is
``f(x)``.  This module provides two representations of the same operator:

* :class:`DiagonalHamiltonian` — a dense diagonal vector of length ``2**n``,
  used by the simulator for exact phase application ``e^{-i gamma H_o}`` and
  expectation values (the exact equivalent of substituting
  ``x_j = (I - Z_j)/2`` in the paper's Step 2);
* a quadratic *polynomial* form (linear + quadratic coefficient maps), used
  to emit the RZ / RZZ phase-separation circuit whose depth Table II reports.

Objectives from the application layer arrive as polynomials over binary
variables: a mapping from sorted variable-index tuples to coefficients,
``{(): c0, (i,): ci, (i, j): cij, ...}``.  Higher-order terms are supported
by the dense representation and rejected by the circuit emitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import HamiltonianError
from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.parameters import ParameterValue

PolynomialTerms = Mapping[tuple[int, ...], float]


@dataclass
class DiagonalHamiltonian:
    """A Hamiltonian diagonal in the computational basis."""

    diagonal: np.ndarray
    num_qubits: int

    @classmethod
    def from_polynomial(cls, terms: PolynomialTerms, num_qubits: int) -> "DiagonalHamiltonian":
        """Build the dense diagonal from a binary polynomial.

        The eigenvalue at basis index ``k`` is the polynomial evaluated on the
        bit assignment of ``k`` (little-endian).
        """
        dim = 2**num_qubits
        indices = np.arange(dim)
        diagonal = np.zeros(dim, dtype=float)
        for variables, coefficient in terms.items():
            if coefficient == 0:
                continue
            product = np.ones(dim, dtype=float)
            for variable in variables:
                if not 0 <= variable < num_qubits:
                    raise HamiltonianError(
                        f"variable {variable} out of range for {num_qubits} qubits"
                    )
                product = product * ((indices >> variable) & 1)
            diagonal += coefficient * product
        return cls(diagonal=diagonal, num_qubits=num_qubits)

    # ------------------------------------------------------------------

    def value(self, bits: Sequence[int]) -> float:
        index = 0
        for qubit, bit in enumerate(bits):
            index |= int(bit) << qubit
        return float(self.diagonal[index])

    def expectation(self, probabilities: np.ndarray) -> float:
        return float(np.dot(probabilities, self.diagonal))

    def evolution_phases(self, gamma: float) -> np.ndarray:
        """The diagonal of ``e^{-i gamma H_o}`` as a complex vector."""
        return np.exp(-1j * gamma * self.diagonal)

    def apply_evolution(self, state: np.ndarray, gamma: float) -> np.ndarray:
        """Apply ``e^{-i gamma H_o}`` to a dense statevector."""
        return state * self.evolution_phases(gamma)

    def restrict(self, subspace_map) -> np.ndarray:
        """The diagonal gathered onto the coordinates of a feasible subspace.

        Because the operator is diagonal, its restriction to the span of the
        feasible basis states is exactly this sub-vector; applying
        ``exp(-i gamma * restrict(...))`` elementwise to a subspace
        statevector reproduces :meth:`apply_evolution` on the lifted state.
        For large registers prefer building the restricted diagonal directly
        with :meth:`SubspaceMap.evaluate_polynomial
        <repro.core.subspace.SubspaceMap.evaluate_polynomial>`, which never
        materialises the ``2^n`` vector.
        """
        return subspace_map.restrict_diagonal(self.diagonal)

    def __add__(self, other: "DiagonalHamiltonian") -> "DiagonalHamiltonian":
        if other.num_qubits != self.num_qubits:
            raise HamiltonianError("cannot add Hamiltonians of different sizes")
        return DiagonalHamiltonian(self.diagonal + other.diagonal, self.num_qubits)

    def __mul__(self, scalar: float) -> "DiagonalHamiltonian":
        return DiagonalHamiltonian(self.diagonal * scalar, self.num_qubits)

    __rmul__ = __mul__


# ---------------------------------------------------------------------------
# Phase-separation circuits
# ---------------------------------------------------------------------------


def split_polynomial(terms: PolynomialTerms) -> tuple[float, dict[int, float], dict[tuple[int, int], float]]:
    """Split a polynomial into (constant, linear, quadratic) parts.

    Raises :class:`HamiltonianError` on cubic or higher terms — the paper's
    benchmark objectives (FLP, GCP, KPP, and their penalty terms) are all at
    most quadratic.
    """
    constant = 0.0
    linear: dict[int, float] = {}
    quadratic: dict[tuple[int, int], float] = {}
    for variables, coefficient in terms.items():
        unique = tuple(sorted(set(variables)))
        if len(unique) == 0:
            constant += coefficient
        elif len(unique) == 1:
            linear[unique[0]] = linear.get(unique[0], 0.0) + coefficient
        elif len(unique) == 2:
            quadratic[unique] = quadratic.get(unique, 0.0) + coefficient
        else:
            raise HamiltonianError(
                "phase-separation circuits support at most quadratic objectives; "
                f"got a term over variables {unique}"
            )
    return constant, linear, quadratic


def phase_separation_circuit(
    terms: PolynomialTerms, num_qubits: int, gamma: ParameterValue
) -> QuantumCircuit:
    """Emit the circuit for ``e^{-i gamma H_o}`` of a quadratic objective.

    Using the Ising substitution ``x_j = (1 - Z_j)/2``:

    * a linear term ``w x_j`` contributes ``RZ(-w gamma)`` on qubit ``j``
      (up to an irrelevant global phase),
    * a quadratic term ``w x_i x_j`` contributes single-qubit ``RZ`` on both
      qubits and an ``RZZ(w gamma / 2)`` coupling.
    """
    constant, linear, quadratic = split_polynomial(terms)
    del constant  # global phase only
    circuit = QuantumCircuit(num_qubits, name="phase_separation")
    rz_angles: dict[int, float | ParameterValue] = {}

    def add_angle(qubit: int, scale: float) -> None:
        # Accumulate the scale; the symbolic gamma multiplies it at emit time.
        rz_angles[qubit] = rz_angles.get(qubit, 0.0) + scale

    for qubit, weight in linear.items():
        # w x_j -> (w/2)(I - Z_j): evolution adds phase e^{+i gamma w Z_j / 2},
        # i.e. RZ(-gamma w) up to global phase.
        add_angle(qubit, -weight)
    for (qa, qb), weight in quadratic.items():
        # w x_i x_j -> (w/4)(I - Z_i - Z_j + Z_i Z_j)
        add_angle(qa, -weight / 2.0)
        add_angle(qb, -weight / 2.0)
    for qubit, scale in rz_angles.items():
        if scale != 0.0:
            circuit.rz(_scaled(gamma, scale), qubit)
    for (qa, qb), weight in quadratic.items():
        if weight != 0.0:
            circuit.rzz(_scaled(gamma, weight / 2.0), qa, qb)
    return circuit


def _scaled(gamma: ParameterValue, scale: float) -> ParameterValue:
    """Multiply a (possibly symbolic) parameter by a float."""
    if isinstance(gamma, (int, float)):
        return float(gamma) * scale
    return gamma * scale
