"""Hamiltonian machinery: Pauli algebra, objective/constraint operators,
commute Hamiltonians (the paper's contribution), and the Trotter baseline."""

from repro.hamiltonian.commute import (
    CommuteDriver,
    CommuteHamiltonianTerm,
    RestrictedCommuteDriver,
    dense_term_pairing,
    rotate_pairs_cs,
    subspace_pairing_loop,
)
from repro.hamiltonian.compiled import (
    EvolutionProgram,
    apply_diagonal_phase,
    prepare_ansatz_state,
)
from repro.hamiltonian.constraint_operator import (
    constraint_expectations,
    constraint_operator,
    constraint_operator_diagonal,
    constraint_system_operators,
)
from repro.hamiltonian.diagonal import (
    DiagonalHamiltonian,
    phase_separation_circuit,
    split_polynomial,
)
from repro.hamiltonian.evolution import (
    apply_dense_operator,
    dense_evolution_operator,
    driver_evolution_operator,
    pauli_sum_evolution,
    term_evolution_operator,
)
from repro.hamiltonian.pauli import (
    PauliString,
    PauliSum,
    cyclic_driver_terms,
    ising_from_quadratic,
    single_pauli,
    two_pauli,
)
from repro.hamiltonian.trotter import TrotterDecomposer, TrotterReport

__all__ = [
    "CommuteDriver",
    "CommuteHamiltonianTerm",
    "DiagonalHamiltonian",
    "EvolutionProgram",
    "PauliString",
    "RestrictedCommuteDriver",
    "PauliSum",
    "TrotterDecomposer",
    "TrotterReport",
    "apply_dense_operator",
    "apply_diagonal_phase",
    "dense_term_pairing",
    "prepare_ansatz_state",
    "rotate_pairs_cs",
    "subspace_pairing_loop",
    "constraint_expectations",
    "constraint_operator",
    "constraint_operator_diagonal",
    "constraint_system_operators",
    "cyclic_driver_terms",
    "dense_evolution_operator",
    "driver_evolution_operator",
    "ising_from_quadratic",
    "pauli_sum_evolution",
    "phase_separation_circuit",
    "single_pauli",
    "split_polynomial",
    "term_evolution_operator",
    "two_pauli",
]
