"""Commute Hamiltonian construction, serialization and decomposition.

This module implements the paper's central contribution:

* :class:`CommuteHamiltonianTerm` — the local Hamiltonian ``H_c(u)`` of
  Eq. (5) for a single solution vector ``u`` of ``C u = 0`` with entries in
  ``{-1, 0, +1}``.  The term is a "hop" operator ``|v><v̄| + |v̄><v|`` between
  the two bit patterns ``v`` and ``v̄`` on the support of ``u``
  (``v_i = (1 + u_i)/2``, Eq. (12)).
* the **serialized driver** of Lemma 1: the product
  ``prod_u e^{-i beta H_c(u)}`` replaces the monolithic ``e^{-i beta H_d}``
  while still conserving every constraint operator expectation;
* the **equivalent decomposition** of Lemma 2 / Algorithm 1: each local
  unitary is compiled to ``G† P(beta) X_1 P(-beta) X_1 G`` where ``G`` is a
  CX/X/H converting circuit and ``P`` a multi-controlled phase gate — linear
  time and linear circuit depth in the support size.

Four execution paths are provided for each term:

1. ``apply_evolution`` — fast dense-statevector application of the exact
   2x2 rotation on the paired basis states (used by the simulator-backed
   solver; no decomposition needed);
2. ``subspace_pairing`` / :class:`RestrictedCommuteDriver` — the same
   rotation restricted to the feasible subspace of a
   :class:`~repro.core.subspace.SubspaceMap`: each term becomes a pairing
   permutation plus a 2x2 rotation over ``O(|F|)`` amplitudes instead of
   ``O(2^n)``.  Valid because every ``H_c(u)`` maps feasible basis states to
   feasible basis states (``C(x ± u) = C x`` for ``u`` in the nullspace), so
   the full operator is block-diagonal over ``F`` and its complement;
3. ``decomposed_circuit`` — the Lemma-2 gate sequence (used for depth
   accounting, noisy execution and deployment);
4. ``to_matrix`` / ``to_pauli_sum`` — dense and Pauli forms (used by the
   verification tests and the Trotter baseline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import HamiltonianError
from repro.hamiltonian.pauli import PauliString, PauliSum
from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.parameters import ParameterValue

_SIGMA = {
    +1: np.array([[0, 0], [1, 0]], dtype=complex),  # raises |0> -> |1>
    0: np.eye(2, dtype=complex),
    -1: np.array([[0, 1], [0, 0]], dtype=complex),  # lowers |1> -> |0>
}


@dataclass(frozen=True)
class CommuteHamiltonianTerm:
    """The local commute Hamiltonian ``H_c(u)`` for one solution vector ``u``.

    Attributes:
        u: tuple of entries in ``{-1, 0, +1}``; length equals the register
            size.  Non-zero entries form the *support* of the term.
    """

    u: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.u:
            raise HamiltonianError("u must be non-empty")
        for entry in self.u:
            if entry not in (-1, 0, 1):
                raise HamiltonianError(f"u entries must be in {{-1, 0, 1}}, got {entry!r}")
        if all(entry == 0 for entry in self.u):
            raise HamiltonianError("u must have at least one non-zero entry")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self.u)

    @cached_property
    def support(self) -> tuple[int, ...]:
        """Indices of the qubits the term acts on (non-zero entries of u)."""
        return tuple(i for i, entry in enumerate(self.u) if entry != 0)

    @property
    def num_nonzero(self) -> int:
        return len(self.support)

    @cached_property
    def v_bits(self) -> tuple[int, ...]:
        """The target bit pattern ``v_i = (1 + u_i)/2`` on the support (Eq. 12)."""
        return tuple((1 + self.u[q]) // 2 for q in self.support)

    @cached_property
    def v_bar_bits(self) -> tuple[int, ...]:
        """The complementary pattern ``1 - v`` on the support."""
        return tuple(1 - bit for bit in self.v_bits)

    # Masks over the full register used by the fast evolution path.
    @cached_property
    def _support_mask(self) -> int:
        mask = 0
        for qubit in self.support:
            mask |= 1 << qubit
        return mask

    @cached_property
    def _v_pattern(self) -> int:
        pattern = 0
        for qubit, bit in zip(self.support, self.v_bits):
            pattern |= bit << qubit
        return pattern

    # ------------------------------------------------------------------
    # Operator representations
    # ------------------------------------------------------------------

    def to_matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix of ``H_c(u)`` (little-endian)."""
        matrix = np.array([[1.0]], dtype=complex)
        for entry in reversed(self.u):
            matrix = np.kron(matrix, _SIGMA[entry])
        return matrix + matrix.conj().T

    def to_pauli_sum(self) -> PauliSum:
        """Expand ``H_c(u)`` into Pauli strings.

        Uses ``sigma^{+1} = (X - iY)/2`` and ``sigma^{-1} = (X + iY)/2``; the
        expansion has ``2^{|support|}`` terms, so it is intended for
        verification on small supports (commutation checks with the
        constraint operator).
        """
        expansions: list[list[PauliString]] = []
        n = self.num_qubits
        for qubit, entry in enumerate(self.u):
            if entry == 0:
                continue
            x_term = PauliString(
                "".join("X" if i == qubit else "I" for i in range(n)), 0.5
            )
            y_sign = -1j if entry == +1 else 1j
            y_term = PauliString(
                "".join("Y" if i == qubit else "I" for i in range(n)), 0.5 * y_sign
            )
            expansions.append([x_term, y_term])
        # Multiply out the tensor factors.
        products: list[PauliString] = [PauliString("I" * n, 1.0)]
        for factor in expansions:
            products = [p * f for p in products for f in factor]
        total = PauliSum(products, num_qubits=n)
        # Add the Hermitian conjugate: conjugating each coefficient works
        # because the labels themselves are Hermitian.
        conjugate = PauliSum(
            [PauliString(t.label, np.conj(t.coefficient)) for t in total.terms],
            num_qubits=n,
        )
        return (total + conjugate).simplify()

    def eigenstate(self, sign: int) -> np.ndarray:
        """The dense eigenstate ``|x+->`` (sign=+1) or ``|x-->`` (sign=-1).

        Non-support qubits are placed in ``|0>``.  Mainly used by tests.
        """
        if sign not in (+1, -1):
            raise HamiltonianError("sign must be +1 or -1")
        dim = 2**self.num_qubits
        state = np.zeros(dim, dtype=complex)
        state[self._v_pattern] = 1 / math.sqrt(2)
        state[self._v_pattern ^ self._support_mask] = sign / math.sqrt(2)
        return state

    # ------------------------------------------------------------------
    # Fast exact evolution (simulation path)
    # ------------------------------------------------------------------

    def apply_evolution(self, state: np.ndarray, beta) -> np.ndarray:
        """Apply ``e^{-i beta H_c(u)}`` to a dense statevector.

        The unitary acts as the 2x2 rotation
        ``[[cos beta, -i sin beta], [-i sin beta, cos beta]]`` on every pair
        of basis states whose support bits read ``v`` / ``v̄`` and whose
        remaining bits agree; it is the identity elsewhere.

        ``state`` may carry leading batch axes (shape ``(..., 2^n)``) with a
        matching array of angles — see :func:`_rotate_pairs`.
        """
        num_qubits = int(round(math.log2(state.shape[-1])))
        if num_qubits != self.num_qubits:
            raise HamiltonianError("statevector size does not match the term register")
        a_indices, b_indices = dense_term_pairing(self)
        return _rotate_pairs(state, beta, a_indices, b_indices)

    # ------------------------------------------------------------------
    # Subspace-restricted evolution (feasible-subspace backend)
    # ------------------------------------------------------------------

    def subspace_pairing(self, subspace_map) -> tuple[np.ndarray, np.ndarray]:
        """The term's action as coordinate pairs of a feasible subspace.

        Returns ``(a, b)`` index arrays into the subspace coordinates of a
        :class:`~repro.core.subspace.SubspaceMap`: coordinate ``a[k]`` reads
        pattern ``v`` on the support, ``b[k]`` is the partner obtained by
        flipping the support bits to ``v̄``.  ``e^{-i beta H_c(u)}`` is the
        2x2 rotation on each such pair and the identity on every unpaired
        coordinate.  Since ``u`` lies in the constraint nullspace, the
        partner of a feasible state is always feasible; a missing partner —
        on either the ``v`` or the ``v̄`` side — means the term does not
        belong to this subspace's constraint system and raises.

        Fully vectorised: all partner rows are built in one scatter and
        resolved to coordinates through the map's packed-key rank lookup
        (:meth:`SubspaceMap.coordinates_of_rows
        <repro.core.subspace.SubspaceMap.coordinates_of_rows>`), replacing
        the per-row dict-lookup loop kept as
        :func:`subspace_pairing_loop` for the throughput benchmark.
        """
        basis = subspace_map.basis
        support = np.array(self.support, dtype=np.intp)
        v_bits = np.array(self.v_bits, dtype=np.uint8)
        support_bits = basis[:, support]
        in_v = np.all(support_bits == v_bits, axis=1)
        in_v_bar = np.all(support_bits == 1 - v_bits, axis=1)
        a_coordinates = np.nonzero(in_v)[0]
        partners = basis[a_coordinates].copy()
        partners[:, support] = 1 - v_bits
        try:
            b_coordinates = subspace_map.coordinates_of_rows(partners)
        except Exception as error:
            raise HamiltonianError(
                "the hop partner of a feasible state is missing from the "
                "subspace map; the term's u vector is not a nullspace "
                "solution of the map's constraint system"
            ) from error
        # Flipping the support bits is an involution, so the v-side partners
        # enumerate distinct v̄-side states; any surplus v̄-side state has an
        # infeasible partner and would be hopped out of the subspace.
        if int(np.count_nonzero(in_v_bar)) != len(a_coordinates):
            raise HamiltonianError(
                "a feasible state matching the v̄ pattern has no feasible hop "
                "partner; the term's u vector is not a nullspace solution of "
                "the map's constraint system"
            )
        return a_coordinates, b_coordinates

    def apply_evolution_subspace(
        self, state: np.ndarray, beta, subspace_map
    ) -> np.ndarray:
        """Apply ``e^{-i beta H_c(u)}`` to a feasible-subspace statevector.

        Equivalent to :meth:`apply_evolution` on the lifted dense state, but
        in ``O(|F|)`` instead of ``O(2^n)``.
        """
        a_coordinates, b_coordinates = self.subspace_pairing(subspace_map)
        return _rotate_pairs(state, beta, a_coordinates, b_coordinates)

    # ------------------------------------------------------------------
    # Lemma 2 decomposition (deployment path)
    # ------------------------------------------------------------------

    def converting_circuit(self, register_size: int | None = None) -> QuantumCircuit:
        """The converting gate ``G`` of Algorithm 1 on the full register.

        ``G`` maps ``|x+>`` to ``|0 1...1>`` and ``|x->`` to ``|1 1...1>``
        (up to a sign that cancels between ``G`` and ``G†``), using one CX
        per support qubit, conditional X fix-ups, and a final H.
        """
        register_size = self.num_qubits if register_size is None else register_size
        circuit = QuantumCircuit(register_size, name="G")
        qubits = list(self.support)
        v = list(self.v_bits)
        # Turn the last m-1 support qubits into |1> (lines 5-10 of Alg. 1).
        for i in range(len(qubits) - 1, 0, -1):
            circuit.cx(qubits[i - 1], qubits[i])
            if v[i] == v[i - 1]:
                circuit.x(qubits[i])
        # Map (|0> ± |1>)/sqrt(2) on the first support qubit to |0> / |1>.
        circuit.h(qubits[0])
        return circuit

    def decomposed_circuit(
        self, beta: ParameterValue, register_size: int | None = None
    ) -> QuantumCircuit:
        """The Lemma-2 circuit for ``e^{-i beta H_c(u)}``.

        Emits ``G``, then ``X_1 P(-beta) X_1`` and ``P(beta)`` (multi-controlled
        phases over the support), then ``G†``.  ``beta`` may be symbolic.
        """
        register_size = self.num_qubits if register_size is None else register_size
        circuit = QuantumCircuit(register_size, name=f"exp(-i b Hc{self.support})")
        qubits = list(self.support)
        first = qubits[0]
        g_circuit = self.converting_circuit(register_size)
        circuit.compose(g_circuit, qubits=range(register_size))
        neg_beta = -beta if not isinstance(beta, (int, float)) else -float(beta)
        if len(qubits) == 1:
            circuit.x(first)
            circuit.p(neg_beta, first)
            circuit.x(first)
            circuit.p(beta, first)
        else:
            controls, target = qubits[:-1], qubits[-1]
            circuit.x(first)
            circuit.mcp(neg_beta, controls, target)
            circuit.x(first)
            circuit.mcp(beta, controls, target)
        circuit.compose(g_circuit.inverse(), qubits=range(register_size))
        return circuit


def dense_term_pairing(term: CommuteHamiltonianTerm) -> tuple[np.ndarray, np.ndarray]:
    """The dense ``(a, b)`` hop index pair of one commute term.

    ``a`` enumerates the basis indices whose support bits read ``v`` and
    ``b = a XOR support_mask`` their ``v̄`` partners.  The single source of
    the dense pairing convention: :meth:`CommuteHamiltonianTerm
    .apply_evolution` rebuilds it per call, while a compiled
    :class:`~repro.hamiltonian.compiled.EvolutionProgram` resolves it once
    per solver prepare.
    """
    indices = np.arange(2**term.num_qubits)
    in_v = (indices & term._support_mask) == term._v_pattern
    a_indices = indices[in_v]
    b_indices = a_indices ^ term._support_mask
    return a_indices, b_indices


def subspace_pairing_loop(
    term: CommuteHamiltonianTerm, subspace_map
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row reference implementation of :meth:`~CommuteHamiltonianTerm.subspace_pairing`.

    The pre-vectorisation pairing: a Python loop doing one ``coordinate_of``
    dict lookup per ``v``-side row.  Kept callable so the iteration-throughput
    benchmark can measure the recompute-every-call path it replaced, and so
    the equivalence tests can pin the vectorised pairing against it
    element for element.
    """
    basis = subspace_map.basis
    support = np.array(term.support, dtype=int)
    v_bits = np.array(term.v_bits, dtype=np.uint8)
    in_v = np.all(basis[:, support] == v_bits, axis=1)
    in_v_bar = np.all(basis[:, support] == 1 - v_bits, axis=1)
    a_coordinates = np.nonzero(in_v)[0]
    b_coordinates = np.empty(len(a_coordinates), dtype=int)
    for k, coordinate in enumerate(a_coordinates):
        partner = basis[coordinate].copy()
        partner[support] = 1 - v_bits
        try:
            b_coordinates[k] = subspace_map.coordinate_of(partner)
        except Exception as error:
            raise HamiltonianError(
                "the hop partner of a feasible state is missing from the "
                "subspace map; the term's u vector is not a nullspace "
                "solution of the map's constraint system"
            ) from error
    if int(np.count_nonzero(in_v_bar)) != len(a_coordinates):
        raise HamiltonianError(
            "a feasible state matching the v̄ pattern has no feasible hop "
            "partner; the term's u vector is not a nullspace solution of "
            "the map's constraint system"
        )
    return a_coordinates, b_coordinates


def _rotate_pairs(
    state: np.ndarray, beta, a_coordinates: np.ndarray, b_coordinates: np.ndarray
) -> np.ndarray:
    """The 2x2 rotation ``[[cos, -i sin], [-i sin, cos]]`` on index pairs.

    Indexing runs over the last axis, so ``state`` may be a single vector
    ``(dim,)`` or a batch ``(k, dim)`` of states.  In the batched case
    ``beta`` may itself be an array of ``k`` angles (one rotation angle per
    batch row), which is what vectorises a parameter sweep: every batch row
    sees exactly the elementwise operations the sequential path applies, so
    the results are bit-identical to evolving each row on its own.
    """
    return rotate_pairs_cs(state, np.cos(beta), np.sin(beta), a_coordinates, b_coordinates)


def rotate_pairs_cs(
    state: np.ndarray,
    cos_b,
    sin_b,
    a_coordinates: np.ndarray,
    b_coordinates: np.ndarray,
) -> np.ndarray:
    """The pair rotation of :func:`_rotate_pairs` with precomputed cos/sin.

    A compiled :class:`~repro.hamiltonian.compiled.EvolutionProgram`
    evaluates the layer angle's cosine and sine once and reuses them across
    every term of the layer; the arithmetic applied to the state is
    unchanged, so results stay bit-identical to the per-term path.
    """
    if np.ndim(cos_b):
        cos_b = cos_b[..., np.newaxis]
        sin_b = sin_b[..., np.newaxis]
    new_state = state.copy()
    a_amplitudes = state[..., a_coordinates]
    b_amplitudes = state[..., b_coordinates]
    new_state[..., a_coordinates] = cos_b * a_amplitudes - 1j * sin_b * b_amplitudes
    new_state[..., b_coordinates] = cos_b * b_amplitudes - 1j * sin_b * a_amplitudes
    return new_state


# ---------------------------------------------------------------------------
# The full driver
# ---------------------------------------------------------------------------


class CommuteDriver:
    """The serialized commute driver ``prod_u e^{-i beta H_c(u)}``.

    Built from the set Delta of solution vectors of ``C u = 0`` (see
    :mod:`repro.core.nullspace`), it provides the two execution paths used by
    the Choco-Q solver: exact statevector application, and the decomposed
    circuit for depth accounting and deployment.
    """

    def __init__(self, terms: Sequence[CommuteHamiltonianTerm]):
        if not terms:
            raise HamiltonianError("a commute driver needs at least one term")
        sizes = {term.num_qubits for term in terms}
        if len(sizes) != 1:
            raise HamiltonianError("all terms must act on the same register size")
        self.terms: tuple[CommuteHamiltonianTerm, ...] = tuple(terms)
        self.num_qubits = sizes.pop()

    @classmethod
    def from_solutions(cls, solutions: Iterable[Sequence[int]]) -> "CommuteDriver":
        """Build the driver from raw ``u`` vectors."""
        terms = [CommuteHamiltonianTerm(tuple(int(x) for x in u)) for u in solutions]
        return cls(terms)

    # ------------------------------------------------------------------

    @property
    def total_nonzeros(self) -> int:
        """Total number of non-zero entries across all solution vectors.

        Section IV-C observes that the decomposed circuit depth is
        proportional to this quantity, which drives the variable-elimination
        heuristic.
        """
        return sum(term.num_nonzero for term in self.terms)

    def hamiltonian_matrix(self) -> np.ndarray:
        """Dense matrix of the *summed* driver ``H_d = sum_u H_c(u)``."""
        dim = 2**self.num_qubits
        matrix = np.zeros((dim, dim), dtype=complex)
        for term in self.terms:
            matrix += term.to_matrix()
        return matrix

    def to_pauli_sum(self) -> PauliSum:
        total = PauliSum([], num_qubits=self.num_qubits)
        for term in self.terms:
            total = total + term.to_pauli_sum()
        return total.simplify()

    # ------------------------------------------------------------------

    def apply_serialized(self, state: np.ndarray, beta) -> np.ndarray:
        """Apply the serialized driver (Lemma 1) to a dense state.

        Accepts a batch of states ``(k, 2^n)`` with per-row angles ``(k,)``
        exactly like :meth:`CommuteHamiltonianTerm.apply_evolution`.
        """
        for term in self.terms:
            state = term.apply_evolution(state, beta)
        return state

    def restrict(self, subspace_map) -> "RestrictedCommuteDriver":
        """Restrict the driver to a feasible subspace (pairings precomputed)."""
        return RestrictedCommuteDriver(self, subspace_map)

    def serialized_circuit(self, beta: ParameterValue) -> QuantumCircuit:
        """The decomposed circuit of the whole serialized driver."""
        circuit = QuantumCircuit(self.num_qubits, name="commute_driver")
        for term in self.terms:
            block = term.decomposed_circuit(beta, register_size=self.num_qubits)
            circuit.compose(block, qubits=range(self.num_qubits))
        return circuit

    # ------------------------------------------------------------------

    def commutes_with_constraint_subspace(self, subspace_map) -> bool:
        """Check every term's hops stay inside the given feasible subspace."""
        try:
            for term in self.terms:
                term.subspace_pairing(subspace_map)
        except HamiltonianError:
            return False
        return True

    def commutes_with_constraint(self, coefficients: Sequence[float], tolerance: float = 1e-9) -> bool:
        """Check ``[H_c(u), C_hat] = 0`` for every term against one constraint row.

        Uses the dense matrices (exact), so intended for verification on small
        registers.
        """
        from repro.hamiltonian.constraint_operator import constraint_operator_diagonal

        diagonal = constraint_operator_diagonal(coefficients, self.num_qubits)
        c_matrix = np.diag(diagonal.astype(complex))
        for term in self.terms:
            h_matrix = term.to_matrix()
            commutator = h_matrix @ c_matrix - c_matrix @ h_matrix
            if np.max(np.abs(commutator)) > tolerance:
                return False
        return True


# ---------------------------------------------------------------------------
# The subspace-restricted driver
# ---------------------------------------------------------------------------


class RestrictedCommuteDriver:
    """A :class:`CommuteDriver` compiled onto a feasible subspace.

    Every term's pairing permutation over the subspace coordinates is
    precomputed at construction, so each COBYLA iteration costs
    ``O(num_terms * |F|)`` vector work — independent of the Hilbert-space
    dimension ``2^n``.  This is the engine of the ``subspace`` simulation
    backend (see :mod:`repro.solvers.variational`).
    """

    def __init__(self, driver: CommuteDriver, subspace_map) -> None:
        if driver.num_qubits != subspace_map.num_variables:
            raise HamiltonianError(
                "the driver register size does not match the subspace map"
            )
        self.driver = driver
        self.subspace_map = subspace_map
        self.pairings: tuple[tuple[np.ndarray, np.ndarray], ...] = tuple(
            term.subspace_pairing(subspace_map) for term in driver.terms
        )

    @property
    def size(self) -> int:
        """The subspace dimension ``|F|``."""
        return self.subspace_map.size

    @property
    def num_terms(self) -> int:
        return len(self.driver.terms)

    def apply_serialized(self, state: np.ndarray, beta) -> np.ndarray:
        """Apply ``prod_u e^{-i beta H_c(u)}`` to a subspace statevector.

        ``state`` is one subspace vector ``(|F|,)`` or a batch ``(k, |F|)``;
        in the batched case ``beta`` may be an array of ``k`` per-row angles
        (the vectorised parameter-sweep path).
        """
        if state.shape[-1] != self.size:
            raise HamiltonianError("subspace statevector length must equal |F|")
        for a_coordinates, b_coordinates in self.pairings:
            state = _rotate_pairs(state, beta, a_coordinates, b_coordinates)
        return state

    def hamiltonian_matrix(self) -> np.ndarray:
        """The ``|F| x |F|`` block of ``H_d = sum_u H_c(u)`` on the subspace.

        Exact because ``H_d`` is block-diagonal over the feasible subspace
        and its complement; used by the monolithic (non-serialized)
        verification path.
        """
        matrix = np.zeros((self.size, self.size), dtype=complex)
        for a_coordinates, b_coordinates in self.pairings:
            matrix[a_coordinates, b_coordinates] += 1.0
            matrix[b_coordinates, a_coordinates] += 1.0
        return matrix
