"""Compile-once evolution programs for the commute-Hamiltonian ansatz.

The paper's headline claim is *latency*: the commute ansatz wins because each
optimizer iteration is cheap.  The structure of one iteration never changes
during a run — the cost diagonal, the layer count and every term's pair of
hop index arrays are fixed once the driver and the state layout are chosen —
yet the naive evolution path re-derives that structure on every cost
evaluation (``np.arange(2^n)`` plus two boolean masks per dense term, or the
full subspace pairing per restricted term).  An :class:`EvolutionProgram`
factors the split explicitly:

* **compile** (once per solver prepare): resolve each driver term to
  immutable ``(a, b)`` pair-index arrays — dense from the support mask,
  subspace from the vectorised pairing of a
  :class:`~repro.core.subspace.SubspaceMap` — and pin the contiguous cost
  diagonal;
* **execute** (per cost evaluation): a flat sequence of
  :func:`apply_diagonal_phase` and :func:`rotate_pairs_cs
  <repro.hamiltonian.commute.rotate_pairs_cs>` calls over the cached
  indices, with one cosine/sine evaluation per layer shared by every term.

Execution is *bit-identical* to the uncompiled path (asserted in
``tests/test_compiled_evolution.py``): both run exactly the same elementwise
NumPy operations in the same order — compilation only removes the
per-iteration index recomputation, never changes an arithmetic step.
``benchmarks/bench_iteration_throughput.py`` measures the resulting
per-iteration speedup and records it in ``BENCH_iteration_throughput.json``.

The broadcastable state primitives (:func:`prepare_ansatz_state`,
:func:`apply_diagonal_phase`) live here — the lowest layer that needs them —
and are re-exported by :mod:`repro.solvers.variational` for the solver
front-ends; both accept a single state ``(dim,)`` or a batch ``(k, dim)``
with per-row angles, so one program serves the optimizer loop and the
vectorised parameter-sweep path alike.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import HamiltonianError
from repro.hamiltonian.commute import (  # noqa: F401  (dense_term_pairing re-exported: it is the compiled layer's dense compile step)
    CommuteDriver,
    CommuteHamiltonianTerm,
    RestrictedCommuteDriver,
    dense_term_pairing,
    rotate_pairs_cs,
)


def prepare_ansatz_state(
    initial_state: np.ndarray, parameters: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Normalise an evolve closure's inputs for the scalar or batched path.

    Returns ``(parameters, state)`` where ``parameters`` is a float array
    and ``state`` is a writable copy of ``initial_state`` — broadcast to
    one row per parameter vector when ``parameters`` is a ``(k, 2L)``
    batch.  Callers slice per-layer angles as ``parameters[..., index]``
    afterwards, so the same loop body serves both shapes.
    """
    parameters = np.asarray(parameters, dtype=float)
    if parameters.ndim == 1:
        return parameters, initial_state.copy()
    return parameters, np.broadcast_to(
        initial_state, parameters.shape[:-1] + initial_state.shape
    ).copy()


def apply_diagonal_phase(state: np.ndarray, gamma, diagonal: np.ndarray) -> np.ndarray:
    """Apply ``e^{-i gamma H}`` for a diagonal ``H`` given as a vector.

    The one phase-separation primitive shared by the dense and subspace
    layouts: ``diagonal`` has the backend's dimension, ``state`` is one
    vector ``(dim,)`` or a batch ``(k, dim)``, and ``gamma`` is a scalar or
    ``k`` per-row angles.  Each batch row sees exactly the elementwise
    multiply the sequential path performs, so batching is bit-identical.
    """
    gamma = np.asarray(gamma)
    if gamma.ndim:
        gamma = gamma[..., np.newaxis]
    return state * np.exp(-1j * gamma * diagonal)


class EvolutionProgram:
    """A layered (phase, hops) ansatz compiled to cached index arrays.

    One program represents ``num_layers`` repetitions of

        ``e^{-i gamma_l H_o}  ·  prod_t  e^{-i (angle_scale * beta_l) H_t}``

    where ``H_o`` is the diagonal ``cost_diagonal`` and each hop term ``t``
    is a frozen ``(a, b)`` pair-index array over the state layout (dense
    basis indices or subspace coordinates — the program is agnostic).
    ``angle_scale`` absorbs constant driver prefactors such as the cyclic
    ring hop's ``XX + YY = 2 H_c(u)``.

    Build it once per solver prepare with :meth:`for_driver` /
    :meth:`for_restricted_driver`, then call :meth:`execute` (or the
    :meth:`bind`-ed closure) per cost evaluation.
    """

    def __init__(
        self,
        num_layers: int,
        cost_diagonal: np.ndarray,
        pairings: Sequence[tuple[np.ndarray, np.ndarray]],
        angle_scale: float = 1.0,
    ) -> None:
        if num_layers < 1:
            raise HamiltonianError("an evolution program needs at least one layer")
        cost_diagonal = np.ascontiguousarray(cost_diagonal)
        if cost_diagonal.ndim != 1:
            raise HamiltonianError("cost_diagonal must be a 1-D vector")
        dimension = cost_diagonal.shape[0]
        frozen: list[tuple[np.ndarray, np.ndarray]] = []
        for a_indices, b_indices in pairings:
            a_indices = np.ascontiguousarray(a_indices)
            b_indices = np.ascontiguousarray(b_indices)
            if a_indices.shape != b_indices.shape or a_indices.ndim != 1:
                raise HamiltonianError("pair index arrays must be 1-D and equal-length")
            if a_indices.size and (
                int(max(a_indices.max(), b_indices.max())) >= dimension
                or int(min(a_indices.min(), b_indices.min())) < 0
            ):
                raise HamiltonianError("pair indices exceed the program dimension")
            frozen.append((a_indices, b_indices))
        self.num_layers = int(num_layers)
        self.cost_diagonal = cost_diagonal
        self.pairings: tuple[tuple[np.ndarray, np.ndarray], ...] = tuple(frozen)
        self.angle_scale = float(angle_scale)

    # ------------------------------------------------------------------
    # Compilation entry points
    # ------------------------------------------------------------------

    @classmethod
    def for_driver(
        cls,
        driver: CommuteDriver,
        cost_diagonal: np.ndarray,
        num_layers: int,
        angle_scale: float = 1.0,
    ) -> "EvolutionProgram":
        """Compile a dense-layout program: one support-mask pairing per term.

        The resolved index arrays stay resident for the program's lifetime —
        per term that is two int64 arrays of length ``2^(n - |support|)``,
        trading the per-call ``arange``/mask rebuild for memory that is
        negligible at the dense simulator's practical scales (~16 qubits)
        but grows toward its 24-qubit cap; past that point the subspace
        backend is the intended path anyway.
        """
        return cls(
            num_layers,
            cost_diagonal,
            [dense_term_pairing(term) for term in driver.terms],
            angle_scale=angle_scale,
        )

    @classmethod
    def for_restricted_driver(
        cls,
        restricted: RestrictedCommuteDriver,
        cost_diagonal: np.ndarray,
        num_layers: int,
        angle_scale: float = 1.0,
    ) -> "EvolutionProgram":
        """Compile a subspace-layout program from precomputed pairings.

        The :class:`~repro.hamiltonian.commute.RestrictedCommuteDriver`
        already resolved every term's pairing at construction (exactly once
        per (term, map) — asserted by the caching tests), so compilation
        here is free.
        """
        if len(cost_diagonal) != restricted.size:
            raise HamiltonianError("cost diagonal length must equal |F|")
        return cls(
            num_layers, cost_diagonal, restricted.pairings, angle_scale=angle_scale
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @property
    def dimension(self) -> int:
        """Length of the state vectors the program evolves."""
        return self.cost_diagonal.shape[0]

    @property
    def num_terms(self) -> int:
        return len(self.pairings)

    def execute(self, initial_state: np.ndarray, parameters: np.ndarray) -> np.ndarray:
        """Evolve ``initial_state`` under the compiled layer sequence.

        ``parameters`` is one vector ``(2L,)`` or a batch ``(k, 2L)`` with
        the per-layer ``(gamma, beta)`` interleaving every solver uses; the
        batched case broadcasts to ``(k, dim)`` states bit-identically to
        evolving each row alone.
        """
        parameters, state = prepare_ansatz_state(initial_state, parameters)
        for layer in range(self.num_layers):
            gamma = parameters[..., 2 * layer]
            beta = parameters[..., 2 * layer + 1]
            state = apply_diagonal_phase(state, gamma, self.cost_diagonal)
            # The exact angle expression of the uncompiled paths: Choco-Q
            # passes beta through untouched, the cyclic driver passes
            # 2.0 * beta — the identity-scale branch keeps the former free of
            # even a multiply-by-one rounding step.
            angle = beta if self.angle_scale == 1.0 else self.angle_scale * beta
            cos_b = np.cos(angle)
            sin_b = np.sin(angle)
            for a_indices, b_indices in self.pairings:
                state = rotate_pairs_cs(state, cos_b, sin_b, a_indices, b_indices)
        return state

    def bind(self, initial_state: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
        """The ``evolve(parameters)`` closure an :class:`AnsatzSpec` carries."""

        def evolve(parameters: np.ndarray) -> np.ndarray:
            return self.execute(initial_state, parameters)

        return evolve

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EvolutionProgram(num_layers={self.num_layers}, "
            f"dimension={self.dimension}, num_terms={self.num_terms})"
        )
