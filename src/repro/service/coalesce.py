"""Request coalescing: compatible pending work collapses into shared sweeps.

Two coalescing layers back the solve service:

* **Sweep coalescing** — an expectation-sweep request names an ansatz
  (solver + benchmark + config) and carries a batch of parameter vectors.
  All pending sweeps on the same ansatz collapse into *one*
  :func:`~repro.solvers.variational.batched_expectations` call over the
  stacked parameter sets: the ansatz is compiled once (and cached across
  batches), the ``(k_total, |F|)`` evolution runs as a single broadcast
  pass, and the scores fan back out per request — so N clients probing the
  same landscape with different initial parameters cost one sweep.
* **Solve grouping** — full-solve specs that are identical in every
  content-hashed field *except the seed* share one compatibility key
  (:func:`solve_group_key`).  The service dispatches a whole pending group
  as a single worker task (:func:`execute_group`), so the per-process
  benchmark/optimum memoisation is shared and the executor round-trips
  amortise; each spec still executes through
  :func:`~repro.run.plan.execute_spec`, keeping every record bit-identical
  to an un-coalesced run.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ServiceError
from repro.run.plan import RunRecord, RunSpec, execute_spec
from repro.run.problems import resolve_benchmark
from repro.run.registry import make_solver
from repro.serialization import json_sanitize
from repro.solvers.variational import AnsatzSpec, batched_expectations

__all__ = [
    "SweepRequest",
    "SpecCompiler",
    "execute_group",
    "execute_sweep",
    "solve_group_key",
]


#: RunSpec fields that define solve-group compatibility: everything the
#: content hash covers except the seed (label never identifies work).
_GROUP_FIELDS = (
    "solver",
    "benchmark",
    "case_index",
    "config",
    "shots",
    "optimizer",
    "max_iterations",
    "multistart",
    "noise",
)


def solve_group_key(spec: RunSpec) -> str:
    """Compatibility key of a solve request: its spec minus the seed.

    Specs sharing a key differ only in sampling seed, so they resolve the
    same benchmark, build the same solver, and can ride one worker dispatch.
    """
    payload = {key: value for key, value in spec.to_dict().items() if key in _GROUP_FIELDS}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def execute_group(
    specs: Sequence[RunSpec],
    execute_fn: Callable[[RunSpec], RunRecord] | None = None,
) -> list[tuple[RunSpec, RunRecord | None, BaseException | None]]:
    """Execute a compatible group as one worker task.

    Per-spec failures are isolated: every spec gets a ``(spec, record,
    error)`` triple with exactly one of ``record``/``error`` set, so one
    poisoned seed cannot take down its whole group.
    """
    execute = execute_fn if execute_fn is not None else execute_spec
    outcomes: list[tuple[RunSpec, RunRecord | None, BaseException | None]] = []
    for spec in specs:
        try:
            outcomes.append((spec, execute(spec), None))
        except Exception as error:
            outcomes.append((spec, None, error))
    return outcomes


# ---------------------------------------------------------------------------
# Expectation sweeps
# ---------------------------------------------------------------------------


@dataclass
class SweepRequest:
    """One expectation-sweep request: an ansatz plus parameter vectors.

    ``parameter_sets`` is a ``(k, num_parameters)`` batch (a single vector is
    promoted to ``k = 1``); the response is the length-``k`` list of exact
    cost expectations, bit-identical to evaluating each vector alone.
    """

    solver: str
    benchmark: str
    parameter_sets: np.ndarray
    config: dict | None = None
    case_index: int = 0
    _key: str = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.parameter_sets = np.atleast_2d(np.asarray(self.parameter_sets, dtype=float))
        if self.parameter_sets.ndim != 2:
            raise ServiceError("parameter_sets must be a (k, num_parameters) array")
        payload = {
            "solver": str(self.solver).lower(),
            "benchmark": str(self.benchmark),
            "case_index": int(self.case_index),
            "config": json_sanitize(dict(self.config)) if self.config else None,
        }
        self._key = json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def coalesce_key(self) -> str:
        """Requests sharing this key evaluate the same compiled ansatz."""
        return self._key

    def to_dict(self) -> dict:
        return {
            "solver": self.solver,
            "benchmark": self.benchmark,
            "case_index": int(self.case_index),
            "config": json_sanitize(dict(self.config)) if self.config else None,
            "parameter_sets": self.parameter_sets.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepRequest":
        return cls(
            solver=data["solver"],
            benchmark=data["benchmark"],
            parameter_sets=np.asarray(data["parameter_sets"], dtype=float),
            config=data.get("config"),
            case_index=int(data.get("case_index", 0)),
        )


class SpecCompiler:
    """Builds and LRU-caches the compiled :class:`AnsatzSpec` per sweep key.

    Compiling an ansatz (subspace map, pair indices, cost diagonal) is the
    expensive part of a sweep; caching it means a hot key pays compilation
    once across every batch the service coalesces.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ServiceError("max_entries must be positive")
        self.max_entries = max_entries
        self._cache: "OrderedDict[str, AnsatzSpec]" = OrderedDict()
        self.compilations = 0

    def spec_for(self, request: SweepRequest) -> AnsatzSpec:
        key = request.coalesce_key()
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached
        spec = self._compile(request)
        self.compilations += 1
        self._cache[key] = spec
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return spec

    def _compile(self, request: SweepRequest) -> AnsatzSpec:
        problem = resolve_benchmark(request.benchmark, request.case_index)
        solver = make_solver(request.solver, dict(request.config) if request.config else None)
        build_spec = getattr(solver, "build_spec", None)
        if build_spec is None:
            raise ServiceError(
                f"solver {request.solver!r} does not expose build_spec(); "
                "expectation sweeps need a compilable ansatz "
                "(available on choco-q and cyclic-qaoa)"
            )
        built = build_spec(problem)
        # ChocoQSolver.build_spec returns (spec, driver); cyclic returns the
        # spec alone.  Either way the first AnsatzSpec is the compiled ansatz.
        spec = built[0] if isinstance(built, tuple) else built
        if not isinstance(spec, AnsatzSpec):
            raise ServiceError(
                f"solver {request.solver!r} build_spec() returned "
                f"{type(spec).__name__}, expected an AnsatzSpec"
            )
        return spec


def execute_sweep(
    compiler: SpecCompiler, requests: Sequence[SweepRequest]
) -> list[list[float]]:
    """Evaluate a coalesced batch of same-key sweeps in one broadcast pass.

    All requests must share one :meth:`SweepRequest.coalesce_key`.  Their
    parameter sets are stacked into a single
    :func:`~repro.solvers.variational.batched_expectations` call; the result
    is split back per request, each slice bit-identical to evaluating that
    request alone (batched evolution rows match sequential evolution bit for
    bit — pinned by the PR-2 test suite).
    """
    if not requests:
        return []
    keys = {request.coalesce_key() for request in requests}
    if len(keys) != 1:
        raise ServiceError("execute_sweep requires requests sharing one coalesce key")
    num_parameters = {request.parameter_sets.shape[1] for request in requests}
    if len(num_parameters) != 1:
        raise ServiceError("coalesced sweeps must agree on num_parameters")
    spec = compiler.spec_for(requests[0])
    stacked = np.vstack([request.parameter_sets for request in requests])
    scores = batched_expectations(spec, stacked)
    split: list[list[float]] = []
    offset = 0
    for request in requests:
        count = request.parameter_sets.shape[0]
        split.append([float(score) for score in scores[offset : offset + count]])
        offset += count
    return split
