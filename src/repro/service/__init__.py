"""Async solve service and the zero-coordination run_plan farm.

The "millions of users" layer over the experiment API (ROADMAP item 1):

* :class:`~repro.service.store.ResultStore` — the content-hash JSONL cache
  as a shared result store;
* :class:`~repro.service.server.SolveService` — asyncio front end: store
  answers, in-flight dedup, solve grouping and
  ``batched_expectations``-coalesced sweeps over a bounded worker pool
  (:func:`~repro.service.server.serve_tcp` exposes it over TCP,
  ``python -m repro.service`` runs the daemon);
* :mod:`~repro.service.client` — in-process and TCP clients;
* :mod:`~repro.service.shard` — shard one plan across machines by content
  hash and merge the shard files idempotently
  (``python -m repro.service.shard``).
"""

from repro.service.client import ServiceClient, TCPServiceClient
from repro.service.coalesce import SpecCompiler, SweepRequest, solve_group_key
from repro.service.server import ServiceStats, SolveService, serve_tcp
from repro.service.store import ResultStore

#: Farm-layer exports resolved lazily (PEP 562): importing them here eagerly
#: would put ``repro.service.shard`` in ``sys.modules`` before ``python -m
#: repro.service.shard`` executes it as ``__main__``, tripping runpy's
#: double-import RuntimeWarning on the documented CLI.
_SHARD_EXPORTS = ("merge_shards", "run_shard", "shard_path")


def __getattr__(name: str):
    if name in _SHARD_EXPORTS:
        from repro.service import shard

        return getattr(shard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ResultStore",
    "ServiceClient",
    "ServiceStats",
    "SolveService",
    "SpecCompiler",
    "SweepRequest",
    "TCPServiceClient",
    "merge_shards",
    "run_shard",
    "serve_tcp",
    "shard_path",
    "solve_group_key",
]
