"""Content-addressed result store shared by the service and the farm.

A :class:`ResultStore` is the in-memory view of one JSONL record file: it
loads every completed record at construction, answers lookups by spec
content hash, and appends new records through the atomic
:class:`~repro.run.jsonl.JsonlSink` — so a service instance, a batch-runner
backfill worker, and any number of farm shards can all share one file (or a
merged copy of many shard files) without coordination.

With ``path=None`` the store is purely in-memory: useful for tests and for
throughput benchmarking without filesystem noise.
"""

from __future__ import annotations

import os
import threading

from repro.run.jsonl import JsonlSink, load_jsonl_records
from repro.run.plan import RunRecord

__all__ = ["ResultStore"]


class ResultStore:
    """JSONL-backed, content-hash-keyed store of completed run records."""

    def __init__(self, path: "str | os.PathLike | None" = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._records: dict[str, dict] = (
            load_jsonl_records(self.path) if self.path else {}
        )
        self._sink = JsonlSink(self.path) if self.path else None
        self._lock = threading.Lock()

    # -- lookups -------------------------------------------------------

    def get(self, spec_hash: str) -> RunRecord | None:
        """The completed record for a content hash, marked ``cached``."""
        with self._lock:
            payload = self._records.get(spec_hash)
        if payload is None:
            return None
        return RunRecord.from_dict(payload, cached=True)

    def __contains__(self, spec_hash: str) -> bool:
        with self._lock:
            return spec_hash in self._records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def hashes(self) -> list[str]:
        """Every stored content hash (a snapshot, safe to iterate)."""
        with self._lock:
            return list(self._records)

    # -- writes --------------------------------------------------------

    def put(self, record: RunRecord) -> None:
        """Record one completed run (appended to the JSONL file, if any).

        The file append happens *outside* the lock: the sink's appends are
        single-``os.write`` atomic already, and keeping the lock to pure
        dict work means readers (``get``/``len``/``stats`` gauges — some on
        the service's event loop) never wait behind disk I/O.
        """
        payload = record.to_dict()
        with self._lock:
            self._records[record.spec_hash] = payload
            sink = self._sink
        if sink is not None:
            sink.append(payload)

    def refresh(self) -> int:
        """Re-read the backing file, absorbing records other writers appended.

        Returns the number of hashes that were new to this store.  Purely
        in-memory stores are a no-op.
        """
        if not self.path:
            return 0
        loaded = load_jsonl_records(self.path)
        with self._lock:
            added = sum(1 for spec_hash in loaded if spec_hash not in self._records)
            # Later lines win, matching load_jsonl_records semantics; records
            # put() after the file snapshot are re-applied by the update
            # order below only if the file already contains them — our own
            # appends are in the file too, so this stays consistent.
            self._records.update(loaded)
        return added

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
