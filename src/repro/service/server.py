"""The asyncio solve service: a long-lived front end over the result store.

:class:`SolveService` accepts :class:`~repro.run.plan.RunSpec`-shaped solve
requests and expectation-sweep requests, and answers them with four layers
of work avoidance before anything executes:

1. **Store hits** — a spec whose content hash is already in the
   :class:`~repro.service.store.ResultStore` is answered immediately, no
   solver call (the JSONL file doubles as the farm's shared result store).
2. **In-flight dedup** — identical specs submitted while one is executing
   all await the *same* future: N concurrent identical requests cost one
   execution.
3. **Solve grouping** — pending specs that differ only in seed ride one
   worker dispatch (see :mod:`repro.service.coalesce`).
4. **Sweep coalescing** — pending expectation sweeps on one ansatz collapse
   into a single ``batched_expectations`` broadcast pass.

Execution runs on a bounded worker pool (``max_workers`` concurrent tasks
over a thread executor); every completed record lands in the store before
its future resolves, so a crash loses at most the in-flight work.  Requests
honour a per-request timeout (:class:`~repro.exceptions.ServiceTimeoutError`
— the execution itself is *not* cancelled, so a retry hits the store), and
:meth:`SolveService.stop` drains in-flight work for a graceful shutdown.

:func:`serve_tcp` exposes a running service over a newline-delimited-JSON
TCP protocol for out-of-process clients (see
:class:`~repro.service.client.TCPServiceClient` and
``python -m repro.service``).
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import (
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceTimeoutError,
)
from repro.run.plan import RunRecord, RunSpec, execute_spec
from repro.serialization import json_sanitize
from repro.service.coalesce import (
    SpecCompiler,
    SweepRequest,
    execute_group,
    execute_sweep,
    solve_group_key,
)
from repro.service.store import ResultStore

__all__ = ["ServiceStats", "SolveService", "serve_tcp", "surface_task_exception"]


def surface_task_exception(task: asyncio.Task) -> None:
    """Done-callback surfacing a background task's otherwise-dropped error.

    The service's worker tasks and the TCP layer's per-message tasks are
    fire-and-forget by design — nothing awaits them — so without this
    callback a crash would sit silent until the task is garbage-collected
    ("Task exception was never retrieved", long after the useful context is
    gone).  Retrieving the exception here and routing it through the loop's
    exception handler reports the failure immediately, while it is still
    attributable.
    """
    if task.cancelled():
        return
    error = task.exception()
    if error is None:
        return
    task.get_loop().call_exception_handler(
        {
            "message": f"background task {task.get_name()!r} failed",
            "exception": error,
            "task": task,
        }
    )


@dataclass
class ServiceStats:
    """Monotonic request counters, exposed via :meth:`SolveService.stats`."""

    requests: int = 0
    store_hits: int = 0
    deduped: int = 0
    executed: int = 0
    solves_coalesced: int = 0
    sweep_requests: int = 0
    sweep_batches: int = 0
    sweeps_coalesced: int = 0
    failures: int = 0
    timeouts: int = 0

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "store_hits": self.store_hits,
            "deduped": self.deduped,
            "executed": self.executed,
            "solves_coalesced": self.solves_coalesced,
            "sweep_requests": self.sweep_requests,
            "sweep_batches": self.sweep_batches,
            "sweeps_coalesced": self.sweeps_coalesced,
            "failures": self.failures,
            "timeouts": self.timeouts,
        }


def _consume_exception(future: asyncio.Future) -> None:
    """Mark a future's exception retrieved (awaiters may have timed out)."""
    if not future.cancelled():
        future.exception()


@dataclass
class _PendingSweeps:
    """Per-key sweep batch accumulating until its flush callback fires."""

    batch: list = field(default_factory=list)
    scheduled: bool = False


class SolveService:
    """Async solve front end with store answers, dedup and coalescing.

    Args:
        store: a :class:`~repro.service.store.ResultStore`, a JSONL path to
            back one, or ``None`` for a purely in-memory store.
        max_workers: bound on concurrently executing worker tasks (and the
            size of the underlying thread executor).
        request_timeout: default per-request timeout in seconds (``None``
            waits forever); individual calls may override it.
        max_group_size: cap on how many seed-compatible pending specs ride
            one worker dispatch.
        sweep_window: how long (seconds) a sweep batch accumulates before
            flushing.  ``0`` flushes on the next event-loop tick, which
            already coalesces requests submitted in the same scheduling
            burst (e.g. one ``asyncio.gather``).
        execute_fn: the per-spec execution function — defaults to
            :func:`~repro.run.plan.execute_spec`; tests inject counting
            spies here.
    """

    def __init__(
        self,
        store: "ResultStore | str | os.PathLike | None" = None,
        *,
        max_workers: int = 4,
        request_timeout: "float | None" = None,
        max_group_size: int = 16,
        sweep_window: float = 0.0,
        execute_fn: "Callable[[RunSpec], RunRecord] | None" = None,
    ) -> None:
        if max_workers < 1:
            raise ServiceError("max_workers must be at least 1")
        if max_group_size < 1:
            raise ServiceError("max_group_size must be at least 1")
        if sweep_window < 0:
            raise ServiceError("sweep_window must be non-negative")
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.max_workers = max_workers
        self.request_timeout = request_timeout
        self.max_group_size = max_group_size
        self.sweep_window = sweep_window
        self._execute_fn = execute_fn if execute_fn is not None else execute_spec
        self._compiler = SpecCompiler()
        self._stats = ServiceStats()
        self._running = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._slots: asyncio.Semaphore | None = None
        self._tasks: set[asyncio.Task] = set()
        #: content hash -> the future every requester of that spec awaits
        self._inflight: dict[str, asyncio.Future] = {}
        #: group key -> accepted-but-not-dispatched (hash, spec) queue
        self._queued: "dict[str, OrderedDict[str, RunSpec]]" = {}
        self._pending_sweeps: dict[str, _PendingSweeps] = {}

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "SolveService":
        if self._running:
            raise ServiceError("service is already running")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-solve"
        )
        self._slots = asyncio.Semaphore(self.max_workers)
        self._running = True
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Stop accepting requests; drain (or cancel) in-flight work.

        With ``drain=True`` every accepted request completes and lands in
        the store before the executor shuts down — the graceful path.
        """
        if not self._running:
            return
        self._running = False
        tasks = list(self._tasks)
        if not drain:
            for task in tasks:
                task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        # Whatever never reached a worker task fails closed.
        for pending in self._pending_sweeps.values():
            for _request, future in pending.batch:
                if not future.done():
                    future.set_exception(ServiceClosedError("service stopped"))
        self._pending_sweeps.clear()
        self._queued.clear()
        for future in list(self._inflight.values()):
            if not future.done():
                future.set_exception(ServiceClosedError("service stopped"))
        self._inflight.clear()
        if self._executor is not None:
            executor = self._executor
            self._executor = None
            # shutdown(wait=True) joins worker threads — a stop() racing a
            # still-running solve would otherwise freeze the whole loop, not
            # just this coroutine.  Hop the join off the loop and await it.
            await asyncio.to_thread(executor.shutdown, True)

    async def __aenter__(self) -> "SolveService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def _require_running(self) -> None:
        if not self._running:
            raise ServiceClosedError("service is not running (call start())")

    # -- observability -------------------------------------------------

    def stats(self) -> dict:
        """Current counters plus store/queue gauges."""
        snapshot = self._stats.snapshot()
        snapshot["store_records"] = len(self.store)
        snapshot["inflight"] = len(self._inflight)
        return snapshot

    # -- solve path ----------------------------------------------------

    async def solve(
        self, spec: "RunSpec | dict", *, timeout: "float | None" = None
    ) -> RunRecord:
        """Answer one solve request (store hit, dedup join, or execution)."""
        self._require_running()
        if isinstance(spec, dict):
            spec = RunSpec.from_dict(spec)
        self._stats.requests += 1
        spec_hash = spec.content_hash()

        record = self.store.get(spec_hash)
        if record is not None:
            self._stats.store_hits += 1
            return record

        existing = self._inflight.get(spec_hash)
        if existing is not None:
            self._stats.deduped += 1
            return await self._await_result(existing, timeout)

        future: asyncio.Future = self._loop.create_future()
        future.add_done_callback(_consume_exception)
        self._inflight[spec_hash] = future
        group = solve_group_key(spec)
        self._queued.setdefault(group, OrderedDict())[spec_hash] = spec
        self._spawn(self._solve_worker(group))
        return await self._await_result(future, timeout)

    async def solve_many(
        self, specs, *, timeout: "float | None" = None
    ) -> list[RunRecord]:
        """Submit several specs concurrently; results in request order."""
        return list(
            await asyncio.gather(
                *(self.solve(spec, timeout=timeout) for spec in specs)
            )
        )

    async def _solve_worker(self, group: str) -> None:
        async with self._slots:
            queue = self._queued.get(group)
            if not queue:
                return  # a sibling worker drained this group already
            batch: list[tuple[str, RunSpec]] = []
            while queue and len(batch) < self.max_group_size:
                batch.append(queue.popitem(last=False))
            if not self._queued.get(group):
                self._queued.pop(group, None)
            if len(batch) > 1:
                self._stats.solves_coalesced += len(batch) - 1
            specs = [spec for _spec_hash, spec in batch]
            try:
                outcomes = await self._loop.run_in_executor(
                    self._executor, execute_group, specs, self._execute_fn
                )
            except Exception as error:
                # execute_group isolates per-spec failures; reaching here
                # means the dispatch itself broke — fail the whole batch.
                outcomes = [(spec, None, error) for spec in specs]
            for (spec_hash, _spec), (_s, record, error) in zip(batch, outcomes):
                future = self._inflight.pop(spec_hash, None)
                if record is not None:
                    self._stats.executed += 1
                    # The store append is file I/O — hop it off the loop, and
                    # await the hop so the record is durable before the
                    # requester's future resolves (the crash-safety contract).
                    await self._loop.run_in_executor(
                        self._executor, self.store.put, record
                    )
                    if future is not None and not future.done():
                        future.set_result(record)
                else:
                    self._stats.failures += 1
                    if future is not None and not future.done():
                        future.set_exception(error)

    # -- sweep path ----------------------------------------------------

    async def sweep(
        self, request: "SweepRequest | dict", *, timeout: "float | None" = None
    ) -> list[float]:
        """Exact cost expectations for a batch of parameter vectors.

        Pending sweeps sharing a coalesce key collapse into one
        ``batched_expectations`` pass when the batch flushes.
        """
        self._require_running()
        if isinstance(request, dict):
            request = SweepRequest.from_dict(request)
        self._stats.sweep_requests += 1
        future: asyncio.Future = self._loop.create_future()
        future.add_done_callback(_consume_exception)
        key = request.coalesce_key()
        pending = self._pending_sweeps.setdefault(key, _PendingSweeps())
        pending.batch.append((request, future))
        if not pending.scheduled:
            pending.scheduled = True
            if self.sweep_window > 0:
                self._loop.call_later(self.sweep_window, self._flush_sweeps, key)
            else:
                self._loop.call_soon(self._flush_sweeps, key)
        return await self._await_result(future, timeout)

    def _flush_sweeps(self, key: str) -> None:
        pending = self._pending_sweeps.pop(key, None)
        if pending is None or not pending.batch:
            return
        if not self._running:
            for _request, future in pending.batch:
                if not future.done():
                    future.set_exception(ServiceClosedError("service stopped"))
            return
        self._spawn(self._sweep_worker(pending.batch))

    async def _sweep_worker(self, batch: list) -> None:
        async with self._slots:
            requests = [request for request, _future in batch]
            if len(batch) > 1:
                self._stats.sweeps_coalesced += len(batch) - 1
            try:
                results = await self._loop.run_in_executor(
                    self._executor, execute_sweep, self._compiler, requests
                )
            except Exception as error:
                self._stats.failures += len(batch)
                for _request, future in batch:
                    if not future.done():
                        future.set_exception(error)
                return
            self._stats.sweep_batches += 1
            for (_request, future), scores in zip(batch, results):
                if not future.done():
                    future.set_result(scores)

    # -- internals -----------------------------------------------------

    def _spawn(self, coroutine) -> asyncio.Task:
        task = self._loop.create_task(coroutine)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        task.add_done_callback(surface_task_exception)
        return task

    async def _await_result(
        self, future: asyncio.Future, timeout: "float | None"
    ):
        timeout = timeout if timeout is not None else self.request_timeout
        if timeout is None:
            return await asyncio.shield(future)
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            self._stats.timeouts += 1
            raise ServiceTimeoutError(
                f"request exceeded its {timeout}s timeout; the execution "
                "continues and its record will land in the store"
            ) from None


# ---------------------------------------------------------------------------
# TCP front end (newline-delimited JSON)
# ---------------------------------------------------------------------------
#
# Request:  {"id": <any>, "op": "solve"|"sweep"|"stats"|"ping", ...}
#   solve:  {"spec": <RunSpec.to_dict()>}
#   sweep:  {"request": <SweepRequest.to_dict()>}
# Response: {"id": <echoed>, "ok": true, ...payload}
#        or {"id": <echoed>, "ok": false,
#            "error": {"type": <exception class>, "message": <str>}}
#
# Each request is handled as its own task, so one connection can pipeline
# concurrent requests — which is what lets a remote client's burst of
# identical specs dedupe onto one execution.


async def _dispatch(service: SolveService, message: dict) -> dict:
    operation = message.get("op")
    if operation == "solve":
        record = await service.solve(message["spec"], timeout=message.get("timeout"))
        return {"record": record.to_dict(), "cached": bool(record.cached)}
    if operation == "sweep":
        scores = await service.sweep(message["request"], timeout=message.get("timeout"))
        return {"scores": scores}
    if operation == "stats":
        return {"stats": service.stats()}
    if operation == "ping":
        return {"pong": True}
    raise ServiceError(f"unknown op {operation!r}")


async def _handle_message(
    service: SolveService,
    line: bytes,
    writer: asyncio.StreamWriter,
    write_lock: asyncio.Lock,
) -> None:
    request_id = None
    try:
        message = json.loads(line)
        request_id = message.get("id")
        payload = await _dispatch(service, message)
        response = {"id": request_id, "ok": True, **payload}
    except Exception as error:
        response = {
            "id": request_id,
            "ok": False,
            "error": {"type": type(error).__name__, "message": str(error)},
        }
    data = (json.dumps(json_sanitize(response)) + "\n").encode("utf-8")
    async with write_lock:
        if not writer.is_closing():
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                # The peer vanished mid-response; drop the connection.
                writer.close()


async def _handle_connection(
    service: SolveService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    write_lock = asyncio.Lock()
    tasks: set[asyncio.Task] = set()
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            if not line.strip():
                continue
            task = asyncio.get_running_loop().create_task(
                _handle_message(service, line, writer, write_lock)
            )
            tasks.add(task)
            task.add_done_callback(tasks.discard)
            task.add_done_callback(surface_task_exception)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
    except asyncio.CancelledError:
        # server.close() cancels connection handlers mid-read; fall through
        # to the cleanup below instead of bubbling noise into asyncio's
        # connection-made callback (the handler is ending either way).
        pass
    finally:
        for task in tasks:
            task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # The peer (or our own cancellation) beat us to the close.
            writer.transport.abort()


async def serve_tcp(
    service: SolveService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Expose a started service over TCP; ``port=0`` picks a free port.

    Returns the :class:`asyncio.AbstractServer`; the bound address is
    ``server.sockets[0].getsockname()``.  Close with ``server.close()`` +
    ``await server.wait_closed()`` and then stop the service itself.
    """
    return await asyncio.start_server(
        functools.partial(_handle_connection, service), host=host, port=port
    )
