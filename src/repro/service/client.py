"""Clients for the solve service: in-process and TCP.

:class:`ServiceClient` is the embedding-friendly front end — a thin typed
wrapper over a :class:`~repro.service.server.SolveService` running in the
same event loop (the CI smoke test drives this one).
:class:`TCPServiceClient` speaks the newline-delimited-JSON protocol of
:func:`~repro.service.server.serve_tcp`; it pipelines concurrent requests
over one connection and matches responses by id, so a remote burst of
identical specs still dedupes server-side onto one execution.
"""

from __future__ import annotations

import asyncio
import itertools
import json

from repro.exceptions import ServiceError
from repro.run.plan import RunRecord, RunSpec
from repro.serialization import json_sanitize
from repro.service.coalesce import SweepRequest
from repro.service.server import SolveService, surface_task_exception

__all__ = ["ServiceClient", "TCPServiceClient"]


class ServiceClient:
    """In-process client: same API shape as the TCP client, zero transport."""

    def __init__(self, service: SolveService) -> None:
        self.service = service

    async def solve(
        self, spec: "RunSpec | dict", *, timeout: "float | None" = None
    ) -> RunRecord:
        return await self.service.solve(spec, timeout=timeout)

    async def solve_many(
        self, specs, *, timeout: "float | None" = None
    ) -> list[RunRecord]:
        return await self.service.solve_many(specs, timeout=timeout)

    async def sweep(
        self, request: "SweepRequest | dict", *, timeout: "float | None" = None
    ) -> list[float]:
        return await self.service.sweep(request, timeout=timeout)

    async def stats(self) -> dict:
        return self.service.stats()


class TCPServiceClient:
    """Async TCP client for a :func:`~repro.service.server.serve_tcp` server."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._read_task = asyncio.get_running_loop().create_task(self._read_loop())
        # The read loop runs unawaited for the client's whole life; surface
        # a crash in it instead of letting the exception rot until GC.
        self._read_task.add_done_callback(surface_task_exception)

    @classmethod
    async def connect(cls, host: str, port: int) -> "TCPServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                except json.JSONDecodeError:
                    continue
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        finally:
            self._fail_pending(ServiceError("connection closed by server"))

    def _fail_pending(self, error: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()

    async def _request(self, payload: dict) -> dict:
        if self._writer.is_closing():
            raise ServiceError("client connection is closed")
        request_id = next(self._ids)
        payload = {"id": request_id, **payload}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(
            (json.dumps(json_sanitize(payload)) + "\n").encode("utf-8")
        )
        await self._writer.drain()
        message = await future
        if not message.get("ok"):
            error = message.get("error") or {}
            raise ServiceError(
                f"{error.get('type', 'ServiceError')}: "
                f"{error.get('message', 'request failed')}"
            )
        return message

    async def solve(
        self, spec: "RunSpec | dict", *, timeout: "float | None" = None
    ) -> RunRecord:
        payload: dict = {
            "op": "solve",
            "spec": spec.to_dict() if isinstance(spec, RunSpec) else dict(spec),
        }
        if timeout is not None:
            payload["timeout"] = timeout
        message = await self._request(payload)
        return RunRecord.from_dict(
            message["record"], cached=bool(message.get("cached"))
        )

    async def solve_many(
        self, specs, *, timeout: "float | None" = None
    ) -> list[RunRecord]:
        """Pipeline several specs over the one connection, results in order."""
        return list(
            await asyncio.gather(
                *(self.solve(spec, timeout=timeout) for spec in specs)
            )
        )

    async def sweep(
        self, request: "SweepRequest | dict", *, timeout: "float | None" = None
    ) -> list[float]:
        payload: dict = {
            "op": "sweep",
            "request": (
                request.to_dict() if isinstance(request, SweepRequest) else dict(request)
            ),
        }
        if timeout is not None:
            payload["timeout"] = timeout
        message = await self._request(payload)
        return [float(score) for score in message["scores"]]

    async def stats(self) -> dict:
        return (await self._request({"op": "stats"}))["stats"]

    async def ping(self) -> bool:
        return bool((await self._request({"op": "ping"})).get("pong"))

    async def close(self) -> None:
        self._read_task.cancel()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            # The server side is already gone; the socket is dead either way.
            self._writer.transport.abort()
        self._fail_pending(ServiceError("client closed"))

    async def __aenter__(self) -> "TCPServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
