"""The run_plan farm: shard a plan across machines, merge the shard files.

Built on the :func:`~repro.run.plan.shard_plan` hash-ownership layer: every
machine derives the *same* partition of the resolved plan from
``(num_shards, shard_index)`` alone, runs its shard through the ordinary
batch runner into its own JSONL file, and any machine can merge the shard
files afterwards — idempotently, since records are keyed by spec content
hash.  Zero coordination: no queue, no locks, no leader.

Typical farm workflow (see the README's "solve service & farm" section)::

    # once, anywhere: serialize the plan
    json.dump(plan.to_dict(), open("plan.json", "w"))

    # on machine i of n (shared or rsync'd directory):
    python -m repro.service.shard run --plan plan.json \
        --num-shards n --shard-index i --directory shards/

    # afterwards, anywhere:
    python -m repro.service.shard merge --directory shards/ \
        --output merged.jsonl

The merged file is a drop-in ``jsonl_path`` for :func:`~repro.run.run_plan`
(which then re-executes nothing) and a drop-in backing file for the solve
service's :class:`~repro.service.store.ResultStore`.
"""

from __future__ import annotations

import argparse
import glob
import json
import os

from repro.exceptions import ServiceError
from repro.run.plan import (
    ExperimentPlan,
    RunRecord,
    merge_records,
    run_plan,
    shard_plan,
)

__all__ = ["merge_shards", "run_shard", "shard_path"]


def shard_path(directory: "str | os.PathLike", num_shards: int, shard_index: int) -> str:
    """Canonical JSONL filename for one shard of a farm."""
    return os.path.join(
        os.fspath(directory), f"shard-{shard_index}-of-{num_shards}.jsonl"
    )


def run_shard(
    plan: ExperimentPlan,
    num_shards: int,
    shard_index: int,
    directory: "str | os.PathLike",
    *,
    max_workers: int = 1,
    progress: bool = False,
) -> list[RunRecord]:
    """Run the shard this machine owns, appending to its own JSONL file.

    Resume semantics are inherited from :func:`~repro.run.run_plan`: a
    re-launched shard skips everything its file already records, so a
    crashed machine just restarts the same command.
    """
    os.makedirs(os.fspath(directory), exist_ok=True)
    sub_plan = shard_plan(plan, num_shards, shard_index)
    return run_plan(
        sub_plan,
        max_workers=max_workers,
        jsonl_path=shard_path(directory, num_shards, shard_index),
        progress=progress,
    )


def merge_shards(
    directory: "str | os.PathLike",
    output_path: "str | os.PathLike | None" = None,
) -> dict[str, dict]:
    """Merge every ``*.jsonl`` shard file under ``directory``.

    Later files win on duplicate hashes (they should be identical anyway —
    records are content-addressed), and re-merging is a no-op, so partial
    farms merge safely at any point.
    """
    paths = sorted(glob.glob(os.path.join(os.fspath(directory), "*.jsonl")))
    if not paths:
        raise ServiceError(f"no shard files (*.jsonl) under {os.fspath(directory)!r}")
    return merge_records(paths, output_path=output_path)


# ---------------------------------------------------------------------------
# CLI: python -m repro.service.shard {run,merge}
# ---------------------------------------------------------------------------


def _load_plan(path: str) -> ExperimentPlan:
    with open(path, "r", encoding="utf-8") as handle:
        return ExperimentPlan.from_dict(json.load(handle))


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.shard",
        description="Run one shard of an experiment plan, or merge shard files.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="execute the shard this machine owns")
    run_parser.add_argument("--plan", required=True, help="plan JSON file (ExperimentPlan.to_dict)")
    run_parser.add_argument("--num-shards", type=int, required=True)
    run_parser.add_argument("--shard-index", type=int, required=True)
    run_parser.add_argument("--directory", required=True, help="shared shard directory")
    run_parser.add_argument("--workers", type=int, default=1, help="process workers for this shard")

    merge_parser = commands.add_parser("merge", help="merge every shard file in a directory")
    merge_parser.add_argument("--directory", required=True)
    merge_parser.add_argument("--output", required=True, help="merged JSONL output path")

    arguments = parser.parse_args(argv)
    if arguments.command == "run":
        records = run_shard(
            _load_plan(arguments.plan),
            arguments.num_shards,
            arguments.shard_index,
            arguments.directory,
            max_workers=arguments.workers,
            progress=True,
        )
        print(
            f"shard {arguments.shard_index}/{arguments.num_shards}: "
            f"{len(records)} record(s) in "
            f"{shard_path(arguments.directory, arguments.num_shards, arguments.shard_index)}"
        )
        return 0
    merged = merge_shards(arguments.directory, output_path=arguments.output)
    print(f"merged {len(merged)} record(s) into {arguments.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
