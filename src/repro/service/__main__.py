"""Run the solve service as a TCP daemon: ``python -m repro.service``.

Serves the newline-delimited-JSON protocol of
:func:`~repro.service.server.serve_tcp` until interrupted, backed by an
optional JSONL result store (share one file — or a merged farm file — across
restarts and the request cache survives with it).
"""

from __future__ import annotations

import argparse
import asyncio

from repro.service.server import SolveService, serve_tcp


async def _serve(arguments: argparse.Namespace) -> None:
    # Constructing the service loads the whole JSONL store from disk — fine
    # here, on the daemon's startup path, before the loop serves anyone.
    service = SolveService(  # repro: ignore[concurrency]
        arguments.store,
        max_workers=arguments.workers,
        request_timeout=arguments.request_timeout,
    )
    await service.start()
    server = await serve_tcp(service, host=arguments.host, port=arguments.port)
    host, port = server.sockets[0].getsockname()[:2]
    print(f"repro solve service listening on {host}:{port} "
          f"({len(service.store)} stored record(s))", flush=True)
    try:
        async with server:
            await server.serve_forever()
    finally:
        await service.stop()
        # close() fsyncs-and-closes the JSONL sink; keep the file I/O off
        # the (still running) loop like every other store write.
        await asyncio.to_thread(service.store.close)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Long-lived solve service over TCP (JSON lines).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--store", default=None,
                        help="JSONL result-store path (default: in-memory)")
    parser.add_argument("--workers", type=int, default=4,
                        help="bounded worker-pool size")
    parser.add_argument("--request-timeout", type=float, default=None,
                        help="default per-request timeout in seconds")
    arguments = parser.parse_args(argv)
    try:
        asyncio.run(_serve(arguments))
    except KeyboardInterrupt:
        print("solve service stopped", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
