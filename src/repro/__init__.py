"""repro — a from-scratch reproduction of Choco-Q (HPCA 2025).

Choco-Q is a commute-Hamiltonian-based QAOA framework for constrained binary
optimization.  This package reimplements the full system described in the
paper, including the quantum-circuit simulation substrate, the baselines it
is compared against, the three application domains of its evaluation, and
the benchmark harnesses that regenerate every table and figure.

Quick start::

    from repro import make_benchmark, ChocoQSolver

    problem = make_benchmark("F1")
    result = ChocoQSolver().solve(problem)
    print(result.metrics(problem))

Package layout:

* :mod:`repro.core`        — problem model, constraint machinery, metrics
* :mod:`repro.qcircuit`    — circuit IR, statevector simulator, transpiler, noise
* :mod:`repro.hamiltonian` — Pauli algebra, commute Hamiltonians, Trotter baseline
* :mod:`repro.solvers`     — Choco-Q, penalty QAOA, cyclic QAOA, HEA, classical
* :mod:`repro.problems`    — FLP / GCP / KPP generators and the benchmark suite
* :mod:`repro.analysis`    — convergence, parallelism, ablation, reporting
"""

from repro.core import (
    ConstrainedBinaryProblem,
    LinearConstraint,
    MetricsReport,
    Objective,
    approximation_ratio_gap,
    evaluate_outcomes,
    in_constraints_rate,
    success_rate,
)
from repro.problems import make_benchmark
from repro.solvers import (
    ChocoQConfig,
    ChocoQSolver,
    CyclicQAOASolver,
    EngineOptions,
    HEASolver,
    PenaltyQAOASolver,
)

__version__ = "1.0.0"

__all__ = [
    "ChocoQConfig",
    "ChocoQSolver",
    "ConstrainedBinaryProblem",
    "CyclicQAOASolver",
    "EngineOptions",
    "HEASolver",
    "LinearConstraint",
    "MetricsReport",
    "Objective",
    "PenaltyQAOASolver",
    "approximation_ratio_gap",
    "evaluate_outcomes",
    "in_constraints_rate",
    "make_benchmark",
    "success_rate",
    "__version__",
]
