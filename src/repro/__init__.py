"""repro — a from-scratch reproduction of Choco-Q (HPCA 2025).

Choco-Q is a commute-Hamiltonian-based QAOA framework for constrained binary
optimization.  This package reimplements the full system described in the
paper, including the quantum-circuit simulation substrate, the baselines it
is compared against, the three application domains of its evaluation, and
the benchmark harnesses that regenerate every table and figure.

Quick start — one call runs any registered solver::

    import repro

    problem = repro.make_benchmark("F1")
    result = repro.solve(problem, solver="choco-q", num_layers=2)
    print(result.metrics(problem))

Solvers are string-addressable (``repro.available_solvers()`` lists
``choco-q``, ``penalty-qaoa``, ``cyclic-qaoa`` and ``hea``), configured by
frozen ``*Config`` dataclasses with a ``to_dict``/``from_dict`` round-trip,
and every :class:`~repro.solvers.base.SolverResult` serializes the same way.
Whole evaluation grids run through the batch runner::

    from repro.run import ExperimentPlan, run_plan

    plan = ExperimentPlan.grid(
        solvers=repro.available_solvers(),
        benchmarks=["F1", "G1", "K1"],
        seeds=[0, 1, 2],
        shots=2048,
    )
    records = run_plan(plan, max_workers=4, jsonl_path="results.jsonl")

``run_plan`` executes specs on process workers with deterministic per-spec
seeding (parallel results are bit-identical to sequential ones), appends
each completed run to the JSONL file, and skips any spec whose content hash
is already recorded there — re-running a finished plan is free.

Package layout:

* :mod:`repro.core`        — problem model, constraint machinery, metrics
* :mod:`repro.qcircuit`    — circuit IR, statevector simulator, transpiler, noise
* :mod:`repro.hamiltonian` — Pauli algebra, commute Hamiltonians, Trotter baseline
* :mod:`repro.solvers`     — Choco-Q, penalty QAOA, cyclic QAOA, HEA, classical
* :mod:`repro.run`         — solver registry, ``solve`` facade, batch runner
* :mod:`repro.problems`    — FLP / GCP / KPP generators and the benchmark suite
* :mod:`repro.analysis`    — convergence, parallelism, ablation, reporting
"""

from repro.core import (
    ConstrainedBinaryProblem,
    LinearConstraint,
    MetricsReport,
    Objective,
    approximation_ratio_gap,
    evaluate_outcomes,
    in_constraints_rate,
    success_rate,
)
from repro.problems import make_benchmark
from repro.run import (
    ExperimentPlan,
    RunRecord,
    RunSpec,
    available_solvers,
    register_solver,
    run_plan,
    solve,
)
from repro.solvers import (
    ChocoQConfig,
    ChocoQSolver,
    CyclicQAOAConfig,
    CyclicQAOASolver,
    EngineOptions,
    HEAConfig,
    HEASolver,
    NoiseConfig,
    PenaltyQAOAConfig,
    PenaltyQAOASolver,
    SolverResult,
)

__version__ = "1.1.0"

__all__ = [
    "ChocoQConfig",
    "ChocoQSolver",
    "ConstrainedBinaryProblem",
    "CyclicQAOAConfig",
    "CyclicQAOASolver",
    "EngineOptions",
    "ExperimentPlan",
    "HEAConfig",
    "HEASolver",
    "LinearConstraint",
    "MetricsReport",
    "NoiseConfig",
    "Objective",
    "PenaltyQAOAConfig",
    "PenaltyQAOASolver",
    "RunRecord",
    "RunSpec",
    "SolverResult",
    "approximation_ratio_gap",
    "available_solvers",
    "evaluate_outcomes",
    "in_constraints_rate",
    "make_benchmark",
    "register_solver",
    "run_plan",
    "solve",
    "success_rate",
    "__version__",
]
