"""Testing utilities shared by the test suite and downstream users.

Quantum circuits compiled by the transpiler are equivalent to their sources
only up to a global phase (an RZ-based Toffoli differs from the textbook one
by a constant factor), so equality assertions on statevectors need a
phase-insensitive comparison.  These helpers keep that logic in one place.
"""

from __future__ import annotations

import numpy as np


def global_phase_equal(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    """True when two statevectors are equal up to a single global phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    index = int(np.argmax(np.abs(a)))
    if abs(a[index]) < 1e-12:
        return bool(np.allclose(a, b, atol=atol))
    phase = b[index] / a[index]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a * phase, b, atol=atol))


def random_statevector(num_qubits: int, seed: int | None = None) -> np.ndarray:
    """A Haar-ish random normalized statevector (Gaussian components)."""
    rng = np.random.default_rng(seed)
    state = rng.normal(size=2**num_qubits) + 1j * rng.normal(size=2**num_qubits)
    return state / np.linalg.norm(state)


def operators_equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    """True when two unitaries are equal up to a single global phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    flat_index = int(np.argmax(np.abs(a)))
    row, col = np.unravel_index(flat_index, a.shape)
    if abs(a[row, col]) < 1e-12:
        return bool(np.allclose(a, b, atol=atol))
    phase = b[row, col] / a[row, col]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a * phase, b, atol=atol))
