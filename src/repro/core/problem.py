"""Constrained binary optimization problem model.

The paper's target problem (Eq. 1) is

    min or max  f(x),   x in {0, 1}^n
    subject to  C x = c

with a scalar objective ``f`` and a system of linear *equality* constraints.
This module provides the data model shared by every solver:

* :class:`Objective` — a polynomial over binary variables represented as a
  mapping from sorted variable-index tuples to coefficients (constant term
  keyed by the empty tuple);
* :class:`LinearConstraint` — one row ``sum_i coeff_i x_i = rhs``;
* :class:`ConstrainedBinaryProblem` — the full problem, with evaluation,
  feasibility checking, penalty reformulation hooks, and a brute-force
  optimum used as ground truth by the metrics layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import ProblemError

VariableTuple = tuple[int, ...]


class Objective:
    """A polynomial objective over binary variables.

    ``terms`` maps sorted tuples of variable indices to coefficients, e.g.
    ``{(): 3.0, (0,): 1.5, (0, 2): -2.0}`` represents
    ``3 + 1.5 x_0 - 2 x_0 x_2``.  Because variables are binary, repeated
    indices are collapsed (``x^2 = x``).
    """

    def __init__(self, terms: Mapping[Sequence[int], float] | None = None) -> None:
        self._terms: dict[VariableTuple, float] = {}
        for variables, coefficient in (terms or {}).items():
            self.add_term(variables, coefficient)

    # ------------------------------------------------------------------

    def add_term(self, variables: Sequence[int], coefficient: float) -> "Objective":
        """Accumulate ``coefficient * prod(x_i for i in variables)``."""
        key = tuple(sorted(set(int(v) for v in variables)))
        if coefficient == 0:
            return self
        self._terms[key] = self._terms.get(key, 0.0) + float(coefficient)
        if self._terms[key] == 0.0:
            del self._terms[key]
        return self

    @property
    def terms(self) -> dict[VariableTuple, float]:
        return dict(self._terms)

    @property
    def degree(self) -> int:
        return max((len(key) for key in self._terms), default=0)

    def variables(self) -> frozenset[int]:
        found: set[int] = set()
        for key in self._terms:
            found.update(key)
        return frozenset(found)

    # ------------------------------------------------------------------

    def evaluate(self, assignment: Sequence[int]) -> float:
        """Evaluate the polynomial on a 0/1 assignment."""
        total = 0.0
        for variables, coefficient in self._terms.items():
            product = coefficient
            for variable in variables:
                if assignment[variable] == 0:
                    product = 0.0
                    break
            total += product
        return total

    def __add__(self, other: "Objective") -> "Objective":
        combined = Objective(self._terms)
        for variables, coefficient in other._terms.items():
            combined.add_term(variables, coefficient)
        return combined

    def __mul__(self, scalar: float) -> "Objective":
        return Objective({key: value * scalar for key, value in self._terms.items()})

    __rmul__ = __mul__

    def __neg__(self) -> "Objective":
        return self * -1.0

    def __len__(self) -> int:
        return len(self._terms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Objective({len(self._terms)} terms, degree {self.degree})"

    # ------------------------------------------------------------------

    @classmethod
    def from_linear(cls, weights: Sequence[float], constant: float = 0.0) -> "Objective":
        """Build ``constant + sum_i weights[i] * x_i``."""
        objective = cls()
        if constant:
            objective.add_term((), constant)
        for index, weight in enumerate(weights):
            objective.add_term((index,), weight)
        return objective

    def substitute(self, variable: int, value: int) -> "Objective":
        """Fix one variable to 0/1 and return the reduced polynomial.

        Variable indices of the remaining variables are *not* renumbered —
        callers that need a compact problem should use
        :mod:`repro.core.variable_elimination`.
        """
        if value not in (0, 1):
            raise ProblemError("binary variables can only be fixed to 0 or 1")
        reduced = Objective()
        for variables, coefficient in self._terms.items():
            if variable in variables:
                if value == 0:
                    continue
                remaining = tuple(v for v in variables if v != variable)
                reduced.add_term(remaining, coefficient)
            else:
                reduced.add_term(variables, coefficient)
        return reduced


@dataclass(frozen=True)
class LinearConstraint:
    """One linear equality ``sum_i coefficients[i] x_i = rhs``."""

    coefficients: tuple[float, ...]
    rhs: float

    def __post_init__(self) -> None:
        if not self.coefficients:
            raise ProblemError("a constraint needs at least one coefficient")

    @property
    def num_variables(self) -> int:
        return len(self.coefficients)

    @property
    def support(self) -> tuple[int, ...]:
        """Variables with a non-zero coefficient."""
        return tuple(i for i, c in enumerate(self.coefficients) if c != 0)

    def is_summation_format(self) -> bool:
        """True when all non-zero coefficients have the same sign and are ±1.

        This is the format the cyclic-Hamiltonian baseline supports
        (Section II-B / III).
        """
        nonzero = [c for c in self.coefficients if c != 0]
        if not nonzero:
            return False
        return all(c == 1 for c in nonzero) or all(c == -1 for c in nonzero)

    def evaluate(self, assignment: Sequence[int]) -> float:
        return float(
            sum(c * assignment[i] for i, c in enumerate(self.coefficients) if c != 0)
        )

    def violation(self, assignment: Sequence[int]) -> float:
        return abs(self.evaluate(assignment) - self.rhs)

    def is_satisfied(self, assignment: Sequence[int], tolerance: float = 1e-9) -> bool:
        return self.violation(assignment) <= tolerance

    def substitute(self, variable: int, value: int) -> "LinearConstraint":
        """Fix one variable; its contribution moves into the right-hand side."""
        coefficients = list(self.coefficients)
        shift = coefficients[variable] * value
        coefficients[variable] = 0.0
        return LinearConstraint(tuple(coefficients), self.rhs - shift)


class ConstrainedBinaryProblem:
    """A constrained binary optimization instance (Eq. 1)."""

    def __init__(
        self,
        num_variables: int,
        objective: Objective,
        constraints: Iterable[LinearConstraint] = (),
        sense: str = "min",
        name: str = "problem",
        variable_names: Sequence[str] | None = None,
    ) -> None:
        if num_variables < 1:
            raise ProblemError("a problem needs at least one variable")
        if sense not in ("min", "max"):
            raise ProblemError("sense must be 'min' or 'max'")
        self.num_variables = int(num_variables)
        self.objective = objective
        self.constraints: list[LinearConstraint] = []
        for constraint in constraints:
            self.add_constraint(constraint)
        self.sense = sense
        self.name = name
        if variable_names is None:
            variable_names = [f"x{i}" for i in range(num_variables)]
        if len(variable_names) != num_variables:
            raise ProblemError("variable_names length must equal num_variables")
        self.variable_names = list(variable_names)
        for variable in objective.variables():
            if variable >= num_variables:
                raise ProblemError(
                    f"objective references variable {variable} beyond num_variables"
                )

    # ------------------------------------------------------------------

    def add_constraint(self, constraint: LinearConstraint) -> None:
        if constraint.num_variables != self.num_variables:
            raise ProblemError("constraint width must equal num_variables")
        self.constraints.append(constraint)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def constraint_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(C, c)`` with one row per constraint."""
        if not self.constraints:
            return (
                np.zeros((0, self.num_variables), dtype=float),
                np.zeros(0, dtype=float),
            )
        matrix = np.array([list(con.coefficients) for con in self.constraints], dtype=float)
        rhs = np.array([con.rhs for con in self.constraints], dtype=float)
        return matrix, rhs

    # ------------------------------------------------------------------

    def evaluate(self, assignment: Sequence[int]) -> float:
        self._check_assignment(assignment)
        return self.objective.evaluate(assignment)

    def is_feasible(self, assignment: Sequence[int], tolerance: float = 1e-9) -> bool:
        self._check_assignment(assignment)
        return all(con.is_satisfied(assignment, tolerance) for con in self.constraints)

    def total_violation(self, assignment: Sequence[int]) -> float:
        """The L1 norm ``||C x - c||_1`` used by the ARG metric."""
        self._check_assignment(assignment)
        return float(sum(con.violation(assignment) for con in self.constraints))

    def _check_assignment(self, assignment: Sequence[int]) -> None:
        if len(assignment) != self.num_variables:
            raise ProblemError(
                f"assignment has {len(assignment)} entries, expected {self.num_variables}"
            )

    # ------------------------------------------------------------------

    def minimization_objective(self) -> Objective:
        """The objective with the sign flipped when the problem is a maximization.

        Every quantum solver in this package internally minimizes.
        """
        return self.objective if self.sense == "min" else -self.objective

    def better(self, value_a: float, value_b: float) -> bool:
        """True when ``value_a`` is strictly better than ``value_b``."""
        return value_a < value_b if self.sense == "min" else value_a > value_b

    def brute_force_optimum(self) -> tuple[tuple[int, ...], float]:
        """Exhaustively find an optimal feasible assignment and its value.

        Raises :class:`ProblemError` when the problem has no feasible
        assignment.  The scan is exponential in the number of variables —
        exactly the classical cost the paper quotes for exact solvers — but
        vectorized: assignments are enumerated in chunks, each constraint
        prunes the chunk before the next one runs, and the objective is only
        evaluated on the feasible survivors.  Enumeration order (variable 0
        as the most significant bit) and strict-improvement tie-breaking
        match the naive ``itertools.product`` scan bit for bit.
        """
        best_assignment: tuple[int, ...] | None = None
        best_value = 0.0
        pick = np.argmin if self.sense == "min" else np.argmax
        for codes, values in self._feasible_chunks():
            index = int(pick(values))
            value = float(values[index])
            if best_assignment is None or self.better(value, best_value):
                best_assignment = self._decode(int(codes[index]))
                best_value = value
        if best_assignment is None:
            raise ProblemError(f"problem {self.name!r} has no feasible assignment")
        return best_assignment, best_value

    def optimal_assignments(self, tolerance: float = 1e-9) -> tuple[list[tuple[int, ...]], float]:
        """All optimal feasible assignments (ties included) and the optimum."""
        _, best_value = self.brute_force_optimum()
        optima = [
            self._decode(int(code))
            for codes, values in self._feasible_chunks()
            for code in codes[np.abs(values - best_value) <= tolerance]
        ]
        return optima, best_value

    def _decode(self, code: int) -> tuple[int, ...]:
        n = self.num_variables
        return tuple((code >> (n - 1 - j)) & 1 for j in range(n))

    def _feasible_chunks(
        self, tolerance: float = 1e-9
    ) -> Iterable[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(codes, objective values)`` for every feasible assignment.

        Assignment ``code`` encodes variable ``j`` in bit ``n - 1 - j``, so
        ascending codes reproduce the lexicographic order of
        ``itertools.product((0, 1), repeat=n)``.  Constraint sums and the
        objective accumulate term by term in the same order as the scalar
        :meth:`LinearConstraint.evaluate` / :meth:`Objective.evaluate`, so
        the floating-point results are identical to the sequential scan.
        """
        n = self.num_variables
        terms = list(self.objective.terms.items())
        chunk = 1 << min(n, 18)
        for start in range(0, 1 << n, chunk):
            codes = np.arange(start, min(start + chunk, 1 << n), dtype=np.int64)
            for constraint in self.constraints:
                total = np.zeros(codes.size)
                for i, coefficient in enumerate(constraint.coefficients):
                    if coefficient != 0:
                        total += coefficient * ((codes >> (n - 1 - i)) & 1)
                codes = codes[np.abs(total - constraint.rhs) <= tolerance]
                if codes.size == 0:
                    break
            if codes.size == 0:
                continue
            values = np.zeros(codes.size)
            for variables, coefficient in terms:
                product = np.full(codes.size, float(coefficient))
                for variable in variables:
                    product *= (codes >> (n - 1 - variable)) & 1
                values += product
            yield codes, values

    # ------------------------------------------------------------------

    def fix_variable(self, variable: int, value: int) -> "ConstrainedBinaryProblem":
        """Return a copy with one variable fixed (indices are preserved).

        The fixed variable keeps its index but no longer appears in the
        objective or constraints; downstream consumers that need a compact
        register should use :mod:`repro.core.variable_elimination`.
        """
        if not 0 <= variable < self.num_variables:
            raise ProblemError(f"variable {variable} out of range")
        reduced_objective = self.objective.substitute(variable, value)
        reduced_constraints = [con.substitute(variable, value) for con in self.constraints]
        return ConstrainedBinaryProblem(
            num_variables=self.num_variables,
            objective=reduced_objective,
            constraints=reduced_constraints,
            sense=self.sense,
            name=f"{self.name}|{self.variable_names[variable]}={value}",
            variable_names=self.variable_names,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConstrainedBinaryProblem(name={self.name!r}, variables={self.num_variables}, "
            f"constraints={self.num_constraints}, sense={self.sense!r})"
        )
