"""Problem model, constraint machinery and metrics for constrained binary
optimization — the substrate shared by every solver in the package."""

from repro.core.encoding import (
    default_penalty_weight,
    frozen_variables,
    penalty_objective,
    qubo_matrix,
    squared_constraint_penalty,
    to_qubo,
)
from repro.core.feasibility import (
    count_feasible_assignments,
    enumerate_feasible_assignments,
    find_feasible_assignment,
    iter_feasible_assignments,
    problem_initial_assignment,
)
from repro.core.metrics import (
    DEFAULT_ARG_PENALTY,
    MetricsReport,
    approximation_ratio_gap,
    best_measured,
    evaluate_outcomes,
    expected_objective,
    in_constraints_rate,
    success_rate,
)
from repro.core.nullspace import (
    enumerate_ternary_nullspace,
    iter_ternary_nullspace,
    nullity,
    ternary_nullspace_basis,
    total_nonzeros,
    variable_nonzero_counts,
)
from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.core.subspace import SubspaceMap
from repro.core.variable_elimination import (
    EliminationPlan,
    ReducedInstance,
    build_elimination_plan,
    choose_elimination_variables,
)

__all__ = [
    "ConstrainedBinaryProblem",
    "DEFAULT_ARG_PENALTY",
    "EliminationPlan",
    "LinearConstraint",
    "MetricsReport",
    "Objective",
    "ReducedInstance",
    "SubspaceMap",
    "approximation_ratio_gap",
    "best_measured",
    "build_elimination_plan",
    "choose_elimination_variables",
    "count_feasible_assignments",
    "default_penalty_weight",
    "enumerate_feasible_assignments",
    "enumerate_ternary_nullspace",
    "evaluate_outcomes",
    "expected_objective",
    "find_feasible_assignment",
    "frozen_variables",
    "in_constraints_rate",
    "iter_feasible_assignments",
    "iter_ternary_nullspace",
    "nullity",
    "penalty_objective",
    "problem_initial_assignment",
    "qubo_matrix",
    "squared_constraint_penalty",
    "success_rate",
    "ternary_nullspace_basis",
    "to_qubo",
    "total_nonzeros",
    "variable_nonzero_counts",
]
