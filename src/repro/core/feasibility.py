"""Feasibility search for linear equality constraint systems.

Both the commute-Hamiltonian flow (Step 1 of Fig. 3) and the cyclic baseline
need *one* feasible assignment of ``C x = c`` as the circuit's initial state,
and the variable-elimination pass needs a feasible assignment of every
reduced system.  This module implements a depth-first search with
interval-arithmetic pruning: at each node, the residual right-hand side of
every constraint must stay within the interval achievable by the still-free
variables, otherwise the branch is cut.

Exhaustive enumeration of feasible assignments (used by metrics and tests on
small instances) is also provided.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import InfeasibleError, ProblemError


def _as_matrix(constraint_matrix: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
    matrix = np.atleast_2d(np.asarray(constraint_matrix, dtype=float))
    if matrix.size == 0:
        raise ProblemError("constraint matrix must not be empty")
    return matrix


def iter_feasible_assignments(
    constraint_matrix: Sequence[Sequence[float]] | np.ndarray,
    rhs: Sequence[float] | np.ndarray,
    limit: int | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield 0/1 assignments satisfying ``C x = c``, via pruned DFS.

    Variables are assigned in index order; a branch is pruned as soon as a
    constraint's residual cannot be reached by any assignment of the
    remaining variables (sum of negative coefficients ≤ residual ≤ sum of
    positive coefficients).
    """
    matrix = _as_matrix(constraint_matrix)
    rhs = np.asarray(rhs, dtype=float).reshape(-1)
    num_constraints, num_variables = matrix.shape
    if len(rhs) != num_constraints:
        raise ProblemError("rhs length must equal the number of constraint rows")

    # Precompute, for each position, the min/max contribution of the suffix.
    suffix_min = np.zeros((num_variables + 1, num_constraints))
    suffix_max = np.zeros((num_variables + 1, num_constraints))
    for position in range(num_variables - 1, -1, -1):
        column = matrix[:, position]
        suffix_min[position] = suffix_min[position + 1] + np.minimum(column, 0.0)
        suffix_max[position] = suffix_max[position + 1] + np.maximum(column, 0.0)

    found = 0
    assignment = [0] * num_variables

    def search(position: int, residual: np.ndarray) -> Iterator[tuple[int, ...]]:
        nonlocal found
        if limit is not None and found >= limit:
            return
        if position == num_variables:
            if np.all(np.abs(residual) <= 1e-9):
                found += 1
                yield tuple(assignment)
            return
        # Prune: residual must be achievable by the remaining variables.
        if np.any(residual < suffix_min[position] - 1e-9) or np.any(
            residual > suffix_max[position] + 1e-9
        ):
            return
        column = matrix[:, position]
        for value in (0, 1):
            assignment[position] = value
            yield from search(position + 1, residual - value * column)
        assignment[position] = 0

    yield from search(0, rhs.copy())


def find_feasible_assignment(
    constraint_matrix: Sequence[Sequence[float]] | np.ndarray,
    rhs: Sequence[float] | np.ndarray,
) -> tuple[int, ...]:
    """Return one feasible 0/1 assignment or raise :class:`InfeasibleError`."""
    for assignment in iter_feasible_assignments(constraint_matrix, rhs, limit=1):
        return assignment
    raise InfeasibleError("the constraint system C x = c has no binary solution")


def enumerate_feasible_assignments(
    constraint_matrix: Sequence[Sequence[float]] | np.ndarray,
    rhs: Sequence[float] | np.ndarray,
    limit: int | None = None,
) -> list[tuple[int, ...]]:
    """Collect feasible assignments into a list (optionally capped)."""
    return list(iter_feasible_assignments(constraint_matrix, rhs, limit=limit))


def count_feasible_assignments(
    constraint_matrix: Sequence[Sequence[float]] | np.ndarray,
    rhs: Sequence[float] | np.ndarray,
) -> int:
    """Number of binary solutions of ``C x = c`` (the feasible search space)."""
    return sum(1 for _ in iter_feasible_assignments(constraint_matrix, rhs))


def problem_initial_assignment(problem) -> tuple[int, ...]:
    """One feasible assignment of a :class:`ConstrainedBinaryProblem`.

    Unconstrained problems default to the all-zeros assignment.
    """
    if not problem.constraints:
        return tuple([0] * problem.num_variables)
    matrix, rhs = problem.constraint_matrix()
    return find_feasible_assignment(matrix, rhs)
