"""Ternary nullspace search: the solution set Delta of ``C u = 0``.

Equation (5) of the paper builds the commute driver from vectors
``u in {-1, 0, +1}^n`` with ``C u = 0``.  Each such vector is a *move* in the
feasible space: it flips the bits on its support while keeping every
constraint value unchanged, so the driver built from these moves explores the
feasible region without ever leaving it.

Two construction modes are provided, mirroring the trade-off discussed in
Sections III-B and IV:

* :func:`enumerate_ternary_nullspace` — the complete set Delta (optionally
  bounded by support size or count).  Exhaustive, exponential in the worst
  case; matches the paper's "all valid solutions" formulation and is used for
  small instances and verification.
* :func:`ternary_nullspace_basis` — a compact generating set: candidate
  vectors are enumerated in order of increasing support and greedily added
  while they increase the rank over the rationals, stopping at the nullity
  of ``C``.  This keeps the serialized driver shallow (total non-zeros small)
  and is the default used by the Choco-Q solver, matching the example driver
  of Fig. 3 where one ``u`` per free direction appears.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import ProblemError


def _as_matrix(constraint_matrix: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
    matrix = np.atleast_2d(np.asarray(constraint_matrix, dtype=float))
    return matrix


def iter_ternary_nullspace(
    constraint_matrix: Sequence[Sequence[float]] | np.ndarray,
    max_support: int | None = None,
    limit: int | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield non-zero ``u in {-1, 0, 1}^n`` with ``C u = 0``.

    Vectors are produced in canonical form: the first non-zero entry is
    ``+1`` (``u`` and ``-u`` generate the same Hamiltonian term, Eq. (5) is
    symmetric under negation), so each physical move appears exactly once.

    The search is a DFS over variable positions with interval pruning (the
    residual of each constraint must remain reachable by the remaining
    entries, each of which contributes at most ``|C_{ji}|`` in magnitude).
    """
    matrix = _as_matrix(constraint_matrix)
    num_constraints, num_variables = matrix.shape

    suffix_reach = np.zeros((num_variables + 1, num_constraints))
    for position in range(num_variables - 1, -1, -1):
        suffix_reach[position] = suffix_reach[position + 1] + np.abs(matrix[:, position])

    found = 0
    entries = [0] * num_variables

    def search(position: int, residual: np.ndarray, support: int, started: bool) -> Iterator[tuple[int, ...]]:
        nonlocal found
        if limit is not None and found >= limit:
            return
        if position == num_variables:
            if started and np.all(np.abs(residual) <= 1e-9):
                found += 1
                yield tuple(entries)
            return
        if np.any(np.abs(residual) > suffix_reach[position] + 1e-9):
            return
        column = matrix[:, position]
        # Zero entry first: favours small supports in enumeration order.
        entries[position] = 0
        yield from search(position + 1, residual, support, started)
        if max_support is not None and support >= max_support:
            entries[position] = 0
            return
        # Canonical form: the first non-zero entry must be +1.
        values = (1,) if not started else (1, -1)
        for value in values:
            entries[position] = value
            yield from search(position + 1, residual - value * column, support + 1, True)
        entries[position] = 0

    yield from search(0, np.zeros(num_constraints), 0, False)


def enumerate_ternary_nullspace(
    constraint_matrix: Sequence[Sequence[float]] | np.ndarray,
    max_support: int | None = None,
    limit: int | None = None,
) -> list[tuple[int, ...]]:
    """Collect the (canonicalised) solution set Delta into a list."""
    return list(
        iter_ternary_nullspace(constraint_matrix, max_support=max_support, limit=limit)
    )


def nullity(constraint_matrix: Sequence[Sequence[float]] | np.ndarray) -> int:
    """Dimension of the rational nullspace of ``C``."""
    matrix = _as_matrix(constraint_matrix)
    if matrix.size == 0:
        return matrix.shape[1]
    rank = int(np.linalg.matrix_rank(matrix))
    return matrix.shape[1] - rank


def ternary_nullspace_basis(
    constraint_matrix: Sequence[Sequence[float]] | np.ndarray,
    max_support: int | None = None,
    candidate_limit: int = 20000,
) -> list[tuple[int, ...]]:
    """A compact generating subset of Delta.

    Candidates are enumerated with small supports first and greedily added
    while they are linearly independent (over the rationals) of the vectors
    already chosen.  The result has exactly ``nullity(C)`` vectors whenever
    the ternary nullspace spans the rational nullspace; otherwise every
    independent ternary vector found is returned.

    Raises :class:`ProblemError` when ``C u = 0`` has no non-zero ternary
    solution but the matrix has a non-trivial nullspace that the driver would
    need (the constraints then admit only one feasible point per right-hand
    side, and the caller should fall back to classical search).
    """
    matrix = _as_matrix(constraint_matrix)
    num_variables = matrix.shape[1]
    target_rank = nullity(matrix)
    if target_rank == 0:
        return []

    # Enumerate candidates grouped by support size so the greedy pass prefers
    # sparse moves (smaller circuit blocks, Section IV-C).
    chosen: list[tuple[int, ...]] = []
    chosen_matrix = np.zeros((0, num_variables))
    support_cap = max_support if max_support is not None else num_variables
    for support_size in range(1, support_cap + 1):
        if len(chosen) >= target_rank:
            break
        for candidate in iter_ternary_nullspace(
            matrix, max_support=support_size, limit=candidate_limit
        ):
            if sum(1 for x in candidate if x != 0) != support_size:
                continue
            stacked = np.vstack([chosen_matrix, np.asarray(candidate, dtype=float)])
            if np.linalg.matrix_rank(stacked) > len(chosen):
                chosen.append(candidate)
                chosen_matrix = stacked
                if len(chosen) >= target_rank:
                    break
    if not chosen:
        raise ProblemError(
            "the constraint matrix admits no ternary nullspace vector; "
            "the commute driver cannot mix this instance"
        )
    return chosen


def total_nonzeros(solutions: Sequence[Sequence[int]]) -> int:
    """Total number of non-zero entries across a set of solution vectors.

    Section IV-C shows the decomposed circuit depth is proportional to this
    quantity; it drives the variable-elimination heuristic.
    """
    return int(sum(sum(1 for x in u if x != 0) for u in solutions))


def variable_nonzero_counts(solutions: Sequence[Sequence[int]], num_variables: int) -> np.ndarray:
    """Per-variable count of non-zero appearances across the solution set."""
    counts = np.zeros(num_variables, dtype=int)
    for solution in solutions:
        for index, value in enumerate(solution):
            if value != 0:
                counts[index] += 1
    return counts
