"""Evaluation metrics used throughout the paper.

Section V-A defines three algorithmic metrics computed over the measurement
outcomes of a solver:

* **success rate** — probability of measuring an optimal feasible assignment;
* **in-constraints rate** — probability that the measured assignment
  satisfies every constraint;
* **approximation ratio gap (ARG)** — Eq. (17):
  ``| E[f(x) + lambda * ||C x - c||_1] / f(x_optimal) - 1 |`` with
  ``lambda = 10``.

All three are implemented over either a shot histogram
(:class:`~repro.qcircuit.sampling.SampleResult`) or an exact probability
dictionary keyed by bitstring.  A convenience :class:`MetricsReport`
aggregates the three values plus the circuit depth reported by a solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.problem import ConstrainedBinaryProblem
from repro.exceptions import ProblemError
from repro.qcircuit.sampling import SampleResult

DEFAULT_ARG_PENALTY = 10.0


def _normalised_distribution(
    outcomes: "SampleResult | Mapping[str, float]",
) -> dict[str, float]:
    """Convert a histogram or probability mapping into relative frequencies."""
    if isinstance(outcomes, SampleResult):
        return outcomes.frequencies()
    total = float(sum(outcomes.values()))
    if total <= 0:
        raise ProblemError("outcome distribution is empty")
    return {key: value / total for key, value in outcomes.items()}


def _bits_from_key(key: str, num_variables: int) -> tuple[int, ...]:
    if len(key) < num_variables:
        raise ProblemError(
            f"bitstring {key!r} is shorter than the problem's {num_variables} variables"
        )
    return tuple(int(ch) for ch in key[:num_variables])


def in_constraints_rate(
    problem: ConstrainedBinaryProblem,
    outcomes: "SampleResult | Mapping[str, float]",
) -> float:
    """Probability mass on assignments satisfying every constraint."""
    distribution = _normalised_distribution(outcomes)
    rate = 0.0
    for key, probability in distribution.items():
        bits = _bits_from_key(key, problem.num_variables)
        if problem.is_feasible(bits):
            rate += probability
    return rate


def success_rate(
    problem: ConstrainedBinaryProblem,
    outcomes: "SampleResult | Mapping[str, float]",
    optimal_value: float | None = None,
    tolerance: float = 1e-9,
) -> float:
    """Probability mass on optimal feasible assignments.

    ``optimal_value`` may be passed to avoid re-solving the instance; when
    omitted it is computed by brute force.
    """
    if optimal_value is None:
        _, optimal_value = problem.brute_force_optimum()
    distribution = _normalised_distribution(outcomes)
    rate = 0.0
    for key, probability in distribution.items():
        bits = _bits_from_key(key, problem.num_variables)
        if not problem.is_feasible(bits):
            continue
        if abs(problem.evaluate(bits) - optimal_value) <= tolerance:
            rate += probability
    return rate


def approximation_ratio_gap(
    problem: ConstrainedBinaryProblem,
    outcomes: "SampleResult | Mapping[str, float]",
    optimal_value: float | None = None,
    penalty: float = DEFAULT_ARG_PENALTY,
) -> float:
    """The ARG metric of Eq. (17).

    ``ARG = | E[f(x) + penalty * ||C x - c||_1] / f(x_optimal) - 1 |``.
    A perfectly constrained solver with all mass on the optimum scores 0.
    """
    if optimal_value is None:
        _, optimal_value = problem.brute_force_optimum()
    if optimal_value == 0:
        # Shift both numerator and denominator to keep the ratio well-defined,
        # the standard convention when the optimum is zero.
        shift = 1.0
    else:
        shift = 0.0
    distribution = _normalised_distribution(outcomes)
    expectation = 0.0
    for key, probability in distribution.items():
        bits = _bits_from_key(key, problem.num_variables)
        value = problem.evaluate(bits) + penalty * problem.total_violation(bits)
        expectation += probability * (value + shift)
    return abs(expectation / (optimal_value + shift) - 1.0)


def expected_objective(
    problem: ConstrainedBinaryProblem,
    outcomes: "SampleResult | Mapping[str, float]",
    penalty: float = 0.0,
) -> float:
    """Expected (objective + penalty * violation) over the outcome distribution."""
    distribution = _normalised_distribution(outcomes)
    expectation = 0.0
    for key, probability in distribution.items():
        bits = _bits_from_key(key, problem.num_variables)
        expectation += probability * (
            problem.evaluate(bits) + penalty * problem.total_violation(bits)
        )
    return expectation


def best_measured(
    problem: ConstrainedBinaryProblem,
    outcomes: "SampleResult | Mapping[str, float]",
    require_feasible: bool = True,
) -> tuple[tuple[int, ...] | None, float | None]:
    """The best (feasible) assignment observed in the outcome distribution."""
    distribution = _normalised_distribution(outcomes)
    best_bits: tuple[int, ...] | None = None
    best_value: float | None = None
    for key in distribution:
        bits = _bits_from_key(key, problem.num_variables)
        if require_feasible and not problem.is_feasible(bits):
            continue
        value = problem.evaluate(bits)
        if best_value is None or problem.better(value, best_value):
            best_bits, best_value = bits, value
    return best_bits, best_value


@dataclass(frozen=True)
class MetricsReport:
    """The per-run metric bundle reported in Table II."""

    success_rate: float
    in_constraints_rate: float
    approximation_ratio_gap: float
    circuit_depth: int

    def as_row(self) -> dict[str, float]:
        return {
            "success_rate_percent": 100.0 * self.success_rate,
            "in_constraints_rate_percent": 100.0 * self.in_constraints_rate,
            "arg": self.approximation_ratio_gap,
            "depth": float(self.circuit_depth),
        }


def evaluate_outcomes(
    problem: ConstrainedBinaryProblem,
    outcomes: "SampleResult | Mapping[str, float]",
    circuit_depth: int = 0,
    optimal_value: float | None = None,
    arg_penalty: float = DEFAULT_ARG_PENALTY,
) -> MetricsReport:
    """Compute all Table-II metrics for one solver run."""
    if optimal_value is None:
        _, optimal_value = problem.brute_force_optimum()
    return MetricsReport(
        success_rate=success_rate(problem, outcomes, optimal_value),
        in_constraints_rate=in_constraints_rate(problem, outcomes),
        approximation_ratio_gap=approximation_ratio_gap(
            problem, outcomes, optimal_value, penalty=arg_penalty
        ),
        circuit_depth=circuit_depth,
    )
