"""Penalty (soft-constraint) encodings.

The penalty-based QAOA baseline (Section II-B, ref. [44]) folds the
constraints into the objective as quadratic penalty terms:

    f_penalty(x) = f_min(x) + lambda * sum_j (C_j x - c_j)^2

where ``f_min`` is the minimization form of the objective (maximization
problems are negated first).  The resulting unconstrained polynomial is the
QUBO handed to the penalty-QAOA and HEA solvers.

The module also provides the plain QUBO split (constant / linear / quadratic
coefficient maps) consumed by the phase-separation circuit builder.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.problem import ConstrainedBinaryProblem, Objective
from repro.exceptions import ProblemError


def squared_constraint_penalty(problem: ConstrainedBinaryProblem) -> Objective:
    """The polynomial ``sum_j (C_j x - c_j)^2`` over the problem's variables."""
    penalty = Objective()
    for constraint in problem.constraints:
        coefficients = constraint.coefficients
        rhs = constraint.rhs
        # (sum_i a_i x_i - c)^2 = sum_i a_i^2 x_i + 2 sum_{i<j} a_i a_j x_i x_j
        #                         - 2 c sum_i a_i x_i + c^2        (x_i^2 = x_i)
        penalty.add_term((), rhs * rhs)
        support = [i for i, a in enumerate(coefficients) if a != 0]
        for position, i in enumerate(support):
            a_i = coefficients[i]
            penalty.add_term((i,), a_i * a_i - 2.0 * rhs * a_i)
            for j in support[position + 1 :]:
                penalty.add_term((i, j), 2.0 * a_i * coefficients[j])
    return penalty


def penalty_objective(problem: ConstrainedBinaryProblem, penalty_weight: float) -> Objective:
    """The soft-constraint minimization objective ``f_min + lambda * penalty``."""
    if penalty_weight < 0:
        raise ProblemError("the penalty weight must be non-negative")
    return problem.minimization_objective() + penalty_weight * squared_constraint_penalty(problem)


def default_penalty_weight(problem: ConstrainedBinaryProblem) -> float:
    """A heuristic penalty coefficient.

    The weight must dominate the largest possible objective swing so that any
    constraint violation is never worth its objective gain; we use
    ``1 + sum |objective coefficients|``, the standard "big-M"-style choice.
    The paper's Fig. 1(a) discussion — too small fails to enforce the
    constraints, too large flattens the objective landscape — is exercised in
    the tests by sweeping around this value.
    """
    swing = sum(abs(coefficient) for coefficient in problem.objective.terms.values())
    return float(1.0 + swing)


def to_qubo(
    objective: Objective,
) -> tuple[float, dict[int, float], dict[tuple[int, int], float]]:
    """Split a (at most quadratic) polynomial into QUBO coefficient maps."""
    constant = 0.0
    linear: dict[int, float] = {}
    quadratic: dict[tuple[int, int], float] = {}
    for variables, coefficient in objective.terms.items():
        if len(variables) == 0:
            constant += coefficient
        elif len(variables) == 1:
            linear[variables[0]] = linear.get(variables[0], 0.0) + coefficient
        elif len(variables) == 2:
            key = (min(variables), max(variables))
            quadratic[key] = quadratic.get(key, 0.0) + coefficient
        else:
            raise ProblemError(
                f"QUBO encoding supports at most quadratic terms, got {variables}"
            )
    return constant, linear, quadratic


def qubo_matrix(objective: Objective, num_variables: int) -> np.ndarray:
    """Dense symmetric QUBO matrix ``Q`` with the linear terms on the diagonal.

    ``x^T Q x + constant`` equals the polynomial for binary ``x`` (the
    constant is dropped; retrieve it from :func:`to_qubo` if needed).
    """
    constant, linear, quadratic = to_qubo(objective)
    del constant
    matrix = np.zeros((num_variables, num_variables), dtype=float)
    for variable, weight in linear.items():
        matrix[variable, variable] += weight
    for (i, j), weight in quadratic.items():
        matrix[i, j] += weight / 2.0
        matrix[j, i] += weight / 2.0
    return matrix


def frozen_variables(problem: ConstrainedBinaryProblem, count: int = 1) -> list[tuple[int, int]]:
    """Pick "hotspot" variables to freeze, FrozenQubits-style.

    FrozenQubits [4] boosts penalty-QAOA fidelity by fixing the variables
    with the largest coupling degree in the QUBO and solving the sub-problems
    classically.  We reproduce the selection rule: rank variables by the
    number of quadratic terms they participate in (ties broken by total
    absolute weight) and freeze the top ``count`` to their locally best
    value (the sign of their linear coefficient in the minimization QUBO).
    """
    qubo = penalty_objective(problem, default_penalty_weight(problem))
    _, linear, quadratic = to_qubo(qubo)
    degree: dict[int, int] = {}
    weight: dict[int, float] = {}
    for (i, j), value in quadratic.items():
        for variable in (i, j):
            degree[variable] = degree.get(variable, 0) + 1
            weight[variable] = weight.get(variable, 0.0) + abs(value)
    ranked = sorted(
        range(problem.num_variables),
        key=lambda v: (degree.get(v, 0), weight.get(v, 0.0)),
        reverse=True,
    )
    frozen: list[tuple[int, int]] = []
    for variable in ranked[:count]:
        value = 0 if linear.get(variable, 0.0) >= 0 else 1
        frozen.append((variable, value))
    return frozen
