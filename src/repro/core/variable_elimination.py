"""Variable elimination (Section IV-C).

The decomposed driver's depth is proportional to the total number of
non-zero entries across the solution vectors ``u in Delta`` of ``C u = 0``.
Eliminating a variable — fixing it classically and enumerating both values —
shrinks the constraint matrix, and therefore the solution vectors, the
circuit depth, and the number of qubits, at the price of running the circuit
once per assignment of the eliminated variables (an exponential measurement
overhead in the number of eliminated variables).

The elimination heuristic follows the paper: pick the variable with the most
non-zero entries across all vectors of Delta.

:class:`EliminationPlan` captures which variables were eliminated and
provides the bookkeeping to (1) build the reduced problem for each
assignment of the eliminated variables and (2) lift bitstrings measured on
the reduced register back to assignments of the original problem.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.nullspace import ternary_nullspace_basis, variable_nonzero_counts
from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.exceptions import ProblemError


def choose_elimination_variables(
    problem: ConstrainedBinaryProblem,
    count: int,
    solutions: Sequence[Sequence[int]] | None = None,
) -> list[int]:
    """Pick ``count`` variables to eliminate.

    The paper's stated goal is "the variable that gives rise to a large
    reduction in the circuit depth", identified there by the non-zero count
    across the solution set Delta.  Because this reproduction drives the
    solver from the compact nullspace *basis* rather than the full Delta, the
    count rule alone can be a poor proxy, so we use a one-step lookahead:
    each candidate variable is tentatively fixed (its constraint column
    zeroed), the reduced basis recomputed, and the variable whose elimination
    minimises the remaining total non-zeros — the quantity the circuit depth
    is proportional to (Section IV-C) — is chosen.  Ties fall back to the
    paper's most-non-zeros rule.

    ``solutions`` optionally supplies the Delta set used for the tie-break
    ranking of the first pick.
    """
    if count < 0:
        raise ProblemError("count must be non-negative")
    if count == 0:
        return []
    chosen: list[int] = []
    matrix, _ = problem.constraint_matrix()
    if matrix.size == 0:
        raise ProblemError("variable elimination requires at least one constraint")
    current_matrix = matrix.copy()
    current_solutions = solutions
    for _ in range(count):
        if current_solutions is None:
            try:
                current_solutions = ternary_nullspace_basis(current_matrix)
            except ProblemError:
                break
        counts = variable_nonzero_counts(current_solutions, current_matrix.shape[1])
        best_pick: int | None = None
        best_key: tuple[float, float] | None = None
        for variable in range(problem.num_variables):
            if variable in chosen or counts[variable] <= 0:
                continue
            candidate_matrix = current_matrix.copy()
            candidate_matrix[:, variable] = 0.0
            try:
                reduced_basis = ternary_nullspace_basis(candidate_matrix)
                remaining_nonzeros = float(
                    sum(sum(1 for x in u if x != 0) for u in reduced_basis)
                )
            except ProblemError:
                # No moves left after elimination: the reduced problem is a
                # single classical point per assignment — maximal reduction.
                remaining_nonzeros = 0.0
            key = (remaining_nonzeros, -float(counts[variable]))
            if best_key is None or key < best_key:
                best_key = key
                best_pick = variable
        if best_pick is None:
            break
        chosen.append(best_pick)
        current_matrix = current_matrix.copy()
        current_matrix[:, best_pick] = 0.0
        current_solutions = None
    return chosen


@dataclass(frozen=True)
class ReducedInstance:
    """One reduced problem for a specific assignment of eliminated variables."""

    assignment: tuple[tuple[int, int], ...]  # (variable, value) pairs
    problem: ConstrainedBinaryProblem  # over the reduced (renumbered) register
    kept_variables: tuple[int, ...]  # reduced index -> original variable index

    def lift(self, reduced_bits: Sequence[int]) -> tuple[int, ...]:
        """Map a reduced-register bit assignment back to the original register."""
        original = [0] * (len(self.kept_variables) + len(self.assignment))
        for reduced_index, original_index in enumerate(self.kept_variables):
            original[original_index] = int(reduced_bits[reduced_index])
        for variable, value in self.assignment:
            original[variable] = value
        return tuple(original)


@dataclass
class EliminationPlan:
    """The set of reduced instances produced by eliminating some variables."""

    original: ConstrainedBinaryProblem
    eliminated: tuple[int, ...]
    instances: list[ReducedInstance] = field(default_factory=list)

    @property
    def num_circuits(self) -> int:
        """Measurement overhead: one circuit execution per reduced instance."""
        return len(self.instances)


def _renumber(
    problem: ConstrainedBinaryProblem, eliminated: Sequence[int]
) -> tuple[tuple[int, ...], dict[int, int]]:
    kept = tuple(v for v in range(problem.num_variables) if v not in set(eliminated))
    mapping = {original: reduced for reduced, original in enumerate(kept)}
    return kept, mapping


def build_elimination_plan(
    problem: ConstrainedBinaryProblem,
    variables: Sequence[int],
    skip_infeasible: bool = True,
) -> EliminationPlan:
    """Build the reduced instances for every assignment of ``variables``.

    Each assignment of the eliminated variables yields a reduced problem over
    the remaining (renumbered) variables whose constraints absorb the fixed
    values into their right-hand sides — exactly the transformation described
    in Section IV-C.  Assignments whose reduced constraint system has no
    binary solution are skipped when ``skip_infeasible`` is True (running
    that circuit would be wasted work).
    """
    variables = list(dict.fromkeys(int(v) for v in variables))
    for variable in variables:
        if not 0 <= variable < problem.num_variables:
            raise ProblemError(f"variable {variable} out of range")
    if len(variables) >= problem.num_variables:
        raise ProblemError("cannot eliminate every variable")
    kept, mapping = _renumber(problem, variables)
    plan = EliminationPlan(original=problem, eliminated=tuple(variables))

    from repro.core.feasibility import find_feasible_assignment
    from repro.exceptions import InfeasibleError

    for values in itertools.product((0, 1), repeat=len(variables)):
        fixed = problem
        for variable, value in zip(variables, values):
            fixed = fixed.fix_variable(variable, value)
        reduced_objective = Objective()
        for term_variables, coefficient in fixed.objective.terms.items():
            reduced_objective.add_term(
                tuple(mapping[v] for v in term_variables), coefficient
            )
        reduced_constraints = []
        for constraint in fixed.constraints:
            coefficients = [0.0] * len(kept)
            for original_index, coefficient in enumerate(constraint.coefficients):
                if coefficient != 0 and original_index in mapping:
                    coefficients[mapping[original_index]] = coefficient
            reduced_constraints.append(
                LinearConstraint(tuple(coefficients), constraint.rhs)
            )
        reduced_problem = ConstrainedBinaryProblem(
            num_variables=len(kept),
            objective=reduced_objective,
            constraints=reduced_constraints,
            sense=problem.sense,
            name=f"{problem.name}|eliminate{dict(zip(variables, values))}",
            variable_names=[problem.variable_names[v] for v in kept],
        )
        if skip_infeasible and reduced_problem.constraints:
            matrix, rhs = reduced_problem.constraint_matrix()
            try:
                find_feasible_assignment(matrix, rhs)
            except InfeasibleError:
                continue
        plan.instances.append(
            ReducedInstance(
                assignment=tuple(zip(variables, values)),
                problem=reduced_problem,
                kept_variables=kept,
            )
        )
    if not plan.instances:
        raise ProblemError("every assignment of the eliminated variables is infeasible")
    return plan
