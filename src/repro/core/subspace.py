"""Feasible-subspace coordinate map.

Choco-Q's central guarantee (Section III) is that the commute-Hamiltonian
evolution never leaves the feasible subspace ``F = {x in {0,1}^n : C x = c}``.
A dense statevector nevertheless carries an amplitude for every one of the
``2^n`` basis states — almost all of which are provably zero throughout the
run.  :class:`SubspaceMap` enumerates the feasible basis *once* (via the
pruned DFS of :mod:`repro.core.feasibility`) and assigns each feasible
bit assignment a compact *subspace coordinate* ``0 .. |F|-1``.

Everything the simulation path needs is then expressible over length-``|F|``
vectors:

* objective diagonals are evaluated directly on the feasible basis
  (:meth:`SubspaceMap.evaluate_polynomial`) without ever materialising the
  ``2^n`` diagonal;
* commute-Hamiltonian terms become pairing permutations over the feasible
  coordinates (see :meth:`CommuteHamiltonianTerm.subspace_pairing
  <repro.hamiltonian.commute.CommuteHamiltonianTerm.subspace_pairing>`);
* measurement distributions lift back to bitstring histograms through
  :meth:`SubspaceMap.bitstring_of`.

Because no object of size ``2^n`` is ever built, the practical qubit ceiling
is set by ``|F|`` rather than the Hilbert-space dimension, lifting the dense
simulator's ``max_qubits = 24`` cap for constrained instances.
"""

from __future__ import annotations

from functools import cached_property
from typing import Mapping, Sequence

import numpy as np

from repro.core.feasibility import iter_feasible_assignments
from repro.exceptions import InfeasibleError, ProblemError, SubspaceOverflowError

#: Chunk size (rows) of the streaming basis accumulator.  Large enough that
#: block bookkeeping is negligible, small enough that a map which overflows
#: its ``limit`` never holds more than one excess chunk in memory.
STREAM_CHUNK_ROWS = 4096


def stream_feasible_basis(
    constraint_matrix: Sequence[Sequence[float]] | np.ndarray,
    rhs: Sequence[float] | np.ndarray,
    limit: int | None = None,
    chunk_rows: int = STREAM_CHUNK_ROWS,
) -> np.ndarray:
    """Enumerate the binary solutions of ``C x = c`` into a bit matrix, lazily.

    The pruned DFS of :func:`repro.core.feasibility.iter_feasible_assignments`
    is consumed one assignment at a time into fixed-size ``uint8`` chunks —
    no intermediate list of Python tuples is ever materialised, so peak
    memory is about twice the final ``(|F|, n)`` uint8 basis (chunks plus
    the concatenated copy), far below the tuple list's cost.  As soon as
    the enumeration passes ``limit`` it aborts with
    :class:`SubspaceOverflowError` (without enumerating the rest of the
    feasible set), which is what makes an automatic dense fallback cheap for
    instances whose ``|F|`` turns out to be large.
    """
    matrix = np.atleast_2d(np.asarray(constraint_matrix, dtype=float))
    num_variables = matrix.shape[1]
    if chunk_rows < 1:
        raise ProblemError("chunk_rows must be positive")
    chunks: list[np.ndarray] = []
    current = np.empty((chunk_rows, num_variables), dtype=np.uint8)
    fill = 0
    count = 0
    for assignment in iter_feasible_assignments(matrix, rhs):
        if limit is not None and count >= limit:
            raise SubspaceOverflowError(
                f"the feasible set exceeds limit={limit}; a SubspaceMap must "
                "be complete — raise the limit or use the dense backend"
            )
        if fill == chunk_rows:
            chunks.append(current)
            # One allocation per *chunk*, amortised over chunk_rows feasible
            # assignments — streaming construction, not a per-iteration cost.
            current = np.empty((chunk_rows, num_variables), dtype=np.uint8)  # repro: ignore[hotpath]
            fill = 0
        current[fill] = assignment
        fill += 1
        count += 1
    chunks.append(current[:fill])
    return np.concatenate(chunks, axis=0) if len(chunks) > 1 else chunks[0].copy()


class SubspaceMap:
    """A bijection between feasible bit assignments and compact coordinates.

    Attributes:
        num_variables: the width ``n`` of the full register.
        basis: ``(|F|, n)`` uint8 array; row ``k`` is the bit assignment of
            subspace coordinate ``k`` (column ``i`` is variable/qubit ``i``).
    """

    def __init__(self, basis: np.ndarray, num_variables: int) -> None:
        basis = np.asarray(basis, dtype=np.uint8)
        if basis.ndim != 2 or basis.shape[1] != num_variables:
            raise ProblemError("basis must be a (|F|, num_variables) bit matrix")
        if basis.shape[0] == 0:
            raise InfeasibleError("the feasible subspace is empty")
        self.num_variables = int(num_variables)
        self.basis = basis
        # One-time map construction (the rank-lookup dict is built exactly
        # once per SubspaceMap); the solve path uses coordinates_of_rows.
        self._coordinate_by_key: dict[bytes, int] = {  # repro: ignore[hotpath]
            row.tobytes(): coordinate for coordinate, row in enumerate(basis)
        }
        if len(self._coordinate_by_key) != basis.shape[0]:
            raise ProblemError("the feasible basis contains duplicate assignments")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_constraints(
        cls,
        constraint_matrix: Sequence[Sequence[float]] | np.ndarray,
        rhs: Sequence[float] | np.ndarray,
        limit: int | None = None,
    ) -> "SubspaceMap":
        """Enumerate the binary solutions of ``C x = c`` into a map.

        ``limit`` is a guard, not a truncator: a map must hold the *complete*
        feasible basis (evolution and sampling renormalise over it), so if
        the feasible set exceeds ``limit`` the enumeration aborts early with
        :class:`SubspaceOverflowError` instead of returning a silently
        partial map.  Enumeration streams through fixed-size chunks (see
        :func:`stream_feasible_basis`), so construction never holds a Python
        list of the whole feasible set.
        """
        matrix = np.atleast_2d(np.asarray(constraint_matrix, dtype=float))
        basis = stream_feasible_basis(matrix, rhs, limit=limit)
        if basis.shape[0] == 0:
            raise InfeasibleError("the constraint system C x = c has no binary solution")
        return cls(basis, matrix.shape[1])

    @classmethod
    def try_from_constraints(
        cls,
        constraint_matrix: Sequence[Sequence[float]] | np.ndarray,
        rhs: Sequence[float] | np.ndarray,
        limit: int | None = None,
    ) -> "SubspaceMap | None":
        """Like :meth:`from_constraints`, but ``None`` past the size limit.

        The automatic-fallback entry point: callers that can also run a dense
        simulation treat ``None`` as "the feasible set is too large for a
        subspace win — use the dense backend".  Infeasibility still raises:
        that is a property of the problem, not of the backend choice.
        """
        try:
            return cls.from_constraints(constraint_matrix, rhs, limit=limit)
        except SubspaceOverflowError:
            return None

    @classmethod
    def from_problem(cls, problem, limit: int | None = None) -> "SubspaceMap":
        """The feasible subspace of a :class:`ConstrainedBinaryProblem`.

        Unconstrained problems have the full ``2^n`` cube as their feasible
        set, which defeats the purpose of the map; they are rejected.
        ``limit`` guards against oversized feasible sets (see
        :meth:`from_constraints`).
        """
        if not problem.constraints:
            raise ProblemError(
                "an unconstrained problem has no non-trivial feasible subspace; "
                "use the dense backend"
            )
        matrix, rhs = problem.constraint_matrix()
        return cls.from_constraints(matrix, rhs, limit=limit)

    @classmethod
    def try_from_problem(cls, problem, limit: int | None = None) -> "SubspaceMap | None":
        """Like :meth:`from_problem`, but ``None`` when a map buys nothing.

        Returns ``None`` for unconstrained problems (whose feasible set is
        the whole cube) and for feasible sets larger than ``limit`` — the
        two cases where a caller with a dense path should take it.
        Infeasible constraint systems still raise :class:`InfeasibleError`.
        """
        if not problem.constraints:
            return None
        matrix, rhs = problem.constraint_matrix()
        return cls.try_from_constraints(matrix, rhs, limit=limit)

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """The feasible-set cardinality ``|F|`` (the subspace dimension)."""
        return self.basis.shape[0]

    def __len__(self) -> int:
        return self.size

    def compression_ratio(self) -> float:
        """``2^n / |F|`` — the dense-state memory/work saved by the map."""
        return float(2.0**self.num_variables / self.size)

    def coordinate_of(self, bits: Sequence[int]) -> int:
        """Subspace coordinate of a feasible bit assignment."""
        key = np.asarray(bits, dtype=np.uint8)
        if key.shape != (self.num_variables,):
            raise ProblemError("bit assignment length must equal the register size")
        try:
            return self._coordinate_by_key[key.tobytes()]
        except KeyError:
            raise InfeasibleError(
                f"assignment {tuple(int(b) for b in bits)} is not in the feasible subspace"
            ) from None

    @cached_property
    def _packed_lookup(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray] | None":
        """``(bit_weights, sorted_keys, sort_order)`` for rank lookups.

        Each basis row packs into one int64 key (the row's dense basis
        index), sorted once so membership and coordinate queries become a
        binary search instead of a per-row dict lookup.  ``None`` beyond 62
        variables, where a single word cannot hold the key — callers then
        fall back to the dict.
        """
        if self.num_variables > 62:
            return None
        weights = (np.int64(1) << np.arange(self.num_variables, dtype=np.int64))
        keys = self.full_indices()  # the same little-endian packing, reused
        order = np.argsort(keys, kind="stable")
        return weights, keys[order], order

    def coordinates_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Subspace coordinates of a batch of feasible bit rows, vectorised.

        ``rows`` is ``(m, num_variables)``; returns the length-``m`` int64
        coordinate array such that ``basis[result[i]] == rows[i]``.  The
        whole batch resolves through one packed-integer ``searchsorted``
        over the sorted key table (built lazily, once per map); any row
        outside the feasible set raises :class:`InfeasibleError` exactly
        like :meth:`coordinate_of`.
        """
        rows = np.asarray(rows, dtype=np.uint8)
        if rows.ndim != 2 or rows.shape[1] != self.num_variables:
            raise ProblemError("rows must be an (m, num_variables) bit matrix")
        lookup = self._packed_lookup
        if lookup is None:
            # > 62 variables: one int64 word per key no longer fits; fall
            # back to the exact per-row dict path.
            return np.fromiter(
                (self.coordinate_of(row) for row in rows),
                dtype=np.int64,
                count=rows.shape[0],
            )
        weights, sorted_keys, order = lookup
        keys = rows.astype(np.int64) @ weights
        positions = np.searchsorted(sorted_keys, keys)
        positions = np.minimum(positions, sorted_keys.shape[0] - 1)
        coordinates = order[positions].astype(np.int64, copy=False)
        # Verify against the basis rows rather than the packed keys alone: a
        # non-binary entry (e.g. a stray 2) can alias a different feasible
        # row's key, and such rows must raise exactly like coordinate_of.
        found = (sorted_keys[positions] == keys) & np.all(
            self.basis[coordinates] == rows, axis=1
        )
        if not np.all(found):
            missing = rows[int(np.nonzero(~found)[0][0])]
            raise InfeasibleError(
                f"assignment {tuple(int(b) for b in missing)} is not in the "
                "feasible subspace"
            )
        return coordinates

    def contains(self, bits: Sequence[int]) -> bool:
        key = np.asarray(bits, dtype=np.uint8)
        return key.shape == (self.num_variables,) and key.tobytes() in self._coordinate_by_key

    def bits_of(self, coordinate: int) -> np.ndarray:
        """Bit assignment (uint8 array) of one subspace coordinate."""
        return self.basis[coordinate]

    def bitstring_of(self, coordinate: int) -> str:
        """Little-endian bitstring key of one subspace coordinate."""
        return "".join("1" if bit else "0" for bit in self.basis[coordinate])

    def bitstrings(self) -> list[str]:
        """All coordinate bitstrings, in coordinate order."""
        return [self.bitstring_of(coordinate) for coordinate in range(self.size)]

    def full_indices(self) -> np.ndarray:
        """Dense basis index of every coordinate (requires a small register)."""
        if self.num_variables > 62:
            raise ProblemError("dense basis indices overflow beyond 62 qubits")
        weights = (1 << np.arange(self.num_variables)).astype(np.int64)
        return self.basis.astype(np.int64) @ weights

    # ------------------------------------------------------------------
    # Vectors and diagonals
    # ------------------------------------------------------------------

    def basis_state(self, bits: Sequence[int]) -> np.ndarray:
        """The subspace statevector ``|x>`` for a feasible assignment."""
        state = np.zeros(self.size, dtype=complex)
        state[self.coordinate_of(bits)] = 1.0
        return state

    def evaluate_polynomial(self, terms: Mapping[tuple[int, ...], float]) -> np.ndarray:
        """Evaluate a binary polynomial on every feasible basis state.

        Returns the length-``|F|`` diagonal of the objective Hamiltonian
        restricted to the subspace — the exact sub-block of
        :meth:`DiagonalHamiltonian.from_polynomial
        <repro.hamiltonian.diagonal.DiagonalHamiltonian.from_polynomial>`
        without building the ``2^n`` vector.
        """
        values = np.zeros(self.size, dtype=float)
        bits = self.basis.astype(float)
        for variables, coefficient in terms.items():
            if coefficient == 0:
                continue
            # Cost-diagonal compilation: runs once per (problem, map), and
            # the loop is over polynomial terms, not basis states.
            product = np.ones(self.size, dtype=float)  # repro: ignore[hotpath]
            for variable in variables:
                if not 0 <= variable < self.num_variables:
                    raise ProblemError(
                        f"variable {variable} out of range for {self.num_variables} variables"
                    )
                product = product * bits[:, variable]
            values += coefficient * product
        return values

    def restrict_diagonal(self, diagonal: np.ndarray) -> np.ndarray:
        """Gather a dense ``2^n`` diagonal onto the feasible coordinates."""
        diagonal = np.asarray(diagonal)
        if diagonal.shape != (2**self.num_variables,):
            raise ProblemError("diagonal length must be 2^num_variables")
        return diagonal[self.full_indices()]

    def lift_vector(self, sub_state: np.ndarray) -> np.ndarray:
        """Scatter a subspace vector into the dense ``2^n`` statevector."""
        sub_state = np.asarray(sub_state)
        if sub_state.shape != (self.size,):
            raise ProblemError("subspace vector length must equal |F|")
        dense = np.zeros(2**self.num_variables, dtype=complex)
        dense[self.full_indices()] = sub_state
        return dense

    def project_vector(self, dense_state: np.ndarray) -> np.ndarray:
        """Gather the feasible amplitudes of a dense statevector."""
        dense_state = np.asarray(dense_state)
        if dense_state.shape != (2**self.num_variables,):
            raise ProblemError("dense vector length must be 2^num_variables")
        return dense_state[self.full_indices()].astype(complex)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SubspaceMap(num_variables={self.num_variables}, size={self.size})"
