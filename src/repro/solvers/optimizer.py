"""Classical parameter optimizers for the variational loops.

The paper uses COBYLA (constrained optimization by linear approximation,
ref. [39]) to update the QAOA parameters for every design it evaluates; this
module wraps SciPy's implementation and adds two gradient-free alternatives
(Nelder-Mead and SPSA) used in the ablation and robustness tests.

Each optimizer exposes the same ``minimize(cost, initial)`` interface and
records every cost evaluation in an :class:`~repro.solvers.base.OptimizationTrace`
so convergence curves (Fig. 9a) and iteration counts (Fig. 11b) can be
reconstructed afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import optimize as scipy_optimize

from repro.exceptions import SolverError
from repro.solvers.base import OptimizationTrace

CostFunction = Callable[[np.ndarray], float]


@dataclass
class OptimizerResult:
    """Outcome of one classical optimization run."""

    parameters: np.ndarray
    cost: float
    trace: OptimizationTrace
    num_iterations: int
    converged: bool


class Optimizer:
    """Base class: subclasses implement :meth:`_run`."""

    name = "optimizer"

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-4) -> None:
        if max_iterations < 1:
            raise SolverError("max_iterations must be positive")
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def minimize(self, cost: CostFunction, initial: Sequence[float]) -> OptimizerResult:
        initial = np.asarray(initial, dtype=float)
        trace = OptimizationTrace()

        def tracked(parameters: np.ndarray) -> float:
            value = float(cost(np.asarray(parameters, dtype=float)))
            trace.record(value, parameters)
            return value

        parameters, value, converged = self._run(tracked, initial)
        return OptimizerResult(
            parameters=np.asarray(parameters, dtype=float),
            cost=float(value),
            trace=trace,
            num_iterations=trace.num_iterations,
            converged=converged,
        )

    def _run(self, cost: CostFunction, initial: np.ndarray) -> tuple[np.ndarray, float, bool]:
        raise NotImplementedError


class CobylaOptimizer(Optimizer):
    """COBYLA — the parameter-update method used throughout the paper."""

    name = "cobyla"

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-4, rhobeg: float = 0.5) -> None:
        super().__init__(max_iterations=max_iterations, tolerance=tolerance)
        self.rhobeg = rhobeg

    def _run(self, cost: CostFunction, initial: np.ndarray) -> tuple[np.ndarray, float, bool]:
        result = scipy_optimize.minimize(
            cost,
            initial,
            method="COBYLA",
            options={
                "maxiter": self.max_iterations,
                "rhobeg": self.rhobeg,
                "tol": self.tolerance,
            },
        )
        return result.x, float(result.fun), bool(result.success)


class NelderMeadOptimizer(Optimizer):
    """Nelder-Mead simplex search; a common COBYLA alternative."""

    name = "nelder-mead"

    def _run(self, cost: CostFunction, initial: np.ndarray) -> tuple[np.ndarray, float, bool]:
        result = scipy_optimize.minimize(
            cost,
            initial,
            method="Nelder-Mead",
            options={"maxiter": self.max_iterations, "fatol": self.tolerance},
        )
        return result.x, float(result.fun), bool(result.success)


class SpsaOptimizer(Optimizer):
    """Simultaneous perturbation stochastic approximation.

    A standard choice when cost evaluations are noisy (shot-sampled); included
    for the robustness experiments.  Uses the usual gain sequences
    ``a_k = a / (k + 1 + A)^alpha`` and ``c_k = c / (k + 1)^gamma``.
    """

    name = "spsa"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        a: float = 0.2,
        c: float = 0.1,
        alpha: float = 0.602,
        gamma: float = 0.101,
        seed: int | None = None,
    ) -> None:
        super().__init__(max_iterations=max_iterations, tolerance=tolerance)
        self.a = a
        self.c = c
        self.alpha = alpha
        self.gamma = gamma
        self._rng = np.random.default_rng(seed)

    def _run(self, cost: CostFunction, initial: np.ndarray) -> tuple[np.ndarray, float, bool]:
        parameters = initial.copy()
        best_parameters = parameters.copy()
        best_value = cost(parameters)
        stability_offset = 0.1 * self.max_iterations
        for iteration in range(self.max_iterations):
            a_k = self.a / (iteration + 1 + stability_offset) ** self.alpha
            c_k = self.c / (iteration + 1) ** self.gamma
            delta = self._rng.choice([-1.0, 1.0], size=parameters.shape)
            value_plus = cost(parameters + c_k * delta)
            value_minus = cost(parameters - c_k * delta)
            gradient = (value_plus - value_minus) / (2.0 * c_k) * delta
            parameters = parameters - a_k * gradient
            value = cost(parameters)
            if value < best_value:
                best_value = value
                best_parameters = parameters.copy()
        return best_parameters, best_value, True


def make_optimizer(name: str, **kwargs) -> Optimizer:
    """Factory used by solver configuration."""
    registry = {
        "cobyla": CobylaOptimizer,
        "nelder-mead": NelderMeadOptimizer,
        "spsa": SpsaOptimizer,
    }
    key = name.lower()
    if key not in registry:
        raise SolverError(f"unknown optimizer {name!r}; available: {sorted(registry)}")
    return registry[key](**kwargs)
