"""Quantum and classical solvers for constrained binary optimization.

Contains the paper's contribution (:class:`ChocoQSolver`) and the three
baselines it is evaluated against (penalty QAOA, cyclic-Hamiltonian QAOA,
hardware-efficient ansatz), along with classical ground-truth solvers, the
classical optimizers shared by the variational loops, and the latency model.
"""

from repro.solvers.base import (
    LatencyBreakdown,
    OptimizationTrace,
    QuantumSolver,
    SolverResult,
)
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.classical import (
    BranchAndBoundSolver,
    ClassicalResult,
    ExhaustiveSolver,
    GreedyRoundingSolver,
)
from repro.solvers.config import NoiseConfig, SolverConfig, as_noise_config
from repro.solvers.cyclic_qaoa import CyclicQAOAConfig, CyclicQAOASolver, summation_chains
from repro.solvers.hea import HEAConfig, HEASolver
from repro.solvers.latency import LatencyEstimate, LatencyModel
from repro.solvers.optimizer import (
    CobylaOptimizer,
    NelderMeadOptimizer,
    Optimizer,
    OptimizerResult,
    SpsaOptimizer,
    make_optimizer,
)
from repro.solvers.penalty_qaoa import PenaltyQAOAConfig, PenaltyQAOASolver
from repro.solvers.variational import (
    AnsatzSpec,
    DenseStateBackend,
    EngineOptions,
    StateBackend,
    SubspaceStateBackend,
    VariationalEngine,
)

__all__ = [
    "AnsatzSpec",
    "DenseStateBackend",
    "StateBackend",
    "SubspaceStateBackend",
    "BranchAndBoundSolver",
    "ChocoQConfig",
    "ChocoQSolver",
    "ClassicalResult",
    "CobylaOptimizer",
    "CyclicQAOAConfig",
    "CyclicQAOASolver",
    "EngineOptions",
    "HEAConfig",
    "ExhaustiveSolver",
    "GreedyRoundingSolver",
    "HEASolver",
    "LatencyBreakdown",
    "LatencyEstimate",
    "LatencyModel",
    "NelderMeadOptimizer",
    "NoiseConfig",
    "OptimizationTrace",
    "Optimizer",
    "OptimizerResult",
    "PenaltyQAOAConfig",
    "PenaltyQAOASolver",
    "QuantumSolver",
    "SolverConfig",
    "SolverResult",
    "SpsaOptimizer",
    "VariationalEngine",
    "as_noise_config",
    "make_optimizer",
    "summation_chains",
]
