"""Shared variational execution engine.

Every solver in this package (penalty QAOA, cyclic QAOA, HEA, Choco-Q) is a
variational algorithm: a parameterised state-preparation routine, a diagonal
cost observable, a classical optimizer, and a final sampling step.  To keep
the individual solver modules focused on *what the ansatz is*, this module
implements the shared *how it runs*:

* :class:`AnsatzSpec` — the contract a solver provides: how to evolve a
  statevector for given parameters (fast simulation path), how to build the
  gate-level circuit for the same parameters (depth accounting, noisy
  execution), the cost diagonal, the initial state, and parameter metadata.
* :class:`StateBackend` — the pluggable state layout the ansatz evolves
  over.  :class:`DenseStateBackend` indexes amplitudes by the full ``2^n``
  computational basis; :class:`SubspaceStateBackend` indexes them by the
  compact coordinates of a feasible :class:`~repro.core.subspace.SubspaceMap`
  (length ``|F|``), so a COBYLA iteration scales with the feasible-set size
  instead of the Hilbert-space dimension.  ``AnsatzSpec.evolve``,
  ``initial_state`` and ``cost_diagonal`` must all live in the backend's
  layout; the backend converts final states to bitstring distributions and
  shot histograms.
* :class:`VariationalEngine` — the run loop: measure compilation cost, drive
  the classical optimizer against the exact expectation value, then sample
  the optimal state (ideally or through a noise model), and assemble a
  :class:`~repro.solvers.base.SolverResult` with depth and latency accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.core.problem import ConstrainedBinaryProblem
from repro.exceptions import SolverError
from repro.hamiltonian.compiled import (  # noqa: F401  (re-exported: solver front-ends import them from here)
    apply_diagonal_phase,
    prepare_ansatz_state,
)
from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.noise import NoiseModel
from repro.qcircuit.sampling import (
    SampleResult,
    exact_distribution,
    subspace_exact_distribution,
)
from repro.qcircuit.statevector import Statevector, abs_squared
from repro.qcircuit.passes.manager import MAX_OPTIMIZATION_LEVEL
from repro.qcircuit.transpile import (
    TranspileOptions,
    transpile,
    transpile_with_report,
    unitary_synthesis_penalty,
)
from repro.solvers.base import LatencyBreakdown, SolverResult
from repro.solvers.config import NoiseConfig, as_noise_config
from repro.solvers.latency import LatencyModel
from repro.solvers.optimizer import Optimizer

EvolveFunction = Callable[[np.ndarray], np.ndarray]
CircuitBuilder = Callable[[np.ndarray], QuantumCircuit]

#: Feasible-set size past which ``backend="auto"`` solvers abandon the
#: subspace map and fall back to the dense statevector.  At 2^16 entries the
#: map build and per-term pairing work start to rival a dense evolution on
#: the register sizes this package simulates, so beyond it the subspace
#: layout no longer pays for its construction.
DEFAULT_SUBSPACE_AUTO_LIMIT = 1 << 16

STATE_BACKEND_NAMES = ("dense", "subspace", "auto")


def validate_backend_choice(backend: str, subspace_limit: int | None) -> None:
    """Validate the (backend, subspace_limit) pair every solver config takes."""
    if backend not in STATE_BACKEND_NAMES:
        raise SolverError("backend must be 'dense', 'subspace' or 'auto'")
    if subspace_limit is not None and subspace_limit < 1:
        raise SolverError("subspace_limit must be positive")


def resolve_auto_subspace_limit(subspace_limit: int | None) -> int:
    """The dense-fallback threshold an ``auto`` backend actually uses."""
    return subspace_limit if subspace_limit is not None else DEFAULT_SUBSPACE_AUTO_LIMIT


class StateBackend:
    """How the simulated state is laid out, measured and sampled.

    A backend fixes the meaning of the amplitude vectors that
    ``AnsatzSpec.evolve`` consumes and produces, and converts the final
    state into the bitstring-keyed artefacts every solver reports.
    """

    name: str = "backend"

    @property
    def dimension(self) -> int:
        """Length of the amplitude vectors this backend evolves."""
        raise NotImplementedError

    def exact_distribution(self, state: np.ndarray) -> dict[str, float]:
        """Exact bitstring distribution of a final state."""
        raise NotImplementedError

    def sample(
        self, state: np.ndarray, shots: int, rng: np.random.Generator
    ) -> SampleResult:
        """Shot-sampled bitstring histogram of a final state."""
        raise NotImplementedError


class DenseStateBackend(StateBackend):
    """Amplitudes indexed by the full ``2^n`` computational basis."""

    name = "dense"

    def __init__(self, num_qubits: int) -> None:
        self.num_qubits = num_qubits

    @property
    def dimension(self) -> int:
        return 2**self.num_qubits

    def exact_distribution(self, state: np.ndarray) -> dict[str, float]:
        return exact_distribution(Statevector(data=state, num_qubits=self.num_qubits))

    def sample(
        self, state: np.ndarray, shots: int, rng: np.random.Generator
    ) -> SampleResult:
        return SampleResult.from_statevector(
            Statevector(data=state, num_qubits=self.num_qubits), shots=shots, rng=rng
        )


class SubspaceStateBackend(StateBackend):
    """Amplitudes indexed by the coordinates of a feasible subspace.

    Evolution, expectation and sampling all run over ``|F|`` entries; the
    :class:`~repro.core.subspace.SubspaceMap` lifts measured coordinates
    back to full-register bitstrings, so results are indistinguishable in
    format from the dense backend's.
    """

    name = "subspace"

    def __init__(self, subspace_map) -> None:
        self.subspace_map = subspace_map

    @property
    def dimension(self) -> int:
        return self.subspace_map.size

    def exact_distribution(self, state: np.ndarray) -> dict[str, float]:
        return subspace_exact_distribution(abs_squared(state), self.subspace_map)

    def sample(
        self, state: np.ndarray, shots: int, rng: np.random.Generator
    ) -> SampleResult:
        return SampleResult.from_subspace_probabilities(
            abs_squared(state), self.subspace_map, shots=shots, rng=rng
        )


@dataclass
class AnsatzSpec:
    """Everything the engine needs to run one variational ansatz.

    ``initial_state``, ``cost_diagonal`` and the vectors ``evolve`` maps
    between all live in the layout of ``backend`` (dense ``2^n`` when
    ``backend`` is None).  ``build_circuit`` always targets the full
    gate-level register regardless of backend.
    """

    name: str
    num_qubits: int
    initial_state: np.ndarray
    cost_diagonal: np.ndarray
    evolve: EvolveFunction
    build_circuit: CircuitBuilder
    initial_parameters: np.ndarray
    metadata: dict | None = None
    backend: StateBackend | None = None
    #: Optional vectorised evolution: maps a ``(k, num_parameters)`` batch of
    #: parameter vectors to the ``(k, dimension)`` batch of evolved states in
    #: one pass.  ``None`` means the ansatz only supports one vector at a
    #: time and batch helpers fall back to a Python loop over ``evolve``.
    evolve_batch: EvolveFunction | None = None


@dataclass
class EngineOptions:
    """Execution options shared by every solver.

    ``seed`` accepts anything :func:`np.random.default_rng` does — in
    particular a :class:`np.random.SeedSequence`, which the elimination
    pipeline uses to hand each sub-instance its own independent stream.

    ``multistart`` enables the batched initial-parameter picker: the engine
    scores that many candidate initial parameter vectors (the ansatz default
    plus ``multistart - 1`` random draws from a dedicated seed stream) in one
    :func:`batched_expectations` sweep and hands the best basin to the
    optimizer.  ``1`` (the default) keeps the ansatz default untouched.

    Noise comes in two spellings.  ``noise`` is the *serializable* one — a
    :class:`~repro.solvers.config.NoiseConfig` (or a device name / dict,
    normalised on construction) the engine materialises at run time with a
    deterministic SeedSequence child of ``seed``, so noisy runs reproduce
    bit-identically across process boundaries.  ``noise_model`` injects a
    prebuilt :class:`~repro.qcircuit.noise.NoiseModel` directly (its RNG
    state is whatever the caller made it); the two are mutually exclusive.
    ``noisy_trajectories`` applies to the ``noise_model`` path — a ``noise``
    config carries its own trajectory count.

    ``optimization_level`` selects the transpiler's optimization pipeline
    for both depth accounting and noisy execution (``None`` means the
    package default, :data:`~repro.qcircuit.passes.manager.
    DEFAULT_OPTIMIZATION_LEVEL`); ``0`` reproduces the pre-pass-stack
    lowering bit for bit.
    """

    shots: int = 4096
    seed: int | np.random.SeedSequence | None = None
    noise_model: NoiseModel | None = None
    latency_model: LatencyModel | None = None
    transpile_for_depth: bool = True
    noisy_trajectories: int = 16
    multistart: int = 1
    noise: NoiseConfig | str | dict | None = None
    optimization_level: int | None = None

    def __post_init__(self) -> None:
        if self.multistart < 1:
            raise SolverError("multistart must be at least 1")
        if self.optimization_level is not None and not (
            0 <= self.optimization_level <= MAX_OPTIMIZATION_LEVEL
        ):
            raise SolverError(
                "optimization_level must be None or between 0 and "
                f"{MAX_OPTIMIZATION_LEVEL}"
            )
        self.noise = as_noise_config(self.noise)
        if self.noise is not None and self.noise_model is not None:
            raise SolverError(
                "pass either a serializable noise config or a prebuilt "
                "noise_model, not both"
            )

    def with_noise(self, noise: "NoiseConfig | None") -> "EngineOptions":
        """These options with a solver config's ``noise`` folded in.

        Options-level noise settings win: the config's scenario applies only
        when neither ``noise`` nor ``noise_model`` is already set, so a
        caller-constructed model is never silently replaced.
        """
        if noise is None or self.noise is not None or self.noise_model is not None:
            return self
        return replace(self, noise=noise)

    def transpile_options(self) -> TranspileOptions:
        """The transpiler options these engine options select."""
        if self.optimization_level is None:
            return TranspileOptions()
        return TranspileOptions(optimization_level=self.optimization_level)


#: Spawn-key component reserving an independent SeedSequence stream for the
#: multistart candidate draws, so enabling the picker never perturbs the
#: sampling RNG (which consumes ``options.seed`` directly).
_MULTISTART_SPAWN_KEY = 0x6D73  # "ms"

#: Spawn-key component reserving an independent SeedSequence stream for the
#: noise model built from ``EngineOptions.noise``, so noisy trajectories and
#: readout flips are reproducible without perturbing the sampling RNG.
_NOISE_SPAWN_KEY = 0x6E7A  # "nz"


def child_seed_sequence(
    seed: "int | np.random.SeedSequence | None", key: int
) -> np.random.SeedSequence:
    """An independent SeedSequence child of ``seed`` for stream ``key``.

    Built explicitly — never via ``spawn()``, which advances a caller-owned
    sequence's child counter and would make repeated runs diverge.  The one
    derivation behind every reserved stream in the package: the multistart
    candidate draws, the noise model, and the elimination pipeline's
    per-sub-instance streams.
    """
    base = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return np.random.SeedSequence(
        entropy=base.entropy,
        spawn_key=tuple(base.spawn_key) + (key,),
    )


def noise_seed_sequence(
    seed: "int | np.random.SeedSequence | None",
) -> np.random.SeedSequence:
    """The SeedSequence child reserved for the run's noise model, so the
    same run seed always yields the same noise stream, in-process or on a
    plan worker."""
    return child_seed_sequence(seed, _NOISE_SPAWN_KEY)


class VariationalEngine:
    """Runs the optimize-then-sample loop for one :class:`AnsatzSpec`."""

    def __init__(self, optimizer: Optimizer, options: EngineOptions | None = None) -> None:
        self.optimizer = optimizer
        self.options = options or EngineOptions()

    def _pick_multistart_basin(self, spec: AnsatzSpec) -> tuple[np.ndarray, dict]:
        """Score k candidate initial vectors in one batched sweep; keep the best.

        Candidate 0 is always the ansatz default, so multistart can only
        improve on (never regress below) the single-start initial cost.  The
        random candidates come from a reserved :func:`child_seed_sequence`
        stream, so enabling the picker never perturbs the sampling RNG.
        """
        k = self.options.multistart
        rng = np.random.default_rng(
            child_seed_sequence(self.options.seed, _MULTISTART_SPAWN_KEY)
        )
        default = np.asarray(spec.initial_parameters, dtype=float)
        candidates = np.vstack(
            [default[np.newaxis, :], rng.uniform(-np.pi, np.pi, size=(k - 1, default.size))]
        )
        scores = batched_expectations(spec, candidates)
        best = int(np.argmin(scores))
        metadata = {
            "multistart": k,
            "multistart_best_index": best,
            "multistart_scores": [float(score) for score in scores],
        }
        return candidates[best], metadata

    # ------------------------------------------------------------------

    def run(self, spec: AnsatzSpec, problem: ConstrainedBinaryProblem) -> SolverResult:
        rng = np.random.default_rng(self.options.seed)
        backend = spec.backend or DenseStateBackend(spec.num_qubits)

        # ---- compilation (circuit construction + lowering) --------------
        compile_start = time.perf_counter()
        reference_circuit = spec.build_circuit(spec.initial_parameters)
        transpile_options = self.options.transpile_options()
        transpile_report = None
        if self.options.transpile_for_depth:
            transpiled, transpile_report = transpile_with_report(
                reference_circuit, transpile_options
            )
            transpiled_depth = transpiled.depth() + unitary_synthesis_penalty(
                transpiled
            )
        else:
            transpiled = reference_circuit
            transpiled_depth = reference_circuit.depth()
        compilation_seconds = time.perf_counter() - compile_start

        # ---- classical optimization against the exact expectation -------
        classical_start = time.perf_counter()

        def cost(parameters: np.ndarray) -> float:
            state = spec.evolve(parameters)
            # Deliberately np.abs(...)**2, not abs_squared: the two round
            # differently in the last ulp, and the optimizer trajectory is
            # pinned bit-for-bit by the cross-backend equivalence tests —
            # the hot-path micro-opt is reserved for the sampling/support
            # reductions, which no trajectory depends on.
            probabilities = np.abs(state) ** 2
            return float(np.dot(probabilities, spec.cost_diagonal))

        initial_parameters = spec.initial_parameters
        multistart_metadata: dict = {}
        if self.options.multistart > 1:
            initial_parameters, multistart_metadata = self._pick_multistart_basin(spec)

        optimizer_result = self.optimizer.minimize(cost, initial_parameters)
        classical_seconds = time.perf_counter() - classical_start

        # ---- final state and sampling -----------------------------------
        noise_model = self.options.noise_model
        noise_config = self.options.noise
        noise_mode = "trajectory"
        noise_trajectories = self.options.noisy_trajectories
        if noise_config is not None:
            # Materialise the serializable scenario here, seeded from a
            # dedicated SeedSequence child of the run seed: a plan worker
            # executing this spec reproduces the sequential run bit for bit.
            noise_model = noise_config.build_model(
                seed=noise_seed_sequence(self.options.seed)
            )
            noise_mode = noise_config.mode
            noise_trajectories = noise_config.trajectories

        if noise_model is not None:
            # A zero-shot run (e.g. an elimination sub-instance whose share of
            # the budget rounded to nothing) has an empty histogram; the noise
            # model rejects shots=0, so short-circuit it.
            if self.options.shots > 0:
                final_circuit = spec.build_circuit(optimizer_result.parameters)
                # Simulate the circuit a device would actually run: the same
                # optimization pipeline the depth accounting used, so the
                # noise cost tracks the *optimized* gate counts.
                noisy_target = transpile(final_circuit, transpile_options)
                if noise_mode == "analytical":
                    outcomes = noise_model.sample_analytical(
                        noisy_target, shots=self.options.shots
                    )
                else:
                    outcomes = noise_model.sample(
                        noisy_target,
                        shots=self.options.shots,
                        trajectories=noise_trajectories,
                    )
            else:
                outcomes = SampleResult()
            reported_distribution = None
        else:
            # The final evolve lives here on purpose: the noise branch
            # re-simulates at the gate level, so computing the fast-path
            # state there would be pure waste.
            final_state_vector = spec.evolve(optimizer_result.parameters)
            outcomes = backend.sample(final_state_vector, self.options.shots, rng)
            reported_distribution = backend.exact_distribution(final_state_vector)

        # ---- latency accounting -----------------------------------------
        latency_model = self.options.latency_model or LatencyModel()
        estimate = latency_model.estimate(
            transpiled,
            iterations=max(optimizer_result.num_iterations, 1),
            shots=self.options.shots,
            compilation_seconds=compilation_seconds,
        )
        latency = LatencyBreakdown(
            compilation=estimate.compilation,
            quantum_execution=estimate.quantum_execution,
            classical_processing=estimate.classical_processing + classical_seconds,
        )

        metadata = dict(spec.metadata or {})
        metadata.update(multistart_metadata)
        metadata.update(
            {
                "iterations": optimizer_result.num_iterations,
                "optimizer": self.optimizer.name,
                "final_cost": optimizer_result.cost,
                "circuit_duration_s": estimate.circuit_duration,
                "state_backend": backend.name,
            }
        )
        if transpile_report is not None:
            metadata["transpile_report"] = transpile_report.to_dict()
        if noise_config is not None:
            metadata["noise"] = noise_config.to_dict()
        return SolverResult(
            solver_name=spec.name,
            problem_name=problem.name,
            outcomes=outcomes,
            exact_distribution=reported_distribution,
            optimal_parameters=optimizer_result.parameters,
            trace=optimizer_result.trace,
            circuit_depth=reference_circuit.depth(),
            transpiled_depth=transpiled_depth,
            num_qubits=spec.num_qubits,
            num_two_qubit_gates=transpiled.num_two_qubit_gates(),
            latency=latency,
            metadata=metadata,
        )


# ---------------------------------------------------------------------------
# Batched evolution over parameter sets (COBYLA restarts / parameter sweeps)
# ---------------------------------------------------------------------------


def evolve_parameter_sets(spec: AnsatzSpec, parameter_sets: np.ndarray) -> np.ndarray:
    """Evolve several parameter vectors at once into a ``(k, dim)`` batch.

    ``parameter_sets`` is ``(k, num_parameters)`` (a single vector is
    promoted to ``k = 1``).  When the spec provides ``evolve_batch`` the
    whole sweep runs as one stack of array operations over the backend
    layout — for the subspace backend that is ``(k, |F|)`` work per term, so
    vectorising COBYLA restarts or a parameter grid costs one evolution's
    worth of Python overhead instead of ``k``.  Rows of the result are
    bit-identical to calling ``spec.evolve`` on each vector.
    """
    parameter_sets = np.atleast_2d(np.asarray(parameter_sets, dtype=float))
    if parameter_sets.ndim != 2:
        raise SolverError("parameter_sets must be a (k, num_parameters) array")
    if spec.evolve_batch is not None:
        return np.asarray(spec.evolve_batch(parameter_sets))
    return np.stack([spec.evolve(parameters) for parameters in parameter_sets])


def batched_expectations(spec: AnsatzSpec, parameter_sets: np.ndarray) -> np.ndarray:
    """Exact cost expectation of every parameter vector in one sweep.

    Returns a length-``k`` array; entry ``j`` equals the sequential cost
    ``<psi(theta_j)| H_o |psi(theta_j)>`` the optimizer loop computes,
    bit for bit.
    """
    states = evolve_parameter_sets(spec, parameter_sets)
    probabilities = np.abs(states) ** 2
    # Reduce row-by-row with the same np.dot the optimizer's cost function
    # uses: a (k, d) @ (d,) matvec may route through a differently-rounded
    # BLAS kernel, which would break the bit-for-bit guarantee above.
    return np.array(
        [float(np.dot(row, spec.cost_diagonal)) for row in probabilities]
    )


# ---------------------------------------------------------------------------
# Shared dense-simulation helpers used by the solver front-ends
# ---------------------------------------------------------------------------


def basis_state(num_qubits: int, bits: "list[int] | tuple[int, ...]") -> np.ndarray:
    """Dense basis state from a bit assignment (qubit i = bits[i])."""
    if len(bits) != num_qubits:
        raise SolverError("bit assignment length must equal the register size")
    return Statevector.from_bitstring(list(bits)).data


def uniform_state(num_qubits: int) -> np.ndarray:
    """Dense uniform superposition (|+>^n)."""
    return Statevector.uniform_superposition(num_qubits).data


def apply_rx_layer(state: np.ndarray, beta: float, num_qubits: int) -> np.ndarray:
    """Apply ``e^{-i beta X_j}`` on every qubit (the standard QAOA mixer)."""
    cos_b = np.cos(beta)
    sin_b = np.sin(beta)
    for qubit in range(num_qubits):
        state = _apply_single_qubit_mix(state, qubit, cos_b, -1j * sin_b)
    return state


def _apply_single_qubit_mix(
    state: np.ndarray, qubit: int, diagonal: complex, off_diagonal: complex
) -> np.ndarray:
    """Apply ``[[d, o], [o, d]]`` on one qubit of a dense state (vectorised)."""
    indices = np.arange(len(state))
    zero_mask = (indices >> qubit) & 1 == 0
    zero_indices = indices[zero_mask]
    one_indices = zero_indices | (1 << qubit)
    new_state = state.copy()
    amplitude_zero = state[zero_indices]
    amplitude_one = state[one_indices]
    new_state[zero_indices] = diagonal * amplitude_zero + off_diagonal * amplitude_one
    new_state[one_indices] = diagonal * amplitude_one + off_diagonal * amplitude_zero
    return new_state


def apply_ry(state: np.ndarray, qubit: int, theta: float) -> np.ndarray:
    """Apply an RY rotation on one qubit of a dense state."""
    cos_t = np.cos(theta / 2.0)
    sin_t = np.sin(theta / 2.0)
    indices = np.arange(len(state))
    zero_mask = (indices >> qubit) & 1 == 0
    zero_indices = indices[zero_mask]
    one_indices = zero_indices | (1 << qubit)
    new_state = state.copy()
    amplitude_zero = state[zero_indices]
    amplitude_one = state[one_indices]
    new_state[zero_indices] = cos_t * amplitude_zero - sin_t * amplitude_one
    new_state[one_indices] = sin_t * amplitude_zero + cos_t * amplitude_one
    return new_state


def apply_cz_chain(state: np.ndarray, num_qubits: int) -> np.ndarray:
    """Apply CZ between consecutive qubits (the HEA entangling layer)."""
    indices = np.arange(len(state))
    phase = np.ones(len(state), dtype=complex)
    for qubit in range(num_qubits - 1):
        both_one = (((indices >> qubit) & 1) == 1) & (((indices >> (qubit + 1)) & 1) == 1)
        phase[both_one] *= -1.0
    return state * phase
