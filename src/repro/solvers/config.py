"""Shared machinery for solver configuration dataclasses.

Every solver in the package carries a frozen ``*Config`` dataclass
(:class:`~repro.solvers.chocoq.ChocoQConfig`,
:class:`~repro.solvers.penalty_qaoa.PenaltyQAOAConfig`,
:class:`~repro.solvers.cyclic_qaoa.CyclicQAOAConfig`,
:class:`~repro.solvers.hea.HEAConfig`).  They all mix in
:class:`SolverConfig`, which provides

* the validation shared by every solver — ``num_layers`` must be positive
  and ``(backend, subspace_limit)`` must name a known state layout — run
  once from ``__post_init__`` instead of being re-implemented in each
  constructor, plus a ``_validate`` hook for solver-specific rules;
* a ``to_dict()`` / ``from_dict()`` round-trip over the dataclass fields,
  the serialization contract the :mod:`repro.run` experiment runner uses to
  persist and content-hash run specifications;
* ``replace(**overrides)`` for building a tweaked copy, the primitive the
  ``repro.solve`` facade uses to merge keyword overrides into a base config.

Unknown keys are rejected with :class:`~repro.exceptions.SolverError` (not a
bare ``TypeError``) so a typo in a serialized experiment spec fails with the
same error family as every other solver misconfiguration.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, TypeVar

from repro.exceptions import SolverError

ConfigT = TypeVar("ConfigT", bound="SolverConfig")


def validate_positive_layers(num_layers: int) -> None:
    """The ``num_layers`` check shared by every solver config."""
    if num_layers < 1:
        raise SolverError("num_layers must be positive")


class SolverConfig:
    """Mixin for frozen solver-config dataclasses.

    Subclasses are ``@dataclass(frozen=True)`` declarations; this base
    supplies shared validation and the dict round-trip.  Solver-specific
    validation goes in :meth:`_validate`, not ``__post_init__`` (which the
    base owns so the shared checks always run).
    """

    def __post_init__(self) -> None:
        field_names = {field.name for field in dataclasses.fields(self)}
        if "num_layers" in field_names:
            validate_positive_layers(self.num_layers)  # type: ignore[attr-defined]
        if "backend" in field_names:
            # Imported lazily: variational.py is a heavier module and config
            # classes are imported by everything.
            from repro.solvers.variational import validate_backend_choice

            validate_backend_choice(
                self.backend,  # type: ignore[attr-defined]
                getattr(self, "subspace_limit", None),
            )
        self._validate()

    def _validate(self) -> None:
        """Solver-specific validation hook (default: nothing extra)."""

    # ------------------------------------------------------------------
    # Serialization round-trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The config as a plain JSON-serializable dict of its fields."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    @classmethod
    def from_dict(cls: type[ConfigT], data: Mapping[str, Any]) -> ConfigT:
        """Rebuild a config from :meth:`to_dict` output (validating keys)."""
        cls._check_known_keys(data)
        return cls(**dict(data))

    def replace(self: ConfigT, **overrides: Any) -> ConfigT:
        """A copy with ``overrides`` applied (re-validated on construction)."""
        self._check_known_keys(overrides)
        return dataclasses.replace(self, **overrides)

    @classmethod
    def _check_known_keys(cls, data: Mapping[str, Any]) -> None:
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SolverError(
                f"unknown {cls.__name__} field(s) {unknown}; known fields: {sorted(known)}"
            )


def resolve_config_argument(
    config: Any, config_kwargs: Mapping[str, Any], config_cls: type[ConfigT]
) -> ConfigT:
    """The shared ``__init__(config=None, ..., **kwargs)`` shim of every solver.

    Exactly one of ``config`` / ``config_kwargs`` may be given; ``config``
    must be an instance of ``config_cls`` (an int or dict sliding into the
    first positional slot fails fast here instead of deep inside ``solve``).
    """
    if config_kwargs:
        if config is not None:
            raise SolverError("pass either a config or config keywords, not both")
        return config_cls.from_dict(config_kwargs)
    if config is None:
        return config_cls()
    if not isinstance(config, config_cls):
        raise SolverError(
            f"config must be a {config_cls.__name__} (or None), got {type(config).__name__}"
        )
    return config
