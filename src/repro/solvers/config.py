"""Shared machinery for solver configuration dataclasses.

Every solver in the package carries a frozen ``*Config`` dataclass
(:class:`~repro.solvers.chocoq.ChocoQConfig`,
:class:`~repro.solvers.penalty_qaoa.PenaltyQAOAConfig`,
:class:`~repro.solvers.cyclic_qaoa.CyclicQAOAConfig`,
:class:`~repro.solvers.hea.HEAConfig`).  They all mix in
:class:`SolverConfig`, which provides

* the validation shared by every solver — ``num_layers`` must be positive,
  ``(backend, subspace_limit)`` must name a known state layout, and a
  ``noise`` field must describe a valid :class:`NoiseConfig` — run
  once from ``__post_init__`` instead of being re-implemented in each
  constructor, plus a ``_validate`` hook for solver-specific rules;
* a ``to_dict()`` / ``from_dict()`` round-trip over the dataclass fields
  (nested configs such as ``noise`` serialize recursively), the
  serialization contract the :mod:`repro.run` experiment runner uses to
  persist and content-hash run specifications;
* ``replace(**overrides)`` for building a tweaked copy, the primitive the
  ``repro.solve`` facade uses to merge keyword overrides into a base config.

:class:`NoiseConfig` itself lives here too: it is the *serializable
description* of a device-noise scenario — the executable
:class:`~repro.qcircuit.noise.NoiseModel` it builds stays in the qcircuit
layer — so a noisy run is addressable as pure data exactly like every other
config knob.

Unknown keys are rejected with :class:`~repro.exceptions.SolverError` (not a
bare ``TypeError``) so a typo in a serialized experiment spec fails with the
same error family as every other solver misconfiguration.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Mapping, TypeVar

from repro.exceptions import NoiseModelError, SolverError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.qcircuit.noise import DeviceProfile, NoiseModel

ConfigT = TypeVar("ConfigT", bound="SolverConfig")


def validate_positive_layers(num_layers: int) -> None:
    """The ``num_layers`` check shared by every solver config."""
    if num_layers < 1:
        raise SolverError("num_layers must be positive")


class SolverConfig:
    """Mixin for frozen solver-config dataclasses.

    Subclasses are ``@dataclass(frozen=True)`` declarations; this base
    supplies shared validation and the dict round-trip.  Solver-specific
    validation goes in :meth:`_validate`, not ``__post_init__`` (which the
    base owns so the shared checks always run).
    """

    def __post_init__(self) -> None:
        field_names = {field.name for field in dataclasses.fields(self)}
        if "num_layers" in field_names:
            validate_positive_layers(self.num_layers)  # type: ignore[attr-defined]
        if "backend" in field_names:
            # Imported lazily: variational.py is a heavier module and config
            # classes are imported by everything.
            from repro.solvers.variational import validate_backend_choice

            validate_backend_choice(
                self.backend,  # type: ignore[attr-defined]
                getattr(self, "subspace_limit", None),
            )
        if "noise" in field_names:
            # Normalise the serialized forms (device name, dict) into one
            # validated NoiseConfig so every downstream consumer sees a
            # single type.  object.__setattr__ because subclasses are frozen.
            object.__setattr__(
                self, "noise", as_noise_config(self.noise)  # type: ignore[attr-defined]
            )
        self._validate()

    def _validate(self) -> None:
        """Solver-specific validation hook (default: nothing extra)."""

    # ------------------------------------------------------------------
    # Serialization round-trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The config as a plain JSON-serializable dict of its fields.

        Nested configs (a ``noise`` field holding a :class:`NoiseConfig`)
        serialize recursively, so the output is always plain JSON types.
        """
        data: dict[str, Any] = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            data[field.name] = value.to_dict() if isinstance(value, SolverConfig) else value
        return data

    @classmethod
    def from_dict(cls: type[ConfigT], data: Mapping[str, Any]) -> ConfigT:
        """Rebuild a config from :meth:`to_dict` output (validating keys)."""
        cls._check_known_keys(data)
        return cls(**dict(data))

    def replace(self: ConfigT, **overrides: Any) -> ConfigT:
        """A copy with ``overrides`` applied (re-validated on construction)."""
        self._check_known_keys(overrides)
        return dataclasses.replace(self, **overrides)

    @classmethod
    def _check_known_keys(cls, data: Mapping[str, Any]) -> None:
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SolverError(
                f"unknown {cls.__name__} field(s) {unknown}; known fields: {sorted(known)}"
            )


# ---------------------------------------------------------------------------
# Serializable noise scenarios
# ---------------------------------------------------------------------------

NOISE_MODES = ("trajectory", "analytical")

#: Field names a NoiseConfig may use to override profile error rates.
_NOISE_RATE_FIELDS = ("single_qubit_error", "two_qubit_error", "readout_error")


@dataclasses.dataclass(frozen=True)
class NoiseConfig(SolverConfig):
    """Serializable description of a device-noise scenario.

    This is the pure-data form of a :class:`~repro.qcircuit.noise.NoiseModel`:
    it rides inside solver configs, :class:`~repro.run.RunSpec` grids and
    JSONL caches, and is materialised into an executable model (seeded
    deterministically by the engine) only at run time.

    Attributes:
        device: name of a calibrated profile from
            :data:`~repro.qcircuit.noise.DEVICE_PROFILES` (``"fez"``,
            ``"osaka"``, ``"sherbrooke"``; case-insensitive), or ``None``
            to build a custom profile purely from the explicit rates below.
        single_qubit_error: depolarizing error probability per 1-qubit gate;
            ``None`` keeps the device profile's rate (0 without a device).
        two_qubit_error: native 2-qubit gate error probability; ``None``
            keeps the profile's rate.
        readout_error: per-bit readout flip probability; ``None`` keeps the
            profile's rate.
        mode: ``"trajectory"`` samples Monte-Carlo Pauli-error trajectories
            (:meth:`~repro.qcircuit.noise.NoiseModel.sample`);
            ``"analytical"`` uses the first-order success-probability
            shortcut (:meth:`~repro.qcircuit.noise.NoiseModel
            .sample_analytical`), much cheaper on deep circuits.
        trajectories: trajectory count for ``mode="trajectory"``.
        readout: ``False`` disables readout error entirely (overriding both
            the profile and an explicit ``readout_error``).
    """

    device: str | None = None
    single_qubit_error: float | None = None
    two_qubit_error: float | None = None
    readout_error: float | None = None
    mode: str = "trajectory"
    trajectories: int = 16
    readout: bool = True

    def _validate(self) -> None:
        if self.mode not in NOISE_MODES:
            raise SolverError(
                f"noise mode must be one of {NOISE_MODES}, got {self.mode!r}"
            )
        if self.trajectories < 1:
            raise SolverError("trajectories must be positive")
        if self.device is None and all(
            getattr(self, name) is None for name in _NOISE_RATE_FIELDS
        ):
            raise SolverError(
                "a NoiseConfig needs a device profile name or at least one "
                "explicit error rate"
            )
        for name in _NOISE_RATE_FIELDS:
            rate = getattr(self, name)
            if rate is not None and not 0.0 <= float(rate) <= 1.0:
                raise SolverError(f"{name} must be within [0, 1], got {rate!r}")
        if self.device is not None:
            from repro.qcircuit.noise import get_device_profile

            try:
                profile = get_device_profile(self.device)
            except NoiseModelError as error:
                # Re-raise in the config-error family so a typoed device in a
                # serialized spec fails like any other bad config field.
                raise SolverError(str(error)) from error
            # Canonicalise case so "Fez" and "fez" are one scenario — equal
            # as configs and identical in a RunSpec content hash.
            object.__setattr__(self, "device", profile.name)

    def profile(self) -> "DeviceProfile":
        """The resolved :class:`~repro.qcircuit.noise.DeviceProfile`.

        Starts from the named device profile (or an error-free custom base),
        applies the explicit rate overrides, and zeroes the readout error
        when the ``readout`` toggle is off.
        """
        from repro.qcircuit.noise import DeviceProfile, get_device_profile

        if self.device is not None:
            base = get_device_profile(self.device)
        else:
            base = DeviceProfile(
                name="custom",
                single_qubit_error=0.0,
                two_qubit_error=0.0,
                readout_error=0.0,
            )
        overrides: dict[str, float] = {
            name: float(getattr(self, name))
            for name in _NOISE_RATE_FIELDS
            if getattr(self, name) is not None
        }
        if not self.readout:
            overrides["readout_error"] = 0.0
        return dataclasses.replace(base, **overrides) if overrides else base

    def build_model(self, seed=None) -> "NoiseModel":
        """An executable :class:`~repro.qcircuit.noise.NoiseModel`.

        ``seed`` accepts anything :func:`numpy.random.default_rng` does —
        the engine passes a dedicated ``SeedSequence`` child so noisy runs
        are reproducible across process boundaries.
        """
        from repro.qcircuit.noise import NoiseModel

        return NoiseModel(self.profile(), seed=seed)


def as_noise_config(value: Any) -> NoiseConfig | None:
    """Normalise any accepted noise spelling into a ``NoiseConfig`` (or None).

    Accepts ``None``, a :class:`NoiseConfig`, a device-profile name
    (``"fez"``), or the dict form a serialized spec carries.
    """
    if value is None or isinstance(value, NoiseConfig):
        return value
    if isinstance(value, str):
        return NoiseConfig(device=value)
    if isinstance(value, Mapping):
        return NoiseConfig.from_dict(value)
    raise SolverError(
        "noise must be a NoiseConfig, a device name, a dict or None, "
        f"got {type(value).__name__}"
    )


def resolve_config_argument(
    config: Any, config_kwargs: Mapping[str, Any], config_cls: type[ConfigT]
) -> ConfigT:
    """The shared ``__init__(config=None, ..., **kwargs)`` shim of every solver.

    Exactly one of ``config`` / ``config_kwargs`` may be given; ``config``
    must be an instance of ``config_cls`` (an int or dict sliding into the
    first positional slot fails fast here instead of deep inside ``solve``).
    """
    if config_kwargs:
        if config is not None:
            raise SolverError("pass either a config or config keywords, not both")
        return config_cls.from_dict(config_kwargs)
    if config is None:
        return config_cls()
    if not isinstance(config, config_cls):
        raise SolverError(
            f"config must be a {config_cls.__name__} (or None), got {type(config).__name__}"
        )
    return config
