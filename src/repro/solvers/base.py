"""Solver interfaces and result types.

Every quantum solver in this package follows the same life-cycle:

1. **encode** the problem into an ansatz (circuit family + cost function),
2. **optimize** the variational parameters with a classical optimizer,
3. **sample** the final circuit and report a measurement histogram.

:class:`QuantumSolver` fixes that contract; :class:`SolverResult` is the
uniform output consumed by the metrics layer and the benchmark harnesses: the
outcome distribution, the optimization trace (for Fig. 9a), circuit-depth
accounting (Table II), and the latency breakdown (Fig. 11).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.metrics import MetricsReport, evaluate_outcomes
from repro.core.problem import ConstrainedBinaryProblem
from repro.qcircuit.sampling import SampleResult
from repro.serialization import json_sanitize


@dataclass
class OptimizationTrace:
    """Cost values and parameters visited during classical optimization."""

    costs: list[float] = field(default_factory=list)
    parameters: list[np.ndarray] = field(default_factory=list)

    def record(self, cost: float, parameters: np.ndarray) -> None:
        self.costs.append(float(cost))
        self.parameters.append(np.asarray(parameters, dtype=float).copy())

    @property
    def num_iterations(self) -> int:
        return len(self.costs)

    @property
    def best_cost(self) -> float:
        if not self.costs:
            raise ValueError("empty optimization trace")
        return min(self.costs)

    def iterations_to_reach(self, threshold: float) -> int | None:
        """First iteration whose cost is at or below ``threshold`` (or None)."""
        for iteration, cost in enumerate(self.costs):
            if cost <= threshold:
                return iteration
        return None

    def to_dict(self) -> dict:
        """JSON-serializable form of the trace."""
        return {
            "costs": [float(cost) for cost in self.costs],
            "parameters": [np.asarray(p, dtype=float).tolist() for p in self.parameters],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "OptimizationTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        return cls(
            costs=[float(cost) for cost in data.get("costs", [])],
            parameters=[np.asarray(p, dtype=float) for p in data.get("parameters", [])],
        )


@dataclass
class LatencyBreakdown:
    """End-to-end latency components (Fig. 11), in seconds."""

    compilation: float = 0.0
    quantum_execution: float = 0.0
    classical_processing: float = 0.0

    @property
    def total(self) -> float:
        return self.compilation + self.quantum_execution + self.classical_processing

    def as_dict(self) -> dict[str, float]:
        return {
            "compilation_s": self.compilation,
            "quantum_execution_s": self.quantum_execution,
            "classical_processing_s": self.classical_processing,
            "total_s": self.total,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "LatencyBreakdown":
        """Rebuild a breakdown from :meth:`as_dict` output (total is derived)."""
        return cls(
            compilation=float(data.get("compilation_s", 0.0)),
            quantum_execution=float(data.get("quantum_execution_s", 0.0)),
            classical_processing=float(data.get("classical_processing_s", 0.0)),
        )


@dataclass
class SolverResult:
    """The uniform output of every solver run."""

    solver_name: str
    problem_name: str
    outcomes: SampleResult
    exact_distribution: dict[str, float] | None = None
    optimal_parameters: np.ndarray | None = None
    trace: OptimizationTrace = field(default_factory=OptimizationTrace)
    circuit_depth: int = 0
    transpiled_depth: int = 0
    num_qubits: int = 0
    num_two_qubit_gates: int = 0
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    metadata: dict = field(default_factory=dict)

    def distribution(self) -> Mapping[str, float]:
        """Exact probabilities when available, else shot frequencies."""
        if self.exact_distribution is not None:
            return self.exact_distribution
        return self.outcomes.frequencies()

    def metrics(self, problem: ConstrainedBinaryProblem, optimal_value: float | None = None) -> MetricsReport:
        """Evaluate the Table-II metrics against the originating problem."""
        return evaluate_outcomes(
            problem,
            dict(self.distribution()),
            circuit_depth=self.transpiled_depth or self.circuit_depth,
            optimal_value=optimal_value,
        )

    # ------------------------------------------------------------------
    # Serialization (the contract the repro.run experiment runner persists)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """The full result as a JSON-serializable dict.

        The invariant is a dict-level fixed point:
        ``SolverResult.from_dict(r.to_dict()).to_dict() == r.to_dict()``.
        Tuples inside ``metadata`` come back as lists (see
        :mod:`repro.serialization`).
        """
        return {
            "solver_name": self.solver_name,
            "problem_name": self.problem_name,
            "outcomes": self.outcomes.to_dict(),
            "exact_distribution": (
                {key: float(value) for key, value in self.exact_distribution.items()}
                if self.exact_distribution is not None
                else None
            ),
            "optimal_parameters": (
                np.asarray(self.optimal_parameters, dtype=float).tolist()
                if self.optimal_parameters is not None
                else None
            ),
            "trace": self.trace.to_dict(),
            "circuit_depth": int(self.circuit_depth),
            "transpiled_depth": int(self.transpiled_depth),
            "num_qubits": int(self.num_qubits),
            "num_two_qubit_gates": int(self.num_two_qubit_gates),
            "latency": self.latency.as_dict(),
            "metadata": json_sanitize(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SolverResult":
        """Rebuild a result from :meth:`to_dict` output."""
        optimal_parameters = data.get("optimal_parameters")
        return cls(
            solver_name=data["solver_name"],
            problem_name=data["problem_name"],
            outcomes=SampleResult.from_dict(data.get("outcomes", {})),
            exact_distribution=(
                dict(data["exact_distribution"])
                if data.get("exact_distribution") is not None
                else None
            ),
            optimal_parameters=(
                np.asarray(optimal_parameters, dtype=float)
                if optimal_parameters is not None
                else None
            ),
            trace=OptimizationTrace.from_dict(data.get("trace", {})),
            circuit_depth=int(data.get("circuit_depth", 0)),
            transpiled_depth=int(data.get("transpiled_depth", 0)),
            num_qubits=int(data.get("num_qubits", 0)),
            num_two_qubit_gates=int(data.get("num_two_qubit_gates", 0)),
            latency=LatencyBreakdown.from_dict(data.get("latency", {})),
            metadata=dict(data.get("metadata", {})),
        )


class QuantumSolver(abc.ABC):
    """Abstract base class of every variational solver in the package."""

    name: str = "solver"

    @abc.abstractmethod
    def solve(self, problem: ConstrainedBinaryProblem) -> SolverResult:
        """Run the full encode → optimize → sample pipeline on ``problem``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
