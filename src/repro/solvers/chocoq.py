"""Choco-Q: commute-Hamiltonian QAOA for constrained binary optimization.

This module is the paper's primary contribution.  The solver follows the
workflow of Fig. 3 with the three optimisations of Section IV:

1. **Constraint encoding via the commute Hamiltonian** (Section III).  The
   solution set ``Delta`` of ``C u = 0`` over ``{-1, 0, 1}^n`` defines hop
   operators ``H_c(u)`` that commute with every constraint operator, so the
   evolution never leaves the feasible subspace.  The initial state is one
   feasible solution of ``C x = c``.
2. **Serialization** (Opt1, Lemma 1).  The driver unitary is replaced by the
   product of local unitaries ``prod_u e^{-i beta H_c(u)}``, which still
   conserves every constraint expectation and collapses the circuit depth.
3. **Equivalent decomposition** (Opt2, Lemma 2 / Algorithm 1).  Each local
   unitary is compiled to ``G† P(beta) X1 P(-beta) X1 G`` — exact, linear
   time, linear depth.  The solver exposes both the decomposed circuit (for
   depth accounting and noisy runs) and a fast dense simulation path.
4. **Variable elimination** (Opt3, Section IV-C).  Optionally eliminate the
   variables with the most non-zeros across ``Delta``, running one (smaller)
   circuit per assignment of the eliminated variables and merging the lifted
   measurement histograms.

The ansatz for each (sub-)problem is

    |x*>  ->  [ e^{-i gamma_l H_o} · prod_u e^{-i beta_l H_c(u)} ] x L layers

with ``2 L`` trainable parameters, trained by COBYLA against the exact
expectation of the objective Hamiltonian (the constraints need no penalty —
the evolution cannot violate them).

Simulation runs on one of two interchangeable state backends (see
``ChocoQConfig.backend`` and :mod:`repro.solvers.variational`): ``dense``
evolves the full ``2^n`` statevector, while ``subspace`` exploits the
feasible-subspace invariance to evolve only the ``|F|`` feasible amplitudes
via a :class:`~repro.core.subspace.SubspaceMap` — bitwise-identical result
format, and per-iteration cost proportional to the feasible-set size.
"""

from __future__ import annotations

import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.feasibility import problem_initial_assignment
from repro.core.nullspace import (
    enumerate_ternary_nullspace,
    ternary_nullspace_basis,
    total_nonzeros,
)
from repro.core.problem import ConstrainedBinaryProblem
from repro.core.subspace import SubspaceMap
from repro.core.variable_elimination import (
    build_elimination_plan,
    choose_elimination_variables,
)
from repro.exceptions import SolverError
from repro.hamiltonian.commute import CommuteDriver, CommuteHamiltonianTerm
from repro.hamiltonian.compiled import EvolutionProgram
from repro.hamiltonian.diagonal import DiagonalHamiltonian, phase_separation_circuit
from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.sampling import SampleResult, merge_results, split_shots
from repro.solvers.base import LatencyBreakdown, OptimizationTrace, QuantumSolver, SolverResult
from repro.solvers.config import NoiseConfig, SolverConfig, resolve_config_argument
from repro.solvers.optimizer import CobylaOptimizer, Optimizer
from repro.solvers.variational import (
    AnsatzSpec,
    EngineOptions,
    SubspaceStateBackend,
    VariationalEngine,
    apply_diagonal_phase,
    basis_state,
    child_seed_sequence,
    prepare_ansatz_state,
    resolve_auto_subspace_limit,
)


@dataclass(frozen=True)
class ChocoQConfig(SolverConfig):
    """Algorithmic knobs of the Choco-Q solver.

    Attributes:
        num_layers: the number L of repeated (objective, driver) blocks.  The
            paper uses a single layer for Choco-Q (Table II) because its
            driver carries the *full* solution set Delta; our default driver
            is the compact nullspace basis (see ``nullspace_mode``), which
            needs a few interleaved objective phases to cover the same search
            directions, so the default here is 3 (documented in DESIGN.md).
        nullspace_mode: ``"basis"`` uses the compact generating subset of
            Delta (default, matching the paper's serialized example);
            ``"full"`` enumerates every ternary nullspace vector.
        max_support: optional cap on the support size of the u vectors.
        num_eliminated_variables: how many variables the Opt3 pass removes.
        serialize_driver: Opt1; when False the driver is applied as the
            monolithic matrix exponential (slow, verification only).
        use_equivalent_decomposition: Opt2; when False the reported circuit
            uses opaque unitaries per local Hamiltonian, reproducing the
            "direct decomposition" ablation arm of Fig. 14.
        backend: the simulation state layout.  ``"dense"`` evolves the full
            ``2^n`` statevector; ``"subspace"`` enumerates the feasible set
            once into a :class:`~repro.core.subspace.SubspaceMap` and evolves
            only the ``|F|`` feasible amplitudes — exact (the commute
            evolution never leaves the subspace) and the key scalability
            lever for constrained instances where ``|F| << 2^n``.  Under
            Opt3, every eliminated-variable sub-problem builds its own
            sub-map.  ``"auto"`` tries the subspace map first and falls back
            to dense as soon as the streaming enumeration passes
            ``subspace_limit``, so callers need not know ``|F|`` up front.
        subspace_limit: size guard for the feasible-set enumeration.  With
            ``backend="subspace"`` exceeding it raises
            :class:`~repro.exceptions.SubspaceOverflowError`; with
            ``backend="auto"`` it is the dense-fallback threshold
            (``None`` means :data:`~repro.solvers.variational
            .DEFAULT_SUBSPACE_AUTO_LIMIT`).
        noise: serializable device-noise scenario
            (:class:`~repro.solvers.config.NoiseConfig`, a device name such
            as ``"fez"``, or its dict form) applied at the final sampling
            step; ``None`` samples ideally.  Under Opt3 every eliminated-
            variable sub-circuit samples through its own deterministically
            seeded model.
    """

    num_layers: int = 3
    nullspace_mode: str = "basis"
    max_support: int | None = None
    num_eliminated_variables: int = 0
    serialize_driver: bool = True
    use_equivalent_decomposition: bool = True
    backend: str = "dense"
    subspace_limit: int | None = None
    noise: NoiseConfig | str | dict | None = None

    def _validate(self) -> None:
        # num_layers and (backend, subspace_limit) are checked by SolverConfig.
        if self.nullspace_mode not in ("basis", "full"):
            raise SolverError("nullspace_mode must be 'basis' or 'full'")
        if self.num_eliminated_variables < 0:
            raise SolverError("num_eliminated_variables must be non-negative")


#: Entry cap of the monolithic-ablation unitary cache.  Each entry is a dense
#: ``2^n x 2^n`` (or ``|F| x |F|``) matrix — one per distinct rounded beta the
#: optimizer visits — so an unbounded dict grows with the iteration count;
#: COBYLA revisits recent angles far more often than old ones, so a small LRU
#: window keeps the hit rate without the memory creep.
MONOLITHIC_UNITARY_CACHE_SIZE = 16


class BoundedUnitaryCache:
    """A small LRU cache of monolithic driver unitaries keyed by angle.

    Used only on the ``serialize_driver=False`` ablation path, where each
    distinct beta costs a matrix exponential worth caching but holding every
    one ever seen would grow without limit over a long optimization.
    """

    def __init__(self, max_entries: int = MONOLITHIC_UNITARY_CACHE_SIZE) -> None:
        if max_entries < 1:
            raise SolverError("the unitary cache needs at least one entry")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[float, np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: float) -> "np.ndarray | None":
        unitary = self._entries.get(key)
        if unitary is not None:
            self._entries.move_to_end(key)
        return unitary

    def put(self, key: float, unitary: np.ndarray) -> None:
        self._entries[key] = unitary
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)


class ChocoQSolver(QuantumSolver):
    """The commute-Hamiltonian QAOA solver (the paper's contribution)."""

    name = "choco-q"

    def __init__(
        self,
        config: ChocoQConfig | None = None,
        optimizer: Optimizer | None = None,
        options: EngineOptions | None = None,
        **config_kwargs,
    ) -> None:
        self.config = resolve_config_argument(config, config_kwargs, ChocoQConfig)
        self.optimizer = optimizer or CobylaOptimizer(max_iterations=100)
        self.options = options or EngineOptions()

    # ------------------------------------------------------------------
    # Driver construction
    # ------------------------------------------------------------------

    def build_driver(self, problem: ConstrainedBinaryProblem) -> CommuteDriver:
        """Construct the commute driver for a problem's constraint matrix."""
        matrix, _ = problem.constraint_matrix()
        if matrix.size == 0:
            raise SolverError(
                "Choco-Q requires at least one constraint; use penalty QAOA for "
                "unconstrained problems"
            )
        if self.config.nullspace_mode == "full":
            solutions = enumerate_ternary_nullspace(matrix, max_support=self.config.max_support)
        else:
            solutions = ternary_nullspace_basis(matrix, max_support=self.config.max_support)
        if not solutions:
            raise SolverError("the constraint system admits no commute-Hamiltonian moves")
        return CommuteDriver.from_solutions(solutions)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def solve(self, problem: ConstrainedBinaryProblem) -> SolverResult:
        if self.config.num_eliminated_variables == 0:
            return self._solve_single(problem)
        return self._solve_with_elimination(problem)

    # ------------------------------------------------------------------
    # Single-instance pipeline
    # ------------------------------------------------------------------

    def _solve_single(self, problem: ConstrainedBinaryProblem) -> SolverResult:
        spec, driver = self.build_spec(problem)
        engine = VariationalEngine(
            self.optimizer, self.options.with_noise(self.config.noise)
        )
        result = engine.run(spec, problem)
        result.metadata["num_driver_terms"] = len(driver.terms)
        result.metadata["total_nonzeros"] = driver.total_nonzeros
        return result

    def _resolve_subspace_map(self, problem: ConstrainedBinaryProblem) -> SubspaceMap | None:
        """The feasible-subspace map the configured backend calls for.

        ``None`` means "run dense": either the config says so, or ``auto``
        found the feasible set larger than the fallback threshold while
        streaming the enumeration.
        """
        if self.config.backend == "dense":
            return None
        if self.config.backend == "subspace":
            return SubspaceMap.from_problem(problem, limit=self.config.subspace_limit)
        return SubspaceMap.try_from_problem(
            problem, limit=resolve_auto_subspace_limit(self.config.subspace_limit)
        )

    def build_spec(self, problem: ConstrainedBinaryProblem) -> tuple[AnsatzSpec, CommuteDriver]:
        """The compiled ``(AnsatzSpec, CommuteDriver)`` for one problem.

        Public so benchmarks and analyses can time or inspect the prepared
        evolution (cost evaluations, backend agreement) without running the
        optimizer — the same spec :meth:`solve` executes.
        """
        num_qubits = problem.num_variables
        driver = self.build_driver(problem)
        objective = problem.minimization_objective()
        initial_bits = problem_initial_assignment(problem)
        num_layers = self.config.num_layers
        serialize = self.config.serialize_driver
        use_decomposition = self.config.use_equivalent_decomposition
        subspace_map = self._resolve_subspace_map(problem)

        # The two backends share one ansatz loop; they differ only in the
        # state layout and the pair indices / unitaries compiled here.
        if subspace_map is not None:
            # Feasible-subspace layout: every per-iteration object has length
            # |F|; nothing of size 2^n is ever materialised.  The restricted
            # driver resolves each term's subspace pairing exactly once.
            restricted_driver = driver.restrict(subspace_map)
            cost_diagonal = subspace_map.evaluate_polynomial(objective.terms)
            initial_state = subspace_map.basis_state(initial_bits)
            state_backend = SubspaceStateBackend(subspace_map)

            def compile_program() -> EvolutionProgram:
                return EvolutionProgram.for_restricted_driver(
                    restricted_driver, cost_diagonal, num_layers
                )

            def build_monolithic(beta: float) -> np.ndarray:
                from repro.hamiltonian.evolution import dense_evolution_operator

                return dense_evolution_operator(restricted_driver.hamiltonian_matrix(), beta)

        else:
            hamiltonian = DiagonalHamiltonian.from_polynomial(objective.terms, num_qubits)
            cost_diagonal = hamiltonian.diagonal
            initial_state = basis_state(num_qubits, initial_bits)
            state_backend = None

            def compile_program() -> EvolutionProgram:
                return EvolutionProgram.for_driver(driver, cost_diagonal, num_layers)

            def build_monolithic(beta: float) -> np.ndarray:
                from repro.hamiltonian.evolution import driver_evolution_operator

                return driver_evolution_operator(driver, beta)

        if serialize:
            # Compile once per prepare: every cost evaluation afterwards runs
            # over cached pair indices with zero structural recomputation,
            # broadcasting unchanged over the batched (k, 2L) sweep path.
            evolve = compile_program().bind(initial_state)
        else:
            # Monolithic ablation (Opt1 off): one dense matrix exponential
            # per distinct beta, LRU-bounded so a long optimization cannot
            # accumulate unboundedly many 2^n x 2^n (or |F| x |F|) unitaries.
            monolithic_unitary_cache = BoundedUnitaryCache()

            def evolve(parameters: np.ndarray) -> np.ndarray:
                parameters, state = prepare_ansatz_state(initial_state, parameters)
                for layer in range(num_layers):
                    gamma = parameters[..., 2 * layer]
                    beta = parameters[..., 2 * layer + 1]
                    state = apply_diagonal_phase(state, gamma, cost_diagonal)
                    key = round(float(beta), 12)
                    unitary = monolithic_unitary_cache.get(key)
                    if unitary is None:
                        unitary = build_monolithic(float(beta))
                        monolithic_unitary_cache.put(key, unitary)
                    state = unitary @ state
                return state

        def build_circuit(parameters: np.ndarray) -> QuantumCircuit:
            circuit = QuantumCircuit(num_qubits, name="choco_q")
            for qubit, bit in enumerate(initial_bits):
                if bit:
                    circuit.x(qubit)
            for layer in range(num_layers):
                gamma = float(parameters[2 * layer])
                beta = float(parameters[2 * layer + 1])
                phase_circuit = phase_separation_circuit(objective.terms, num_qubits, gamma)
                circuit.compose(phase_circuit, qubits=range(num_qubits))
                if use_decomposition:
                    driver_circuit = driver.serialized_circuit(beta)
                    circuit.compose(driver_circuit, qubits=range(num_qubits))
                else:
                    from scipy.linalg import expm

                    for term in driver.terms:
                        local = _local_hamiltonian_matrix(term)
                        circuit.unitary(
                            expm(-1j * beta * local), term.support, label="local_hc"
                        )
            return circuit

        metadata = {
            "num_layers": num_layers,
            "initial_assignment": initial_bits,
            "num_driver_terms": len(driver.terms),
            "nullspace_mode": self.config.nullspace_mode,
            "backend_requested": self.config.backend,
            # The serialized path runs as a compiled EvolutionProgram; the
            # monolithic ablation keeps the per-beta unitary cache instead.
            "compiled_evolution": serialize,
        }
        if subspace_map is not None:
            metadata["subspace_size"] = subspace_map.size
        spec = AnsatzSpec(
            name=self.name,
            num_qubits=num_qubits,
            initial_state=initial_state,
            cost_diagonal=cost_diagonal,
            evolve=evolve,
            build_circuit=build_circuit,
            initial_parameters=self._initial_parameters(),
            metadata=metadata,
            backend=state_backend,
            # The monolithic ablation caches one dense unitary per scalar
            # beta, which does not broadcast; only the serialized product
            # supports the (k, 2L) sweep path.
            evolve_batch=evolve if serialize else None,
        )
        return spec, driver

    def _initial_parameters(self) -> np.ndarray:
        layers = np.arange(1, self.config.num_layers + 1)
        gammas = 0.4 * layers / self.config.num_layers
        betas = np.full(self.config.num_layers, np.pi / 4)
        return np.ravel(np.column_stack([gammas, betas]))

    # ------------------------------------------------------------------
    # Variable-elimination pipeline (Opt3)
    # ------------------------------------------------------------------

    def _solve_with_elimination(self, problem: ConstrainedBinaryProblem) -> SolverResult:
        start = time.perf_counter()
        matrix, _ = problem.constraint_matrix()
        if matrix.size == 0:
            raise SolverError("variable elimination requires constraints")
        base_solutions = (
            enumerate_ternary_nullspace(matrix, max_support=self.config.max_support)
            if self.config.nullspace_mode == "full"
            else ternary_nullspace_basis(matrix, max_support=self.config.max_support)
        )
        variables = choose_elimination_variables(
            problem, self.config.num_eliminated_variables, solutions=base_solutions
        )
        if not variables:
            return self._solve_single(problem)
        plan = build_elimination_plan(problem, variables)

        sub_config = self.config.replace(num_eliminated_variables=0)
        # Split the shot budget without losing the remainder: the first
        # (shots mod num_circuits) instances take one extra shot, so the
        # merged histogram carries exactly options.shots samples.  When the
        # budget is smaller than the circuit count some instances get zero
        # shots and their feasible region is absent from the sampled
        # histogram (the ideal-path exact_distribution still covers it).
        if 0 < self.options.shots < plan.num_circuits:
            warnings.warn(
                f"shot budget {self.options.shots} is smaller than the "
                f"{plan.num_circuits} elimination sub-circuits; some "
                "sub-instances will not be sampled",
                stacklevel=2,
            )
        shot_allocation = split_shots(self.options.shots, plan.num_circuits)
        # Independent, reproducible RNG streams per sub-instance (explicit
        # child derivation — a caller-owned SeedSequence is never mutated).
        instance_seeds = [
            child_seed_sequence(self.options.seed, index)
            for index in range(plan.num_circuits)
        ]

        merged_counts: list[SampleResult] = []
        merged_distribution: dict[str, float] = {}
        trace = OptimizationTrace()
        latency = LatencyBreakdown()
        max_depth = 0
        max_transpiled_depth = 0
        max_two_qubit = 0
        total_iterations = 0
        sub_results: list[SolverResult] = []
        # The merged result reports the *deepest* sub-circuit's depth, so it
        # carries that sub-instance's transpile report too.
        deepest_transpile_report: dict | None = None

        for index, instance in enumerate(plan.instances):
            instance_shots = shot_allocation[index]
            sub_options = EngineOptions(
                shots=instance_shots,
                seed=instance_seeds[index],
                noise_model=self.options.noise_model,
                noise=self.options.noise,
                latency_model=self.options.latency_model,
                transpile_for_depth=self.options.transpile_for_depth,
                noisy_trajectories=self.options.noisy_trajectories,
                multistart=self.options.multistart,
                optimization_level=self.options.optimization_level,
            )
            sub_solver = ChocoQSolver(config=sub_config, optimizer=self.optimizer, options=sub_options)
            try:
                sub_result = sub_solver._solve_single(instance.problem)
            except SolverError:
                # A sub-instance whose reduced constraints admit no moves is a
                # single feasible point; report it directly.
                sub_result = _trivial_result(instance.problem, instance_shots)
            sub_results.append(sub_result)

            lifted_counts: dict[str, int] = {}
            for key, count in sub_result.outcomes.counts.items():
                reduced_bits = [int(ch) for ch in key[: instance.problem.num_variables]]
                lifted = instance.lift(reduced_bits)
                lifted_key = "".join(str(b) for b in lifted)
                lifted_counts[lifted_key] = lifted_counts.get(lifted_key, 0) + count
            merged_counts.append(
                SampleResult.from_counts(
                    lifted_counts,
                    metadata={
                        "eliminated_assignments": [
                            {
                                "assignment": dict(instance.assignment),
                                "shots": instance_shots,
                            }
                        ]
                    },
                )
            )

            if sub_result.exact_distribution is not None:
                weight = 1.0 / plan.num_circuits
                for key, probability in sub_result.exact_distribution.items():
                    reduced_bits = [int(ch) for ch in key[: instance.problem.num_variables]]
                    lifted = instance.lift(reduced_bits)
                    lifted_key = "".join(str(b) for b in lifted)
                    merged_distribution[lifted_key] = (
                        merged_distribution.get(lifted_key, 0.0) + weight * probability
                    )

            for cost, parameters in zip(sub_result.trace.costs, sub_result.trace.parameters):
                trace.record(cost, parameters)
            latency.compilation += sub_result.latency.compilation
            latency.quantum_execution += sub_result.latency.quantum_execution
            latency.classical_processing += sub_result.latency.classical_processing
            max_depth = max(max_depth, sub_result.circuit_depth)
            if (
                sub_result.transpiled_depth >= max_transpiled_depth
                and sub_result.metadata.get("transpile_report") is not None
            ):
                deepest_transpile_report = sub_result.metadata["transpile_report"]
            max_transpiled_depth = max(max_transpiled_depth, sub_result.transpiled_depth)
            max_two_qubit = max(max_two_qubit, sub_result.num_two_qubit_gates)
            total_iterations += sub_result.metadata.get("iterations", 0)

        elapsed = time.perf_counter() - start
        outcomes = merge_results(merged_counts)
        # The merged result must carry the same noise annotation every
        # single-instance noisy run does (options-level noise wins, matching
        # with_noise's precedence inside the sub-solvers).
        effective_noise = self.options.with_noise(self.config.noise).noise
        noise_metadata = (
            {"noise": effective_noise.to_dict()} if effective_noise is not None else {}
        )
        report_metadata = (
            {"transpile_report": deepest_transpile_report}
            if deepest_transpile_report is not None
            else {}
        )
        return SolverResult(
            solver_name=self.name,
            problem_name=problem.name,
            outcomes=outcomes,
            exact_distribution=merged_distribution or None,
            optimal_parameters=None,
            trace=trace,
            circuit_depth=max_depth,
            transpiled_depth=max_transpiled_depth,
            num_qubits=problem.num_variables - len(variables),
            num_two_qubit_gates=max_two_qubit,
            latency=latency,
            metadata={
                "eliminated_variables": variables,
                "num_circuits": plan.num_circuits,
                "iterations": total_iterations,
                "wall_clock_s": elapsed,
                "sub_problem_qubits": problem.num_variables - len(variables),
                "state_backend": self.config.backend,
                "shot_allocation": shot_allocation,
                **noise_metadata,
                **report_metadata,
            },
        )


def _local_hamiltonian_matrix(term: CommuteHamiltonianTerm) -> np.ndarray:
    """The local H_c(u) restricted to its support qubits (for the Opt2 ablation)."""
    sigma = {
        +1: np.array([[0, 0], [1, 0]], dtype=complex),
        -1: np.array([[0, 1], [0, 0]], dtype=complex),
    }
    matrix = np.array([[1.0]], dtype=complex)
    for qubit in reversed(term.support):
        matrix = np.kron(matrix, sigma[term.u[qubit]])
    return matrix + matrix.conj().T


def _trivial_result(problem: ConstrainedBinaryProblem, shots: int) -> SolverResult:
    """Result for a sub-problem whose feasible set is a single classical point."""
    bits = problem_initial_assignment(problem)
    key = "".join(str(b) for b in bits)
    outcomes = SampleResult.from_counts({key: shots} if shots else {})
    return SolverResult(
        solver_name="choco-q",
        problem_name=problem.name,
        outcomes=outcomes,
        exact_distribution={key: 1.0},
        num_qubits=problem.num_variables,
        metadata={"iterations": 0, "trivial": True},
    )
