"""End-to-end latency model (Fig. 11, Table I).

The paper reports end-to-end latency as compilation time plus the iterative
execution time (quantum circuit execution per iteration plus the classical
parameter-update time), excluding data communication.  We cannot run on the
IBM cloud, so this module provides an analytical substitute parameterised by
the device profiles of :mod:`repro.qcircuit.noise`:

* **circuit duration** — the critical-path duration of the transpiled
  circuit, computed exactly like circuit depth but weighting every gate with
  its device-calibrated duration (CZ-based devices run two-qubit gates
  natively; ECR devices pay the 3x translation cost) plus the readout time;
* **quantum execution time per iteration** — shots x circuit duration plus a
  fixed per-job overhead (control-electronics latency);
* **end-to-end latency** — measured compilation time + iterations x
  (quantum execution + classical update time).

The absolute numbers depend on our calibration constants, but the *ratios*
between solvers are driven by exactly what drives them in the paper:
iteration count and circuit depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.gates import DEFAULT_GATE_DURATIONS
from repro.qcircuit.noise import DeviceProfile, IBM_FEZ


@dataclass(frozen=True)
class LatencyEstimate:
    """Latency components for one solver run (seconds)."""

    compilation: float
    quantum_execution: float
    classical_processing: float
    circuit_duration: float
    iterations: int
    shots: int

    @property
    def total(self) -> float:
        return self.compilation + self.quantum_execution + self.classical_processing


class LatencyModel:
    """Analytical latency model calibrated against a device profile."""

    def __init__(
        self,
        profile: DeviceProfile = IBM_FEZ,
        per_job_overhead: float = 5e-3,
        classical_update_time: float = 2e-3,
    ) -> None:
        self.profile = profile
        self.per_job_overhead = per_job_overhead
        self.classical_update_time = classical_update_time

    # ------------------------------------------------------------------

    def gate_duration(self, name: str, num_qubits: int) -> float:
        """Duration of one gate on this device."""
        if name in ("measure",):
            return self.profile.readout_time
        if num_qubits >= 2:
            return self.profile.two_qubit_time * self.profile.cz_cost
        return DEFAULT_GATE_DURATIONS.get(name, self.profile.single_qubit_time)

    def circuit_duration(self, circuit: QuantumCircuit) -> float:
        """Critical-path duration of a circuit plus one readout."""
        frontier = [0.0] * circuit.num_qubits
        for instruction in circuit:
            if instruction.name == "barrier":
                if instruction.qubits:
                    level = max(frontier[q] for q in instruction.qubits)
                    for qubit in instruction.qubits:
                        frontier[qubit] = level
                continue
            duration = self.gate_duration(instruction.name, len(instruction.qubits))
            level = max(frontier[q] for q in instruction.qubits) + duration
            for qubit in instruction.qubits:
                frontier[qubit] = level
        critical_path = max(frontier) if frontier else 0.0
        return critical_path + self.profile.readout_time

    # ------------------------------------------------------------------

    def execution_time(self, circuit: QuantumCircuit, shots: int) -> float:
        """Quantum execution time of one iteration (one parameter setting)."""
        return self.per_job_overhead + shots * self.circuit_duration(circuit)

    def estimate(
        self,
        circuit: QuantumCircuit,
        iterations: int,
        shots: int,
        compilation_seconds: float,
        num_circuits: int = 1,
    ) -> LatencyEstimate:
        """End-to-end latency for a full variational run.

        ``num_circuits`` accounts for the variable-elimination overhead: each
        iteration must execute one circuit per eliminated-variable assignment.
        """
        per_iteration = self.execution_time(circuit, shots) * num_circuits
        quantum = iterations * per_iteration
        classical = iterations * self.classical_update_time
        return LatencyEstimate(
            compilation=compilation_seconds,
            quantum_execution=quantum,
            classical_processing=classical,
            circuit_duration=self.circuit_duration(circuit),
            iterations=iterations,
            shots=shots,
        )
