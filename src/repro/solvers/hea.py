"""Hardware-efficient ansatz (HEA) baseline.

Reproduces the non-QAOA variational baseline of Kandala et al. [28] as the
paper configures it (Section V-A): layers of single-qubit RY rotations
interleaved with a linear chain of CZ entanglers, trained against the
penalty-augmented objective so the output "satisfies the constraints as much
as possible".  The ansatz is problem-agnostic — which is precisely why, as
the paper notes, it struggles to converge to constrained optima — but its
shallow depth makes it fast on hardware (visible in the Fig. 11 latency
comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoding import default_penalty_weight, penalty_objective
from repro.core.problem import ConstrainedBinaryProblem
from repro.hamiltonian.diagonal import DiagonalHamiltonian
from repro.qcircuit.circuit import QuantumCircuit
from repro.solvers.base import QuantumSolver, SolverResult
from repro.solvers.config import NoiseConfig, SolverConfig, resolve_config_argument
from repro.solvers.optimizer import CobylaOptimizer, Optimizer
from repro.solvers.variational import (
    AnsatzSpec,
    EngineOptions,
    VariationalEngine,
    apply_cz_chain,
    apply_ry,
)


@dataclass(frozen=True)
class HEAConfig(SolverConfig):
    """Algorithmic knobs of the hardware-efficient-ansatz baseline.

    Attributes:
        num_layers: number of CZ-entangler blocks (each followed by an RY
            layer; one extra RY layer opens the circuit).
        penalty_weight: penalty multiplier folding the constraints into the
            trained objective; ``None`` derives the default weight.
        noise: serializable device-noise scenario
            (:class:`~repro.solvers.config.NoiseConfig`, a device name, or
            its dict form) applied at the final sampling step.
    """

    num_layers: int = 3
    penalty_weight: float | None = None
    noise: NoiseConfig | str | dict | None = None


class HEASolver(QuantumSolver):
    """Hardware-efficient ansatz with RY layers and CZ-chain entanglers."""

    name = "hea"

    def __init__(
        self,
        config: HEAConfig | None = None,
        optimizer: Optimizer | None = None,
        options: EngineOptions | None = None,
        **config_kwargs,
    ) -> None:
        self.config = resolve_config_argument(config, config_kwargs, HEAConfig)
        self.optimizer = optimizer or CobylaOptimizer(max_iterations=200)
        self.options = options or EngineOptions()

    @property
    def num_layers(self) -> int:
        return self.config.num_layers

    @property
    def penalty_weight(self) -> float | None:
        return self.config.penalty_weight

    # ------------------------------------------------------------------

    def solve(self, problem: ConstrainedBinaryProblem) -> SolverResult:
        num_qubits = problem.num_variables
        weight = (
            self.penalty_weight
            if self.penalty_weight is not None
            else default_penalty_weight(problem)
        )
        qubo = penalty_objective(problem, weight)
        hamiltonian = DiagonalHamiltonian.from_polynomial(qubo.terms, num_qubits)

        num_layers = self.num_layers
        # One initial RY layer plus one RY layer per entangling block.
        num_parameters = num_qubits * (num_layers + 1)

        def evolve(parameters: np.ndarray) -> np.ndarray:
            state = np.zeros(2**num_qubits, dtype=complex)
            state[0] = 1.0
            angles = parameters.reshape(num_layers + 1, num_qubits)
            for qubit in range(num_qubits):
                state = apply_ry(state, qubit, angles[0, qubit])
            for layer in range(num_layers):
                state = apply_cz_chain(state, num_qubits)
                for qubit in range(num_qubits):
                    state = apply_ry(state, qubit, angles[layer + 1, qubit])
            return state

        def build_circuit(parameters: np.ndarray) -> QuantumCircuit:
            circuit = QuantumCircuit(num_qubits, name="hea")
            angles = np.asarray(parameters, dtype=float).reshape(num_layers + 1, num_qubits)
            for qubit in range(num_qubits):
                circuit.ry(float(angles[0, qubit]), qubit)
            for layer in range(num_layers):
                for qubit in range(num_qubits - 1):
                    circuit.cz(qubit, qubit + 1)
                for qubit in range(num_qubits):
                    circuit.ry(float(angles[layer + 1, qubit]), qubit)
            return circuit

        rng = np.random.default_rng(self.options.seed)
        initial_parameters = rng.uniform(0.0, np.pi, size=num_parameters)

        spec = AnsatzSpec(
            name=self.name,
            num_qubits=num_qubits,
            initial_state=np.eye(1, 2**num_qubits, 0, dtype=complex).ravel(),
            cost_diagonal=hamiltonian.diagonal,
            evolve=evolve,
            build_circuit=build_circuit,
            initial_parameters=initial_parameters,
            metadata={"num_layers": num_layers, "penalty_weight": weight},
        )
        engine = VariationalEngine(
            self.optimizer, self.options.with_noise(self.config.noise)
        )
        result = engine.run(spec, problem)
        result.metadata["penalty_weight"] = weight
        return result
