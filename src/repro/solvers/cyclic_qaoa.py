"""Cyclic-Hamiltonian QAOA baseline (hard constraints, summation format only).

Reproduces the driver-Hamiltonian design of Yoshioka et al. [47] as the paper
describes it (Section II-B, Fig. 2d):

* a constraint in **summation format** (all non-zero coefficients equal ±1,
  same sign) is encoded by the one-dimensional cyclic driver
  ``H_d = sum_i X_i X_{i+1} + Y_i Y_{i+1}`` over the ring of its variables
  (``i+1`` taken cyclically), which conserves the number of excited qubits
  within that ring;
* the initial state is one feasible solution of the constraint system;
* constraints that are *not* in summation format — or that share variables
  with another encoded constraint — cannot be represented by the cyclic
  driver.  Following the paper's characterisation, they are dropped from the
  driver (left to the objective's penalty term), which is exactly why this
  baseline "may locate solutions in the non-constrained space" (Fig. 1a).

The driver evolution ``e^{-i beta (XX + YY)}`` on a pair is the hop operator
``2 * H_c(u)`` with ``u = (+1, -1)`` on that pair, so we reuse the commute
term machinery for exact dense application and emit RXX/RYY gates for the
deployable circuit.

Because every ring hop conserves the excitation number of its chain, the
evolution also never leaves the feasible subspace of the *encoded*
constraint rows.  The ``subspace`` backend exploits this exactly like
Choco-Q's: it enumerates ``F_enc = {x : C_enc x = c_enc}`` once into a
:class:`~repro.core.subspace.SubspaceMap` and applies each hop as a pairing
permutation over ``O(|F_enc|)`` amplitudes (the unencoded constraints stay
in the penalty objective, evaluated directly on the feasible basis).  For
problems with no encodable chain the solver falls back to the dense layout —
there is no invariant subspace to restrict to.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.encoding import default_penalty_weight, penalty_objective
from repro.core.feasibility import problem_initial_assignment
from repro.core.problem import ConstrainedBinaryProblem
from repro.core.subspace import SubspaceMap
from repro.hamiltonian.commute import CommuteDriver, CommuteHamiltonianTerm
from repro.hamiltonian.compiled import EvolutionProgram, dense_term_pairing
from repro.hamiltonian.diagonal import DiagonalHamiltonian, phase_separation_circuit
from repro.qcircuit.circuit import QuantumCircuit
from repro.solvers.base import QuantumSolver, SolverResult
from repro.solvers.config import NoiseConfig, SolverConfig, resolve_config_argument
from repro.solvers.optimizer import CobylaOptimizer, Optimizer
from repro.solvers.variational import (
    AnsatzSpec,
    EngineOptions,
    SubspaceStateBackend,
    VariationalEngine,
    basis_state,
    resolve_auto_subspace_limit,
)


def summation_chains(problem: ConstrainedBinaryProblem) -> tuple[list[list[int]], list[int]]:
    """Split constraints into encodable chains and the indices of the rest.

    A constraint is encodable when it is in summation format and none of its
    variables already belong to a previously encoded chain (the cyclic driver
    cannot share variables across constraints, Section III).
    Returns ``(chains, unencoded_constraint_indices)``.
    """
    chains: list[list[int]] = []
    used: set[int] = set()
    unencoded: list[int] = []
    for index, constraint in enumerate(problem.constraints):
        support = list(constraint.support)
        if (
            constraint.is_summation_format()
            and len(support) >= 2
            and not used.intersection(support)
        ):
            chains.append(support)
            used.update(support)
        else:
            unencoded.append(index)
    return chains, unencoded


def chain_hop_edges(chain: Sequence[int]) -> list[tuple[int, int]]:
    """The qubit pairs the cyclic driver hops on, for one encoded chain.

    A chain of ``k >= 3`` variables is closed into a ring: consecutive pairs
    plus the wrap-around ``(last, first)`` edge, matching ``H_d = sum_i
    X_i X_{i+1} + Y_i Y_{i+1}`` with ``i+1`` taken modulo ``k``.  A length-2
    chain is the degenerate ring whose two edges coincide — emitting the
    closing edge as well would apply the same hop twice per layer, silently
    doubling the mixing angle relative to ``e^{-i beta (XX + YY)}`` — so
    there the single edge stands alone.
    """
    edges = list(zip(chain, chain[1:]))
    if len(chain) >= 3:
        edges.append((chain[-1], chain[0]))
    return edges


@dataclass(frozen=True)
class CyclicQAOAConfig(SolverConfig):
    """Algorithmic knobs of the cyclic-QAOA baseline.

    Attributes:
        num_layers: number of (phase, ring-mixer) QAOA layers.
        penalty_weight: penalty multiplier for the constraints the cyclic
            driver cannot encode; ``None`` derives the default weight.
        backend: ``"dense"``, ``"subspace"`` (encoded-chain sector) or
            ``"auto"`` — see the backend matrix in ROADMAP.md.
        subspace_limit: feasible-set size guard for the subspace backends.
        noise: serializable device-noise scenario
            (:class:`~repro.solvers.config.NoiseConfig`, a device name, or
            its dict form) applied at the final sampling step.
    """

    num_layers: int = 7
    penalty_weight: float | None = None
    backend: str = "dense"
    subspace_limit: int | None = None
    noise: NoiseConfig | str | dict | None = None


class CyclicQAOASolver(QuantumSolver):
    """Hard-constraint QAOA with the cyclic (XY-ring) driver Hamiltonian."""

    name = "cyclic-qaoa"

    def __init__(
        self,
        config: CyclicQAOAConfig | None = None,
        optimizer: Optimizer | None = None,
        options: EngineOptions | None = None,
        **config_kwargs,
    ) -> None:
        self.config = resolve_config_argument(config, config_kwargs, CyclicQAOAConfig)
        self.optimizer = optimizer or CobylaOptimizer(max_iterations=150)
        self.options = options or EngineOptions()

    @property
    def num_layers(self) -> int:
        return self.config.num_layers

    @property
    def penalty_weight(self) -> float | None:
        return self.config.penalty_weight

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def subspace_limit(self) -> int | None:
        return self.config.subspace_limit

    # ------------------------------------------------------------------

    def solve(self, problem: ConstrainedBinaryProblem) -> SolverResult:
        spec = self.build_spec(problem)
        engine = VariationalEngine(
            self.optimizer, self.options.with_noise(self.config.noise)
        )
        # The engine folds spec.metadata (chains, penalty weight, subspace
        # size) into the result's metadata.
        return engine.run(spec, problem)

    # ------------------------------------------------------------------

    def _initial_parameters(self) -> np.ndarray:
        layers = np.arange(1, self.num_layers + 1)
        gammas = 0.7 * layers / self.num_layers
        betas = 0.7 * (1.0 - layers / self.num_layers) + 0.1
        return np.ravel(np.column_stack([gammas, betas]))

    def _resolve_subspace_map(
        self, problem: ConstrainedBinaryProblem, chains: list[list[int]], unencoded: list[int]
    ) -> SubspaceMap | None:
        """The feasible subspace of the *encoded* constraint rows, or None.

        The ring hops conserve exactly the encoded rows, so the invariant
        subspace is ``{x : C_enc x = c_enc}`` — the unencoded rows stay soft
        (penalty) just as on the dense path.  Returns ``None`` (dense
        layout) when the config says so, when no constraint is encodable,
        or when ``auto`` finds the encoded feasible set past the limit.
        """
        if self.backend == "dense":
            return None
        if not chains:
            if self.backend == "subspace":
                warnings.warn(
                    "no constraint is encodable by the cyclic driver; the "
                    "subspace backend has no invariant subspace to restrict "
                    "to and falls back to dense",
                    stacklevel=3,
                )
            return None
        unencoded_set = set(unencoded)
        encoded = [
            constraint
            for index, constraint in enumerate(problem.constraints)
            if index not in unencoded_set
        ]
        matrix = np.array([list(c.coefficients) for c in encoded], dtype=float)
        rhs = np.array([c.rhs for c in encoded], dtype=float)
        if self.backend == "subspace":
            return SubspaceMap.from_constraints(matrix, rhs, limit=self.subspace_limit)
        return SubspaceMap.try_from_constraints(
            matrix, rhs, limit=resolve_auto_subspace_limit(self.subspace_limit)
        )

    def build_spec(self, problem: ConstrainedBinaryProblem) -> AnsatzSpec:
        """The compiled :class:`AnsatzSpec` for one problem.

        Public so benchmarks and analyses can time or inspect the prepared
        evolution without running the optimizer — the same spec
        :meth:`solve` executes.
        """
        num_qubits = problem.num_variables
        num_layers = self.num_layers
        chains, unencoded = summation_chains(problem)

        # The objective Hamiltonian carries a penalty for whatever the driver
        # cannot encode (matching how the baseline handles general systems).
        if unencoded:
            weight = (
                self.penalty_weight
                if self.penalty_weight is not None
                else default_penalty_weight(problem)
            )
            residual = ConstrainedBinaryProblem(
                num_variables=num_qubits,
                objective=problem.minimization_objective(),
                constraints=[problem.constraints[i] for i in unencoded],
                sense="min",
                name=f"{problem.name}-residual",
                variable_names=problem.variable_names,
            )
            cost_objective = penalty_objective(residual, weight)
        else:
            weight = 0.0
            cost_objective = problem.minimization_objective()

        initial_bits = problem_initial_assignment(problem)

        # Each ring edge (a, b) contributes XX + YY = 2 * H_c(u) with
        # u = +1 on one qubit and -1 on the other.
        pair_terms: list[CommuteHamiltonianTerm] = []
        for chain in chains:
            for qubit_a, qubit_b in chain_hop_edges(chain):
                u = [0] * num_qubits
                u[qubit_a] = 1
                u[qubit_b] = -1
                pair_terms.append(CommuteHamiltonianTerm(tuple(u)))
        driver = CommuteDriver(pair_terms) if pair_terms else None

        subspace_map = self._resolve_subspace_map(problem, chains, unencoded)
        if subspace_map is not None:
            # Encoded-subspace layout: per-iteration objects have length
            # |F_enc|, and each hop is a precomputed pairing permutation.
            restricted_driver = driver.restrict(subspace_map)
            cost_diagonal = subspace_map.evaluate_polynomial(cost_objective.terms)
            initial_state = subspace_map.basis_state(initial_bits)
            state_backend = SubspaceStateBackend(subspace_map)
            pairings = restricted_driver.pairings
        else:
            hamiltonian = DiagonalHamiltonian.from_polynomial(cost_objective.terms, num_qubits)
            cost_diagonal = hamiltonian.diagonal
            initial_state = basis_state(num_qubits, initial_bits)
            state_backend = None
            # A problem with no encodable chain has no hop terms: the program
            # degenerates to the pure phase-separation sequence.
            pairings = (
                tuple(dense_term_pairing(term) for term in driver.terms)
                if driver is not None
                else ()
            )

        # Compile once per prepare: XX + YY = 2 H_c(u), so every ring hop
        # evolves with angle 2*beta (angle_scale).  One vector (2L,) or a
        # batch (k, 2L): the program broadcasts over leading axes, so the
        # same closure serves the optimizer loop and the vectorised
        # parameter-sweep path.
        program = EvolutionProgram(
            num_layers, cost_diagonal, pairings, angle_scale=2.0
        )
        evolve = program.bind(initial_state)

        def build_circuit(parameters: np.ndarray) -> QuantumCircuit:
            circuit = QuantumCircuit(num_qubits, name="cyclic_qaoa")
            for qubit, bit in enumerate(initial_bits):
                if bit:
                    circuit.x(qubit)
            for layer in range(num_layers):
                gamma = float(parameters[2 * layer])
                beta = float(parameters[2 * layer + 1])
                phase_circuit = phase_separation_circuit(cost_objective.terms, num_qubits, gamma)
                circuit.compose(phase_circuit, qubits=range(num_qubits))
                for chain in chains:
                    for qubit_a, qubit_b in chain_hop_edges(chain):
                        circuit.rxx(2.0 * beta, qubit_a, qubit_b)
                        circuit.ryy(2.0 * beta, qubit_a, qubit_b)
            return circuit

        metadata = {
            "num_layers": num_layers,
            "encoded_chains": chains,
            "unencoded_constraints": unencoded,
            "penalty_weight": weight,
            "backend_requested": self.backend,
        }
        if subspace_map is not None:
            metadata["subspace_size"] = subspace_map.size
        return AnsatzSpec(
            name=self.name,
            num_qubits=num_qubits,
            initial_state=initial_state,
            cost_diagonal=cost_diagonal,
            evolve=evolve,
            build_circuit=build_circuit,
            initial_parameters=self._initial_parameters(),
            metadata=metadata,
            backend=state_backend,
            evolve_batch=evolve,
        )
