"""Cyclic-Hamiltonian QAOA baseline (hard constraints, summation format only).

Reproduces the driver-Hamiltonian design of Yoshioka et al. [47] as the paper
describes it (Section II-B, Fig. 2d):

* a constraint in **summation format** (all non-zero coefficients equal ±1,
  same sign) is encoded by the one-dimensional cyclic driver
  ``H_d = sum_i X_i X_{i+1} + Y_i Y_{i+1}`` over the chain of its variables,
  which conserves the number of excited qubits within that chain;
* the initial state is one feasible solution of the constraint system;
* constraints that are *not* in summation format — or that share variables
  with another encoded constraint — cannot be represented by the cyclic
  driver.  Following the paper's characterisation, they are dropped from the
  driver (left to the objective's penalty term), which is exactly why this
  baseline "may locate solutions in the non-constrained space" (Fig. 1a).

The driver evolution ``e^{-i beta (XX + YY)}`` on a pair is the hop operator
``2 * H_c(u)`` with ``u = (+1, -1)`` on that pair, so we reuse the commute
term machinery for exact dense application and emit RXX/RYY gates for the
deployable circuit.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding import default_penalty_weight, penalty_objective
from repro.core.feasibility import problem_initial_assignment
from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint
from repro.exceptions import SolverError
from repro.hamiltonian.commute import CommuteHamiltonianTerm
from repro.hamiltonian.diagonal import DiagonalHamiltonian, phase_separation_circuit
from repro.qcircuit.circuit import QuantumCircuit
from repro.solvers.base import QuantumSolver, SolverResult
from repro.solvers.optimizer import CobylaOptimizer, Optimizer
from repro.solvers.variational import AnsatzSpec, EngineOptions, VariationalEngine, basis_state


def summation_chains(problem: ConstrainedBinaryProblem) -> tuple[list[list[int]], list[int]]:
    """Split constraints into encodable chains and the indices of the rest.

    A constraint is encodable when it is in summation format and none of its
    variables already belong to a previously encoded chain (the cyclic driver
    cannot share variables across constraints, Section III).
    Returns ``(chains, unencoded_constraint_indices)``.
    """
    chains: list[list[int]] = []
    used: set[int] = set()
    unencoded: list[int] = []
    for index, constraint in enumerate(problem.constraints):
        support = list(constraint.support)
        if (
            constraint.is_summation_format()
            and len(support) >= 2
            and not used.intersection(support)
        ):
            chains.append(support)
            used.update(support)
        else:
            unencoded.append(index)
    return chains, unencoded


class CyclicQAOASolver(QuantumSolver):
    """Hard-constraint QAOA with the cyclic (XY-chain) driver Hamiltonian."""

    name = "cyclic-qaoa"

    def __init__(
        self,
        num_layers: int = 7,
        penalty_weight: float | None = None,
        optimizer: Optimizer | None = None,
        options: EngineOptions | None = None,
    ) -> None:
        if num_layers < 1:
            raise SolverError("num_layers must be positive")
        self.num_layers = num_layers
        self.penalty_weight = penalty_weight
        self.optimizer = optimizer or CobylaOptimizer(max_iterations=150)
        self.options = options or EngineOptions()

    # ------------------------------------------------------------------

    def solve(self, problem: ConstrainedBinaryProblem) -> SolverResult:
        num_qubits = problem.num_variables
        chains, unencoded = summation_chains(problem)

        # The objective Hamiltonian carries a penalty for whatever the driver
        # cannot encode (matching how the baseline handles general systems).
        if unencoded:
            weight = (
                self.penalty_weight
                if self.penalty_weight is not None
                else default_penalty_weight(problem)
            )
            residual = ConstrainedBinaryProblem(
                num_variables=num_qubits,
                objective=problem.minimization_objective(),
                constraints=[problem.constraints[i] for i in unencoded],
                sense="min",
                name=f"{problem.name}-residual",
                variable_names=problem.variable_names,
            )
            cost_objective = penalty_objective(residual, weight)
        else:
            weight = 0.0
            cost_objective = problem.minimization_objective()
        hamiltonian = DiagonalHamiltonian.from_polynomial(cost_objective.terms, num_qubits)

        initial_bits = problem_initial_assignment(problem)
        initial_state = basis_state(num_qubits, initial_bits)

        # Each chain pair (i, i+1) contributes XX + YY = 2 * H_c(u) with
        # u = +1 on one qubit and -1 on the other.
        pair_terms: list[CommuteHamiltonianTerm] = []
        for chain in chains:
            for qubit_a, qubit_b in zip(chain, chain[1:]):
                u = [0] * num_qubits
                u[qubit_a] = 1
                u[qubit_b] = -1
                pair_terms.append(CommuteHamiltonianTerm(tuple(u)))

        spec = self._build_spec(
            problem,
            hamiltonian,
            cost_objective.terms,
            num_qubits,
            initial_bits,
            initial_state,
            pair_terms,
            chains,
            unencoded,
        )
        engine = VariationalEngine(self.optimizer, self.options)
        result = engine.run(spec, problem)
        result.metadata["encoded_chains"] = chains
        result.metadata["unencoded_constraints"] = unencoded
        result.metadata["penalty_weight"] = weight
        return result

    # ------------------------------------------------------------------

    def _initial_parameters(self) -> np.ndarray:
        layers = np.arange(1, self.num_layers + 1)
        gammas = 0.7 * layers / self.num_layers
        betas = 0.7 * (1.0 - layers / self.num_layers) + 0.1
        return np.ravel(np.column_stack([gammas, betas]))

    def _build_spec(
        self,
        problem: ConstrainedBinaryProblem,
        hamiltonian: DiagonalHamiltonian,
        cost_terms,
        num_qubits: int,
        initial_bits: tuple[int, ...],
        initial_state: np.ndarray,
        pair_terms: list[CommuteHamiltonianTerm],
        chains: list[list[int]],
        unencoded: list[int],
    ) -> AnsatzSpec:
        num_layers = self.num_layers

        def evolve(parameters: np.ndarray) -> np.ndarray:
            state = initial_state.copy()
            for layer in range(num_layers):
                gamma = parameters[2 * layer]
                beta = parameters[2 * layer + 1]
                state = hamiltonian.apply_evolution(state, gamma)
                # XX + YY = 2 H_c(u): evolve each pair hop with angle 2*beta.
                for term in pair_terms:
                    state = term.apply_evolution(state, 2.0 * beta)
            return state

        def build_circuit(parameters: np.ndarray) -> QuantumCircuit:
            circuit = QuantumCircuit(num_qubits, name="cyclic_qaoa")
            for qubit, bit in enumerate(initial_bits):
                if bit:
                    circuit.x(qubit)
            for layer in range(num_layers):
                gamma = float(parameters[2 * layer])
                beta = float(parameters[2 * layer + 1])
                phase_circuit = phase_separation_circuit(cost_terms, num_qubits, gamma)
                circuit.compose(phase_circuit, qubits=range(num_qubits))
                for chain in chains:
                    for qubit_a, qubit_b in zip(chain, chain[1:]):
                        circuit.rxx(2.0 * beta, qubit_a, qubit_b)
                        circuit.ryy(2.0 * beta, qubit_a, qubit_b)
            return circuit

        return AnsatzSpec(
            name=self.name,
            num_qubits=num_qubits,
            initial_state=initial_state,
            cost_diagonal=hamiltonian.diagonal,
            evolve=evolve,
            build_circuit=build_circuit,
            initial_parameters=self._initial_parameters(),
            metadata={
                "num_layers": num_layers,
                "encoded_chains": chains,
                "unencoded_constraints": unencoded,
            },
        )
