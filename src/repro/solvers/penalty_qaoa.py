"""Penalty-based QAOA baseline (soft constraints).

This reproduces the baseline of Verma & Lewis [44] as integrated in the
paper: the constraints are folded into the objective as quadratic penalty
terms (Section II-B, Fig. 2c), the resulting QUBO is encoded as a diagonal
objective Hamiltonian, and the standard transverse-field mixer
(``RX`` on every qubit) is used as the driver.  The circuit is

    |+>^n  ->  [ e^{-i gamma_l H_o+p}  ·  prod_j RX_j(2 beta_l) ] x L layers.

Two optional enhancements from the paper's comparison setup are included:

* **FrozenQubits** [4] — freeze the highest-degree (hotspot) variables of the
  QUBO to their locally best value and solve the reduced problem, boosting
  fidelity at the price of classical enumeration;
* **Red-QAOA-style initial parameters** [45] — a linear ramp initialisation
  of (gamma, beta) instead of random angles, which is the essence of the
  parameter-initialisation optimisation that Red-QAOA contributes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoding import default_penalty_weight, frozen_variables, penalty_objective
from repro.core.problem import ConstrainedBinaryProblem
from repro.exceptions import SolverError
from repro.hamiltonian.diagonal import DiagonalHamiltonian, phase_separation_circuit
from repro.qcircuit.circuit import QuantumCircuit
from repro.solvers.base import QuantumSolver, SolverResult
from repro.solvers.config import NoiseConfig, SolverConfig, resolve_config_argument
from repro.solvers.optimizer import CobylaOptimizer, Optimizer
from repro.solvers.variational import (
    AnsatzSpec,
    EngineOptions,
    VariationalEngine,
    apply_rx_layer,
    uniform_state,
)


@dataclass(frozen=True)
class PenaltyQAOAConfig(SolverConfig):
    """Algorithmic knobs of the penalty-QAOA baseline.

    Attributes:
        num_layers: number of (phase, mixer) QAOA layers.
        penalty_weight: the quadratic penalty multiplier; ``None`` derives
            the default weight from the problem's objective range.
        freeze_hotspots: how many hotspot variables FrozenQubits freezes.
        linear_ramp_init: Red-QAOA-style linear-ramp initial parameters
            instead of seeded random angles.
        noise: serializable device-noise scenario
            (:class:`~repro.solvers.config.NoiseConfig`, a device name, or
            its dict form) applied at the final sampling step.
    """

    num_layers: int = 7
    penalty_weight: float | None = None
    freeze_hotspots: int = 0
    linear_ramp_init: bool = True
    noise: NoiseConfig | str | dict | None = None

    def _validate(self) -> None:
        if self.freeze_hotspots < 0:
            raise SolverError("freeze_hotspots must be non-negative")


class PenaltyQAOASolver(QuantumSolver):
    """Soft-constraint QAOA with the transverse-field mixer."""

    name = "penalty-qaoa"

    def __init__(
        self,
        config: PenaltyQAOAConfig | None = None,
        optimizer: Optimizer | None = None,
        options: EngineOptions | None = None,
        **config_kwargs,
    ) -> None:
        self.config = resolve_config_argument(config, config_kwargs, PenaltyQAOAConfig)
        self.optimizer = optimizer or CobylaOptimizer(max_iterations=150)
        self.options = options or EngineOptions()

    @property
    def num_layers(self) -> int:
        return self.config.num_layers

    @property
    def penalty_weight(self) -> float | None:
        return self.config.penalty_weight

    @property
    def freeze_hotspots(self) -> int:
        return self.config.freeze_hotspots

    @property
    def linear_ramp_init(self) -> bool:
        return self.config.linear_ramp_init

    # ------------------------------------------------------------------

    def solve(self, problem: ConstrainedBinaryProblem) -> SolverResult:
        working_problem = problem
        frozen: list[tuple[int, int]] = []
        if self.freeze_hotspots > 0:
            frozen = frozen_variables(problem, self.freeze_hotspots)
            for variable, value in frozen:
                working_problem = working_problem.fix_variable(variable, value)

        weight = (
            self.penalty_weight
            if self.penalty_weight is not None
            else default_penalty_weight(problem)
        )
        qubo = penalty_objective(working_problem, weight)
        num_qubits = problem.num_variables
        hamiltonian = DiagonalHamiltonian.from_polynomial(qubo.terms, num_qubits)
        spec = self._build_spec(problem, hamiltonian, qubo.terms, num_qubits, weight, frozen)
        engine = VariationalEngine(
            self.optimizer, self.options.with_noise(self.config.noise)
        )
        result = engine.run(spec, problem)
        result.metadata["penalty_weight"] = weight
        result.metadata["frozen_variables"] = frozen
        return result

    # ------------------------------------------------------------------

    def _initial_parameters(self) -> np.ndarray:
        """(gamma_1, beta_1, ..., gamma_L, beta_L)."""
        if self.linear_ramp_init:
            # Red-QAOA-style annealing-inspired ramp: gamma grows, beta shrinks.
            layers = np.arange(1, self.num_layers + 1)
            gammas = 0.7 * layers / self.num_layers
            betas = 0.7 * (1.0 - layers / self.num_layers) + 0.1
        else:
            rng = np.random.default_rng(self.options.seed)
            gammas = rng.uniform(0, np.pi, size=self.num_layers)
            betas = rng.uniform(0, np.pi / 2, size=self.num_layers)
        return np.ravel(np.column_stack([gammas, betas]))

    def _build_spec(
        self,
        problem: ConstrainedBinaryProblem,
        hamiltonian: DiagonalHamiltonian,
        qubo_terms,
        num_qubits: int,
        weight: float,
        frozen: list[tuple[int, int]],
    ) -> AnsatzSpec:
        initial_state = uniform_state(num_qubits)
        num_layers = self.num_layers

        def evolve(parameters: np.ndarray) -> np.ndarray:
            state = initial_state.copy()
            for layer in range(num_layers):
                gamma = parameters[2 * layer]
                beta = parameters[2 * layer + 1]
                state = hamiltonian.apply_evolution(state, gamma)
                state = apply_rx_layer(state, beta, num_qubits)
            return state

        def build_circuit(parameters: np.ndarray) -> QuantumCircuit:
            circuit = QuantumCircuit(num_qubits, name="penalty_qaoa")
            for qubit in range(num_qubits):
                circuit.h(qubit)
            for layer in range(num_layers):
                gamma = float(parameters[2 * layer])
                beta = float(parameters[2 * layer + 1])
                phase_circuit = phase_separation_circuit(qubo_terms, num_qubits, gamma)
                circuit.compose(phase_circuit, qubits=range(num_qubits))
                for qubit in range(num_qubits):
                    circuit.rx(2.0 * beta, qubit)
            return circuit

        return AnsatzSpec(
            name=self.name,
            num_qubits=num_qubits,
            initial_state=initial_state,
            cost_diagonal=hamiltonian.diagonal,
            evolve=evolve,
            build_circuit=build_circuit,
            initial_parameters=self._initial_parameters(),
            metadata={
                "num_layers": num_layers,
                "penalty_weight": weight,
                "frozen_variables": frozen,
            },
        )
