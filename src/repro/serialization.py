"""JSON-sanitization helpers shared by the serializable result types.

Solver results carry numpy scalars, numpy arrays and tuples in their
metadata (initial assignments, shot allocations, frozen-variable pairs...).
:func:`json_sanitize` normalizes such a structure into plain JSON types so
``to_dict()`` outputs can be persisted by the :mod:`repro.run` experiment
runner and hashed canonically.

The mapping is lossy on purpose: tuples become lists and numpy arrays become
nested lists, so ``from_dict(to_dict(x)).to_dict() == to_dict(x)`` is the
round-trip invariant (dict-level fixed point), not object-level identity.
Values of types JSON cannot represent (a noise model, say) degrade to their
``repr`` — serialization must never be the thing that makes a run crash.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def json_sanitize(value: Any) -> Any:
    """Recursively convert ``value`` into plain JSON-serializable types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [json_sanitize(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {str(key): json_sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [json_sanitize(item) for item in items]
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        # Serializable objects (a NoiseConfig riding inside a RunSpec config
        # dict, say) flatten to their canonical dict form instead of a repr.
        return json_sanitize(to_dict())
    return repr(value)
