"""Line-coverage report for ``src/repro`` built on stdlib tracing.

The container ships neither ``coverage.py`` nor ``pytest-cov``, so this
script implements the minimum needed to catch untested modules: a
``sys.settrace`` hook that records executed lines for files under
``src/repro`` only (every other frame opts out at call time, keeping the
overhead on library code rather than on numpy/pytest internals), compared
against the executable statements found by parsing each module's AST.

Usage::

    python scripts/coverage_report.py [--min PCT] [pytest args...]

``--min PCT`` turns the report into a gate: when the total line coverage
falls below ``PCT`` percent the exit code is non-zero even if every test
passed, so CI can require a coverage floor instead of only printing the
table.  All other arguments are forwarded to pytest verbatim; without any,
the fast tier (``-q -m "not slow"``) runs.  The exit code is pytest's
(coverage shortfall reports as exit 2 when pytest itself passed).
``make coverage`` wraps the default invocation.
"""

from __future__ import annotations

import ast
import os
import sys
import threading

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")
PACKAGE_ROOT = os.path.join(SRC_ROOT, "repro")

_executed_lines: dict[str, set[int]] = {}


def _global_trace(frame, event, arg):
    if event != "call":
        return None
    filename = frame.f_code.co_filename
    if not filename.startswith(PACKAGE_ROOT):
        return None
    lines = _executed_lines.setdefault(filename, set())

    def _local_trace(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return _local_trace

    return _local_trace


def executable_lines(path: str) -> set[int]:
    """Line numbers of executable statements in one module (via its AST).

    Docstring expressions are excluded — the interpreter binds them during
    class/function definition without emitting a line event for the string
    itself, so counting them would under-report fully-covered modules.
    """
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            continue
        lines.add(node.lineno)
    return lines


def iter_package_modules() -> list[str]:
    paths = []
    for directory, _, filenames in os.walk(PACKAGE_ROOT):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                paths.append(os.path.join(directory, filename))
    return sorted(paths)


def build_report() -> list[dict]:
    rows = []
    for path in iter_package_modules():
        module = os.path.relpath(path, SRC_ROOT).replace(os.sep, ".")[: -len(".py")]
        statements = executable_lines(path)
        hit = _executed_lines.get(path, set()) & statements
        percent = 100.0 * len(hit) / len(statements) if statements else 100.0
        rows.append(
            {
                "module": module,
                "statements": len(statements),
                "executed": len(hit),
                "percent": percent,
            }
        )
    return sorted(rows, key=lambda row: (row["percent"], row["module"]))


def total_percent(rows: list[dict]) -> float:
    """Aggregate line coverage across every package module."""
    total_statements = sum(row["statements"] for row in rows)
    total_executed = sum(row["executed"] for row in rows)
    return 100.0 * total_executed / total_statements if total_statements else 100.0


def print_report(rows: list[dict]) -> None:
    width = max(len(row["module"]) for row in rows)
    print()
    print(f"{'module'.ljust(width)}  stmts  hit   cover")
    print("-" * (width + 20))
    for row in rows:
        print(
            f"{row['module'].ljust(width)}  {row['statements']:5d}  {row['executed']:4d}"
            f"  {row['percent']:5.1f}%"
        )
    total_statements = sum(row["statements"] for row in rows)
    total_executed = sum(row["executed"] for row in rows)
    print("-" * (width + 20))
    print(
        f"{'TOTAL'.ljust(width)}  {total_statements:5d}  {total_executed:4d}"
        f"  {total_percent(rows):5.1f}%"
    )
    untested = [row["module"] for row in rows if row["executed"] == 0]
    if untested:
        print()
        print("untested modules (no line ever executed):")
        for module in untested:
            print(f"  - {module}")


def split_min_threshold(argv: list[str]) -> tuple[float | None, list[str]]:
    """Extract ``--min PCT`` (or ``--min=PCT``) from argv; rest goes to pytest."""
    minimum: float | None = None
    forwarded: list[str] = []
    index = 0
    while index < len(argv):
        argument = argv[index]
        if argument == "--min":
            if index + 1 >= len(argv):
                raise SystemExit("coverage_report: --min requires a percentage")
            minimum = float(argv[index + 1])
            index += 2
            continue
        if argument.startswith("--min="):
            minimum = float(argument.split("=", 1)[1])
            index += 1
            continue
        forwarded.append(argument)
        index += 1
    return minimum, forwarded


def main() -> int:
    sys.path.insert(0, SRC_ROOT)
    minimum, pytest_args = split_min_threshold(sys.argv[1:])
    pytest_args = pytest_args or ["-q", "-m", "not slow"]

    import pytest

    threading.settrace(_global_trace)
    sys.settrace(_global_trace)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]

    rows = build_report()
    print_report(rows)
    if minimum is not None:
        total = total_percent(rows)
        if total < minimum:
            print(
                f"\ncoverage gate: total {total:.1f}% is below the required "
                f"minimum {minimum:.1f}%"
            )
            return int(exit_code) or 2
        print(f"\ncoverage gate: total {total:.1f}% >= minimum {minimum:.1f}%")
    return int(exit_code)


if __name__ == "__main__":
    raise SystemExit(main())
