"""Randomized pass-stack equivalence harness.

Every optimization pass — and every sampled ``PassManager`` pipeline
permutation — must preserve the circuit unitary up to a global phase.
Seeded random circuits (the fixture style of
``tests/test_cross_backend_equivalence.py``) are drawn from the full
high-level gate set with deliberate adjacent-duplicate structure so fusion,
cancellation, commutation, and ladder re-synthesis all get real work, then
each rewrite's full unitary is compared column-by-column against its input.
"""

from __future__ import annotations

import itertools
import zlib

import numpy as np
import pytest

from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.gates import BASIS_GATES
from repro.qcircuit.passes import (
    CommuteDiagonalPass,
    InverseCancellationPass,
    LadderResynthesisPass,
    PassManager,
    RotationFusionPass,
)
from repro.qcircuit.statevector import Statevector, StatevectorSimulator
from repro.qcircuit.transpile import TranspileOptions, transpile
from repro.testing import operators_equal_up_to_phase

NUM_QUBITS = 3
CASE_SEEDS = tuple(range(6))
#: Basis views mirroring bench_transpile_optimization: the package default
#: and the extended basis that lets ladder re-synthesis emit rzz/cp.
BASES = {
    "default": frozenset(BASIS_GATES),
    "+rzz+cp": frozenset(BASIS_GATES | {"rzz", "cp"}),
}

_SINGLE_CLIFFORDS = ("h", "s", "sdg", "t", "tdg", "x", "y", "z", "sx")
_SINGLE_ROTATIONS = ("rx", "ry", "rz", "p")
_TWO_QUBIT_PLAIN = ("cx", "cz", "swap")
_TWO_QUBIT_ROTATIONS = ("cp", "rzz", "rxx", "ryy")


def _case_seed(*parts) -> int:
    """Deterministic per-case RNG seed (str hash() is salted per process)."""
    return zlib.crc32("/".join(str(part) for part in parts).encode())


def random_circuit(num_qubits: int, num_gates: int, seed: int) -> QuantumCircuit:
    """A seeded random circuit with adjacent-duplicate structure.

    A quarter of the draws immediately repeat the previous gate so
    self-inverse pairs (cancellation) and same-axis rotation pairs (fusion)
    actually occur; occasional barriers exercise directive fencing.
    """
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"rand{seed}")
    previous = None
    while circuit.size() < num_gates:
        if previous is not None and rng.random() < 0.25:
            circuit.append(previous[0], previous[1])
            previous = None
            continue
        if rng.random() < 0.05:
            circuit.barrier()
            previous = None
            continue
        roll = rng.random()
        if roll < 0.30:
            name = rng.choice(_SINGLE_CLIFFORDS)
            qubits = [int(rng.integers(num_qubits))]
            getattr(circuit, name)(qubits[0])
        elif roll < 0.55:
            name = rng.choice(_SINGLE_ROTATIONS)
            qubits = [int(rng.integers(num_qubits))]
            getattr(circuit, name)(float(rng.uniform(-np.pi, np.pi)), qubits[0])
        elif roll < 0.75:
            name = rng.choice(_TWO_QUBIT_PLAIN)
            qubits = [int(q) for q in rng.choice(num_qubits, size=2, replace=False)]
            getattr(circuit, name)(qubits[0], qubits[1])
        elif roll < 0.95:
            name = rng.choice(_TWO_QUBIT_ROTATIONS)
            qubits = [int(q) for q in rng.choice(num_qubits, size=2, replace=False)]
            getattr(circuit, name)(float(rng.uniform(-np.pi, np.pi)), qubits[0], qubits[1])
        else:
            qubits = [int(q) for q in rng.choice(num_qubits, size=3, replace=False)]
            circuit.mcp(float(rng.uniform(-np.pi, np.pi)), qubits[:2], qubits[2])
        previous = (circuit.instructions[-1].gate, circuit.instructions[-1].qubits)
    return circuit


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """The circuit's full unitary, one simulated column per basis state."""
    dim = 2**circuit.num_qubits
    simulator = StatevectorSimulator(max_qubits=circuit.num_qubits)
    matrix = np.zeros((dim, dim), dtype=complex)
    for column in range(dim):
        basis = np.zeros(dim, dtype=complex)
        basis[column] = 1.0
        state = Statevector(data=basis, num_qubits=circuit.num_qubits)
        matrix[:, column] = simulator.statevector(circuit, initial_state=state).data
    return matrix


def _all_passes(basis_gates: frozenset) -> tuple:
    return (
        CommuteDiagonalPass(),
        LadderResynthesisPass(basis_gates),
        RotationFusionPass(),
        InverseCancellationPass(),
    )


def _lowered(seed: int, basis_gates: frozenset) -> QuantumCircuit:
    source = random_circuit(NUM_QUBITS, num_gates=24, seed=seed)
    options = TranspileOptions(basis_gates=basis_gates, optimization_level=0)
    # Lowering may pad the register (multi-controlled phases borrow an
    # ancilla); every comparison below is between circuits sharing that
    # padded register, so the unitaries stay the same shape.
    return transpile(source, options)


class TestSinglePassEquivalence:
    @pytest.mark.parametrize("basis_label", sorted(BASES))
    @pytest.mark.parametrize("case", CASE_SEEDS)
    @pytest.mark.parametrize(
        "pass_index", range(4), ids=["commute", "resynth", "fusion", "cancel"]
    )
    def test_pass_preserves_unitary(self, pass_index, case, basis_label):
        basis = BASES[basis_label]
        lowered = _lowered(_case_seed("single", case, basis_label), basis)
        circuit_pass = _all_passes(basis)[pass_index]
        rewritten = circuit_pass.run(lowered)
        assert operators_equal_up_to_phase(
            circuit_unitary(lowered), circuit_unitary(rewritten)
        ), f"{circuit_pass.name} changed the unitary"


class TestPipelinePermutationEquivalence:
    @pytest.mark.parametrize("basis_label", sorted(BASES))
    @pytest.mark.parametrize("case", CASE_SEEDS[:3])
    def test_sampled_permutations_preserve_unitary(self, case, basis_label):
        basis = BASES[basis_label]
        seed = _case_seed("perm", case, basis_label)
        lowered = _lowered(seed, basis)
        reference = circuit_unitary(lowered)
        permutations = list(itertools.permutations(_all_passes(basis)))
        rng = np.random.default_rng(seed)
        for index in rng.choice(len(permutations), size=4, replace=False):
            pipeline = permutations[int(index)]
            optimized, _ = PassManager(pipeline).run(lowered)
            order = "->".join(p.name for p in pipeline)
            assert optimized.size() <= lowered.size(), order
            assert operators_equal_up_to_phase(
                reference, circuit_unitary(optimized)
            ), f"pipeline {order} changed the unitary"


class TestTranspileLevelEquivalence:
    @pytest.mark.parametrize("basis_label", sorted(BASES))
    @pytest.mark.parametrize("case", CASE_SEEDS[:3])
    @pytest.mark.parametrize("level", (1, 2))
    def test_levels_match_level_zero(self, level, case, basis_label):
        basis = BASES[basis_label]
        source = random_circuit(
            NUM_QUBITS, num_gates=24, seed=_case_seed("level", case, basis_label)
        )
        level_zero = transpile(
            source, TranspileOptions(basis_gates=basis, optimization_level=0)
        )
        optimized = transpile(
            source, TranspileOptions(basis_gates=basis, optimization_level=level)
        )
        assert optimized.size() <= level_zero.size()
        assert operators_equal_up_to_phase(
            circuit_unitary(level_zero), circuit_unitary(optimized)
        ), f"level {level} changed the unitary"
