"""Tests for the shared phase-insensitive comparison helpers in repro.testing.

These helpers back the transpiler-equivalence assertions across the suite;
previously they were the one module ``make coverage`` flagged as untested.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import (
    global_phase_equal,
    operators_equal_up_to_phase,
    random_statevector,
)


class TestGlobalPhaseEqual:
    def test_equal_vectors(self):
        state = random_statevector(3, seed=1)
        assert global_phase_equal(state, state)

    def test_phase_rotated_vectors_are_equal(self):
        state = random_statevector(3, seed=2)
        rotated = np.exp(1j * 0.7) * state
        assert global_phase_equal(state, rotated)

    def test_genuinely_different_vectors(self):
        assert not global_phase_equal(
            random_statevector(3, seed=3), random_statevector(3, seed=4)
        )

    def test_shape_mismatch(self):
        assert not global_phase_equal(
            random_statevector(2, seed=5), random_statevector(3, seed=5)
        )

    def test_non_unit_scaling_is_not_a_phase(self):
        state = random_statevector(2, seed=6)
        assert not global_phase_equal(state, 2.0 * state)

    def test_zero_reference_amplitude_falls_back_to_allclose(self):
        zero = np.zeros(4, dtype=complex)
        assert global_phase_equal(zero, zero)
        assert not global_phase_equal(zero, np.array([1.0, 0, 0, 0], dtype=complex))

    def test_tolerance_respected(self):
        state = random_statevector(2, seed=7)
        # Perturb one entry that is not the phase-reference (largest) one, so
        # the fitted global phase cannot absorb the difference.
        # large enough that allclose's default rtol cannot absorb it either
        nudged = state.copy()
        nudged[int(np.argmin(np.abs(state)))] += 1e-4
        assert not global_phase_equal(state, nudged, atol=1e-9)
        assert global_phase_equal(state, nudged, atol=1e-2)


class TestRandomStatevector:
    def test_normalized(self):
        state = random_statevector(4, seed=8)
        assert state.shape == (16,)
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_seed_reproducibility(self):
        np.testing.assert_array_equal(
            random_statevector(3, seed=9), random_statevector(3, seed=9)
        )
        assert not np.array_equal(
            random_statevector(3, seed=9), random_statevector(3, seed=10)
        )


class TestOperatorsEqualUpToPhase:
    def test_phase_rotated_unitaries(self):
        rng = np.random.default_rng(11)
        matrix = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        unitary, _ = np.linalg.qr(matrix)
        assert operators_equal_up_to_phase(unitary, np.exp(-1j * 1.3) * unitary)

    def test_different_unitaries(self):
        identity = np.eye(2, dtype=complex)
        pauli_x = np.array([[0, 1], [1, 0]], dtype=complex)
        assert not operators_equal_up_to_phase(identity, pauli_x)

    def test_shape_mismatch(self):
        assert not operators_equal_up_to_phase(np.eye(2), np.eye(4))

    def test_zero_operator_falls_back_to_allclose(self):
        zero = np.zeros((2, 2), dtype=complex)
        assert operators_equal_up_to_phase(zero, zero)
        assert not operators_equal_up_to_phase(zero, np.eye(2, dtype=complex))

    def test_non_unit_scaling_is_not_a_phase(self):
        unitary = np.eye(3, dtype=complex)
        assert not operators_equal_up_to_phase(unitary, 3.0 * unitary)
