"""Tests for the circuit-optimization pass stack.

Per-pass rewrite units, the timeline bookkeeping they share, the
``PassManager`` fixpoint loop with its per-pass records, and the frozen
``TranspileReport`` that carries the result into solver metadata.
"""

from __future__ import annotations

import math

import pytest

from repro.exceptions import TranspileError
from repro.qcircuit.circuit import Instruction, QuantumCircuit
from repro.qcircuit.gates import BASIS_GATES, standard_gate
from repro.qcircuit.parameters import Parameter
from repro.qcircuit.passes import (
    DEFAULT_OPTIMIZATION_LEVEL,
    MAX_OPTIMIZATION_LEVEL,
    CircuitStats,
    CommuteDiagonalPass,
    InstructionTimeline,
    InverseCancellationPass,
    LadderResynthesisPass,
    PassManager,
    PassRecord,
    RotationFusionPass,
    TranspileReport,
    default_pipeline,
)


def gate_names(circuit: QuantumCircuit) -> list[str]:
    return [
        instruction.gate.name
        for instruction in circuit
        if not instruction.is_directive
    ]


class TestInstructionTimeline:
    def test_push_remove_roundtrip(self):
        source = QuantumCircuit(2, name="tl")
        timeline = InstructionTimeline()
        first = timeline.push(Instruction(standard_gate("h"), (0,)))
        second = timeline.push(Instruction(standard_gate("cx"), (0, 1)))
        assert timeline.last_index(0) == second
        assert timeline.last_index(1) == second
        timeline.remove(second)
        # Removal exposes the previous instruction on qubit 0 and empties 1.
        assert timeline.last_index(0) == first
        assert timeline.last_index(1) is None
        assert gate_names(timeline.to_circuit(source)) == ["h"]

    def test_double_remove_rejected(self):
        timeline = InstructionTimeline()
        index = timeline.push(Instruction(standard_gate("x"), (0,)))
        timeline.remove(index)
        with pytest.raises(TranspileError):
            timeline.remove(index)

    def test_depth_indexing(self):
        timeline = InstructionTimeline()
        first = timeline.push(Instruction(standard_gate("x"), (0,)))
        second = timeline.push(Instruction(standard_gate("z"), (0,)))
        assert timeline.last_index(0, depth=0) == second
        assert timeline.last_index(0, depth=1) == first
        assert timeline.last_index(0, depth=2) is None


class TestRotationFusion:
    def test_adjacent_rz_merge(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0)
        circuit.rz(0.4, 0)
        fused = RotationFusionPass().run(circuit)
        assert gate_names(fused) == ["rz"]
        assert fused.instructions[0].gate.params[0] == pytest.approx(0.7)

    def test_inverse_rotations_elide_to_nothing(self):
        circuit = QuantumCircuit(1)
        circuit.rx(0.9, 0)
        circuit.rx(-0.9, 0)
        assert gate_names(RotationFusionPass().run(circuit)) == []

    def test_zero_angle_dropped_on_arrival(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.0, 0)
        circuit.h(0)
        assert gate_names(RotationFusionPass().run(circuit)) == ["h"]

    def test_fusion_across_disjoint_qubits(self):
        # The rz(1) between the two rz(0) does not block timeline adjacency.
        circuit = QuantumCircuit(2)
        circuit.rz(0.1, 0)
        circuit.rz(0.5, 1)
        circuit.rz(0.2, 0)
        fused = RotationFusionPass().run(circuit)
        assert gate_names(fused) == ["rz", "rz"]
        angles = sorted(
            float(i.gate.params[0]) for i in fused.instructions
        )
        assert angles == pytest.approx([0.3, 0.5])

    def test_blocked_by_interposed_gate(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0)
        circuit.h(0)
        circuit.rz(0.4, 0)
        assert gate_names(RotationFusionPass().run(circuit)) == ["rz", "h", "rz"]

    def test_rzz_merges_under_operand_swap(self):
        # rzz is symmetric under qubit exchange, so (0,1) and (1,0) fuse.
        circuit = QuantumCircuit(2)
        circuit.rzz(0.3, 0, 1)
        circuit.rzz(0.4, 1, 0)
        fused = RotationFusionPass().run(circuit)
        assert gate_names(fused) == ["rzz"]
        assert fused.instructions[0].gate.params[0] == pytest.approx(0.7)

    def test_parameterized_rotation_never_fused(self):
        theta = Parameter("theta")
        circuit = QuantumCircuit(1)
        circuit.rz(theta, 0)
        circuit.rz(0.4, 0)
        assert gate_names(RotationFusionPass().run(circuit)) == ["rz", "rz"]

    def test_barrier_fences_fusion(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0)
        circuit.barrier()
        circuit.rz(0.4, 0)
        fused = RotationFusionPass().run(circuit)
        assert gate_names(fused) == ["rz", "rz"]


class TestInverseCancellation:
    def test_hh_cancels(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.h(0)
        assert gate_names(InverseCancellationPass().run(circuit)) == []

    def test_cxcx_cancels(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        assert gate_names(InverseCancellationPass().run(circuit)) == []

    def test_cx_orientation_must_match(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        assert gate_names(InverseCancellationPass().run(circuit)) == ["cx", "cx"]

    def test_s_sdg_cancels(self):
        circuit = QuantumCircuit(1)
        circuit.s(0)
        circuit.sdg(0)
        assert gate_names(InverseCancellationPass().run(circuit)) == []

    def test_cancellation_cascades(self):
        # cx h h cx collapses fully within one sweep.
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.h(1)
        circuit.h(1)
        circuit.cx(0, 1)
        assert gate_names(InverseCancellationPass().run(circuit)) == []

    def test_measure_fences_cancellation(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.measure_all()
        circuit.h(0)
        cancelled = InverseCancellationPass().run(circuit)
        assert gate_names(cancelled) == ["h", "h"]


class TestCommuteDiagonal:
    def test_diagonal_run_sorted_by_qubits(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.1, 1)
        circuit.rz(0.2, 0)
        reordered = CommuteDiagonalPass().run(circuit)
        assert [i.qubits for i in reordered.instructions] == [(0,), (1,)]

    def test_exposes_cross_layer_fusion(self):
        # Two rz(0) separated by a cz(0,1): all diagonal, so the sort drags
        # the rotations together and fusion then merges them.
        circuit = QuantumCircuit(2)
        circuit.rz(0.3, 0)
        circuit.cz(0, 1)
        circuit.rz(0.4, 0)
        pipeline = PassManager([CommuteDiagonalPass(), RotationFusionPass()])
        optimized, _ = pipeline.run(circuit)
        assert sorted(gate_names(optimized)) == ["cz", "rz"]

    def test_non_diagonal_ends_run(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0)
        circuit.h(0)
        circuit.rz(0.4, 0)
        reordered = CommuteDiagonalPass().run(circuit)
        assert gate_names(reordered) == ["rz", "h", "rz"]

    def test_idempotent(self):
        circuit = QuantumCircuit(3)
        circuit.rz(0.1, 2)
        circuit.cz(0, 2)
        circuit.rz(0.2, 0)
        circuit.h(1)
        circuit.rz(0.3, 0)
        once = CommuteDiagonalPass().run(circuit)
        twice = CommuteDiagonalPass().run(once)
        assert twice.instructions == once.instructions


class TestLadderResynthesis:
    def test_cx_rz_cx_becomes_rzz(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.rz(0.6, 1)
        circuit.cx(0, 1)
        resynth = LadderResynthesisPass(frozenset(BASIS_GATES | {"rzz"}))
        rewritten = resynth.run(circuit)
        assert gate_names(rewritten) == ["rzz"]
        assert rewritten.instructions[0].gate.params[0] == pytest.approx(0.6)

    def test_noop_without_target_gates(self):
        resynth = LadderResynthesisPass(frozenset(BASIS_GATES))
        assert resynth.is_noop

    def test_lowered_cp_recovered(self):
        # The transpiler lowers cp to rz·cx·rz·cx·rz; with rzz and cp in the
        # basis the full level-2 pipeline recovers a controlled-phase form.
        from repro.qcircuit.transpile import TranspileOptions, transpile

        circuit = QuantumCircuit(2)
        circuit.cp(0.8, 0, 1)
        options = TranspileOptions(
            basis_gates=frozenset(BASIS_GATES | {"rzz", "cp"}),
            optimization_level=2,
        )
        optimized = transpile(circuit, options)
        assert optimized.num_two_qubit_gates() == 1

    def test_diagonal_gate_on_control_line_commutes_through(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.rz(0.5, 0)  # on the control line: commutes with both cx
        circuit.rz(0.6, 1)
        circuit.cx(0, 1)
        resynth = LadderResynthesisPass(frozenset(BASIS_GATES | {"rzz"}))
        rewritten = resynth.run(circuit)
        assert sorted(gate_names(rewritten)) == ["rz", "rzz"]

    def test_x_on_control_line_blocks(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.x(0)  # not diagonal: does not commute through the control
        circuit.rz(0.6, 1)
        circuit.cx(0, 1)
        resynth = LadderResynthesisPass(frozenset(BASIS_GATES | {"rzz"}))
        rewritten = resynth.run(circuit)
        assert "rzz" not in gate_names(rewritten)


class TestPassManager:
    def test_records_only_changing_passes(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0)
        circuit.rz(0.4, 0)
        manager = PassManager([RotationFusionPass(), InverseCancellationPass()])
        optimized, records = manager.run(circuit)
        assert gate_names(optimized) == ["rz"]
        assert [record.pass_name for record in records] == ["rotation-fusion"]
        assert records[0].round_index == 1
        assert records[0].before.size == 2
        assert records[0].after.size == 1

    def test_fixpoint_terminates_on_unchanged_round(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        manager = PassManager([RotationFusionPass()], max_rounds=4)
        optimized, records = manager.run(circuit)
        assert optimized.instructions == circuit.instructions
        assert records == ()

    def test_invalid_max_rounds_rejected(self):
        with pytest.raises(TranspileError):
            PassManager([], max_rounds=0)

    def test_multi_round_convergence(self):
        # Fusion creates a zero-rotation junction that cancellation then
        # exposes: h rz(t) rz(-t) h needs fusion before the h·h pair exists.
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.rz(0.4, 0)
        circuit.rz(-0.4, 0)
        circuit.h(0)
        manager = PassManager([InverseCancellationPass(), RotationFusionPass()])
        optimized, records = manager.run(circuit)
        assert gate_names(optimized) == []
        assert max(record.round_index for record in records) >= 2


class TestDefaultPipeline:
    def test_level_zero_is_empty(self):
        assert default_pipeline(0, frozenset(BASIS_GATES)) == ()

    def test_level_one_is_local_peephole(self):
        names = [p.name for p in default_pipeline(1, frozenset(BASIS_GATES))]
        assert names == ["rotation-fusion", "inverse-cancellation"]

    def test_level_two_skips_noop_resynthesis(self):
        names = [p.name for p in default_pipeline(2, frozenset(BASIS_GATES))]
        assert "ladder-resynthesis" not in names
        extended = [
            p.name for p in default_pipeline(2, frozenset(BASIS_GATES | {"rzz"}))
        ]
        assert "ladder-resynthesis" in extended

    def test_out_of_range_level_rejected(self):
        with pytest.raises(TranspileError):
            default_pipeline(MAX_OPTIMIZATION_LEVEL + 1, frozenset(BASIS_GATES))
        with pytest.raises(TranspileError):
            default_pipeline(-1, frozenset(BASIS_GATES))

    def test_default_level_in_range(self):
        assert 0 <= DEFAULT_OPTIMIZATION_LEVEL <= MAX_OPTIMIZATION_LEVEL


class TestTwoQubitRatio:
    def test_ratio_and_summary(self):
        circuit = QuantumCircuit(2, name="ratio")
        circuit.h(0)
        circuit.cx(0, 1)
        assert circuit.two_qubit_ratio() == pytest.approx(0.5)
        summary = circuit.summary()
        assert "two-qubit 1 (50.0%)" in summary

    def test_empty_circuit_ratio_zero(self):
        assert QuantumCircuit(1).two_qubit_ratio() == 0.0


class TestTranspileReport:
    def _report(self) -> TranspileReport:
        circuit = QuantumCircuit(2, name="report")
        circuit.cp(0.8, 0, 1)
        from repro.qcircuit.transpile import TranspileOptions, transpile_with_report

        _, report = transpile_with_report(
            circuit,
            TranspileOptions(
                basis_gates=frozenset(BASIS_GATES | {"rzz"}), optimization_level=2
            ),
        )
        return report

    def test_round_trip(self):
        report = self._report()
        assert TranspileReport.from_dict(report.to_dict()) == report

    def test_reductions_match_stats(self):
        report = self._report()
        assert report.two_qubit_reduction() == pytest.approx(
            (report.lowered.two_qubit_gates - report.optimized.two_qubit_gates)
            / report.lowered.two_qubit_gates
        )
        # Lowered cp = 2 cx; resynthesis collapses the pair into one rzz.
        assert report.lowered.two_qubit_gates == 2
        assert report.optimized.two_qubit_gates == 1

    def test_zero_before_reduction_is_zero(self):
        stats = CircuitStats(size=0, depth=0, two_qubit_gates=0, two_qubit_ratio=0.0)
        report = TranspileReport(
            circuit_name="empty",
            num_qubits=1,
            optimization_level=2,
            basis_gates=("cx",),
            source=stats,
            lowered=stats,
            optimized=stats,
        )
        assert report.size_reduction() == 0.0
        assert report.two_qubit_reduction() == 0.0

    def test_summary_renders_passes(self):
        report = self._report()
        text = report.summary()
        assert "report: 2 qubits, optimization_level=2" in text
        assert "two-qubit: 2 -> 1" in text
        for record in report.passes:
            assert record.pass_name in text

    def test_passes_round_trip_through_dict(self):
        report = self._report()
        payload = report.to_dict()
        assert payload["passes"], "the cp rewrite must record pass deltas"
        record = PassRecord.from_dict(payload["passes"][0])
        assert record == report.passes[0]
