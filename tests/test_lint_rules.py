"""Fixture coverage for every ``repro.lint`` rule, plus the self-lint gate.

Each rule gets at least one violating, one clean and one suppressed
fixture; the self-lint tests then run the real linter over ``src/repro``
and the committed ``BENCH_*.json`` artifacts and assert the shipped state
is zero findings — the tier-1 guarantee CI's ``make lint`` job enforces.
"""

from __future__ import annotations

import glob
import io
import json
import os

import pytest

from repro.lint import (
    ADVISORY,
    ERROR,
    MODULE_SCOPE,
    PROJECT_SCOPE,
    Finding,
    all_rules,
    lint_source,
)
from repro.lint.baseline import (
    load_baseline,
    split_by_baseline,
    update_baseline,
    write_baseline,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import lint_artifact, lint_paths
from repro.lint.report import write_json, write_text
from repro.lint.suppressions import is_suppressed, line_suppressions

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HOT_PATH = "src/repro/qcircuit/statevector.py"


def rule_codes(findings) -> list[str]:
    return [finding.rule for finding in findings]


def lint_bench(payload, filename: str = "BENCH_demo.json") -> list[Finding]:
    raw = payload if isinstance(payload, str) else json.dumps(payload)
    return lint_artifact(filename, raw, all_rules())


def bench_payload(**overrides) -> dict:
    payload = {
        "benchmark": "demo",
        "created_utc": "2026-07-30T03:11:04+00:00",
        "python": "3.11.7",
        "machine": "x86_64",
        "metadata": {"target_speedup": 5.0},
        "rows": [
            {"case": "F1", "speedup": 2.0},
            {"case": "K2", "speedup": 7.5},
        ],
    }
    payload.update(overrides)
    return payload


class TestRegistry:
    def test_all_nine_rules_registered(self):
        codes = {rule.code for rule in all_rules()}
        assert codes == {
            "determinism",
            "encapsulation",
            "config",
            "exceptions",
            "hotpath",
            "artifacts",
            "concurrency",
            "ipdeterminism",
            "deadcode",
        }

    def test_scopes(self):
        by_code = {rule.code: rule.scope for rule in all_rules()}
        project_rules = {
            code for code, scope in by_code.items() if scope == PROJECT_SCOPE
        }
        assert project_rules == {"concurrency", "ipdeterminism", "deadcode"}
        assert all(
            scope in (MODULE_SCOPE, PROJECT_SCOPE) for scope in by_code.values()
        )

    def test_severities(self):
        by_code = {rule.code: rule.severity for rule in all_rules()}
        assert by_code["hotpath"] == ADVISORY
        assert all(
            severity == ERROR
            for code, severity in by_code.items()
            if code != "hotpath"
        )

    def test_syntax_error_is_a_finding(self):
        findings = lint_source("def broken(:\n")
        assert rule_codes(findings) == ["parse"]


class TestDeterminismRule:
    def test_global_numpy_rng_flagged(self):
        findings = lint_source(
            "import numpy as np\n"
            "np.random.seed(0)\n"
            "x = np.random.uniform(0.0, 1.0)\n"
        )
        assert rule_codes(findings) == ["determinism", "determinism"]
        assert findings[0].line == 2
        assert findings[1].line == 3

    def test_unseeded_default_rng_flagged(self):
        findings = lint_source(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert rule_codes(findings) == ["determinism"]

    def test_stdlib_random_flagged(self):
        findings = lint_source(
            "import random\nrandom.shuffle([1, 2])\nr = random.Random()\n"
        )
        assert rule_codes(findings) == ["determinism", "determinism"]

    def test_wall_clock_seed_flagged(self):
        findings = lint_source(
            "import time\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(int(time.time()))\n"
        )
        assert rule_codes(findings) == ["determinism"]
        assert "wall clock" in findings[0].message

    def test_wall_clock_seed_keyword_flagged(self):
        findings = lint_source(
            "import time\n"
            "def run(solve):\n"
            "    return solve(seed=time.time_ns())\n"
        )
        assert rule_codes(findings) == ["determinism"]

    def test_seeded_generators_clean(self):
        findings = lint_source(
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
            "child = np.random.default_rng(np.random.SeedSequence(7))\n"
            "x = rng.uniform(0.0, 1.0)\n"
        )
        assert findings == []

    def test_suppression(self):
        findings = lint_source(
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: ignore[determinism] demo\n"
        )
        assert findings == []

    def test_import_alias_resolution(self):
        findings = lint_source(
            "import numpy\nnumpy.random.seed(3)\n"
        ) + lint_source(
            "from numpy.random import default_rng\nrng = default_rng()\n"
        )
        assert rule_codes(findings) == ["determinism", "determinism"]


class TestEncapsulationRule:
    def test_foreign_private_attribute_flagged(self):
        findings = lint_source(
            "def lower(circuit):\n"
            "    circuit._instructions.append(1)\n"
        )
        assert rule_codes(findings) == ["encapsulation"]
        assert "_instructions" in findings[0].message

    def test_self_and_cls_access_clean(self):
        findings = lint_source(
            "class Solver:\n"
            "    _registry = {}\n"
            "    def __init__(self):\n"
            "        self._cache = {}\n"
            "    def get(self):\n"
            "        return self._cache\n"
            "    @classmethod\n"
            "    def registered(cls):\n"
            "        return cls._registry\n"
        )
        assert findings == []

    def test_same_module_friend_access_clean(self):
        findings = lint_source(
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self._count = 0\n"
            "    def merge(self, other):\n"
            "        return self._count + other._count\n"
        )
        assert findings == []

    def test_private_import_flagged(self):
        findings = lint_source(
            "from repro.qcircuit.circuit import _apply\n"
        )
        assert rule_codes(findings) == ["encapsulation"]

    def test_relative_private_import_clean(self):
        findings = lint_source("from ._inner import helper\n")
        assert findings == []

    def test_tests_are_exempt(self):
        source = "def spy(circuit):\n    return circuit._instructions\n"
        assert lint_source(source, path="tests/test_spy.py") == []
        assert rule_codes(lint_source(source)) == ["encapsulation"]

    def test_suppression(self):
        findings = lint_source(
            "def lower(circuit):\n"
            "    circuit._instructions.append(1)  # repro: ignore[encapsulation]\n"
        )
        assert findings == []


class TestConfigRule:
    GOOD = (
        "from dataclasses import dataclass\n"
        "from repro.solvers.config import SolverConfig\n"
        "@dataclass(frozen=True)\n"
        "class DemoConfig(SolverConfig):\n"
        "    num_layers: int = 3\n"
        "    weight: float | None = None\n"
        "    labels: tuple[str, ...] = ()\n"
    )

    def test_good_config_clean(self):
        assert lint_source(self.GOOD) == []

    def test_unfrozen_dataclass_flagged(self):
        findings = lint_source(self.GOOD.replace("frozen=True", "frozen=False"))
        assert rule_codes(findings) == ["config"]
        assert "frozen" in findings[0].message

    def test_missing_dataclass_flagged(self):
        findings = lint_source(
            "from repro.solvers.config import SolverConfig\n"
            "class DemoConfig(SolverConfig):\n"
            "    num_layers: int = 3\n"
        )
        assert rule_codes(findings) == ["config"]

    def test_non_serializable_annotation_flagged(self):
        findings = lint_source(
            "import numpy as np\n"
            "from dataclasses import dataclass\n"
            "from repro.solvers.config import SolverConfig\n"
            "@dataclass(frozen=True)\n"
            "class DemoConfig(SolverConfig):\n"
            "    weights: np.ndarray = None\n"
        )
        assert rule_codes(findings) == ["config"]
        assert "non-serializable" in findings[0].message

    def test_missing_default_flagged(self):
        findings = lint_source(
            "from dataclasses import dataclass\n"
            "from repro.solvers.config import SolverConfig\n"
            "@dataclass(frozen=True)\n"
            "class DemoConfig(SolverConfig):\n"
            "    num_layers: int\n"
        )
        assert rule_codes(findings) == ["config"]
        assert "default" in findings[0].message

    def test_optional_with_non_none_default_flagged(self):
        findings = lint_source(
            "from dataclasses import dataclass\n"
            "from repro.solvers.config import SolverConfig\n"
            "@dataclass(frozen=True)\n"
            "class DemoConfig(SolverConfig):\n"
            "    limit: int | None = 16\n"
        )
        assert rule_codes(findings) == ["config"]
        assert "None-excluded" in findings[0].message

    def test_unreachable_round_trip_flagged(self):
        findings = lint_source(
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class DemoConfig:\n"
            "    num_layers: int = 3\n"
        )
        assert rule_codes(findings) == ["config"]
        assert "to_dict" in findings[0].message

    def test_machinery_base_and_test_classes_exempt(self):
        machinery = (
            "class SolverConfig:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
            "    @classmethod\n"
            "    def from_dict(cls, data):\n"
            "        return cls()\n"
        )
        test_fixture = "class TestConfig:\n    def test_it(self):\n        pass\n"
        assert lint_source(machinery) == []
        assert lint_source(test_fixture) == []

    def test_suppression(self):
        findings = lint_source(
            "from dataclasses import dataclass\n"
            "from repro.solvers.config import SolverConfig\n"
            "@dataclass(frozen=False)\n"
            "class DemoConfig(SolverConfig):  # repro: ignore[config]\n"
            "    num_layers: int = 3\n"
        )
        assert findings == []


class TestExceptionRule:
    def test_bare_except_flagged(self):
        findings = lint_source(
            "try:\n    x = 1\nexcept:\n    raise ValueError\n"
        )
        assert rule_codes(findings) == ["exceptions"]

    def test_silent_broad_swallow_flagged(self):
        findings = lint_source(
            "try:\n    x = 1\nexcept Exception:\n    pass\n"
        )
        assert rule_codes(findings) == ["exceptions"]

    def test_narrow_silent_handler_clean(self):
        findings = lint_source(
            "try:\n    import scipy\nexcept ImportError:\n    pass\n"
        )
        assert findings == []

    def test_broad_handler_that_acts_clean(self):
        findings = lint_source(
            "try:\n    x = 1\nexcept Exception as error:\n    raise RuntimeError from error\n"
        )
        assert findings == []

    def test_suppression(self):
        findings = lint_source(
            "try:\n    x = 1\nexcept Exception:  # repro: ignore[exceptions]\n    pass\n"
        )
        assert findings == []


class TestHotPathRule:
    LOOP = "def f(amplitudes):\n    for amplitude in amplitudes:\n        print(amplitude)\n"
    ALLOC = (
        "import numpy as np\n"
        "def f(n):\n"
        "    for _ in range(n):\n"
        "        buffer = np.zeros(n)\n"
        "    return buffer\n"
    )

    def test_basis_sized_loop_flagged_in_hot_module(self):
        findings = lint_source(self.LOOP, path=HOT_PATH)
        assert rule_codes(findings) == ["hotpath"]
        assert findings[0].severity == ADVISORY

    def test_comprehension_over_basis_sized_flagged(self):
        findings = lint_source(
            "def f(probabilities):\n"
            "    return [p * 2 for p in probabilities]\n",
            path=HOT_PATH,
        )
        assert rule_codes(findings) == ["hotpath"]

    def test_allocation_in_loop_flagged_in_hot_module(self):
        findings = lint_source(self.ALLOC, path=HOT_PATH)
        assert rule_codes(findings) == ["hotpath"]

    def test_cold_module_clean(self):
        assert lint_source(self.LOOP, path="src/repro/run/plan.py") == []
        assert lint_source(self.ALLOC, path="src/repro/run/plan.py") == []

    def test_small_loops_clean_in_hot_module(self):
        findings = lint_source(
            "def f(terms, n):\n"
            "    for term in terms:\n"
            "        pass\n"
            "    for qubit in range(n):\n"
            "        pass\n",
            path=HOT_PATH,
        )
        assert findings == []

    def test_suppression(self):
        findings = lint_source(
            "def f(amplitudes):\n"
            "    for amplitude in amplitudes:  # repro: ignore[hotpath] one-time export\n"
            "        print(amplitude)\n",
            path=HOT_PATH,
        )
        assert findings == []


class TestArtifactRule:
    def test_valid_payload_clean(self):
        assert lint_bench(bench_payload()) == []

    def test_invalid_json_flagged(self):
        findings = lint_bench("{not json")
        assert rule_codes(findings) == ["artifacts"]
        assert "not valid JSON" in findings[0].message

    def test_missing_keys_flagged(self):
        payload = bench_payload()
        del payload["metadata"]
        del payload["created_utc"]
        findings = lint_bench(payload)
        assert rule_codes(findings) == ["artifacts"]
        assert "created_utc" in findings[0].message
        assert "metadata" in findings[0].message

    def test_filename_mismatch_flagged(self):
        findings = lint_bench(bench_payload(), filename="BENCH_other.json")
        assert any("does not match the filename" in f.message for f in findings)

    def test_bad_timestamp_flagged(self):
        naive = bench_payload(created_utc="2026-07-30T03:11:04")
        future = bench_payload(created_utc="2300-01-01T00:00:00+00:00")
        assert any("ISO-8601" in f.message for f in lint_bench(naive))
        assert any("sane window" in f.message for f in lint_bench(future))

    def test_stringly_typed_number_flagged(self):
        payload = bench_payload()
        payload["rows"][0]["speedup"] = "2.73"
        findings = lint_bench(payload)
        assert any("as a string" in f.message for f in findings)

    def test_row_key_drift_flagged(self):
        payload = bench_payload()
        payload["rows"][1] = {"case": "K2", "speed_up": 7.5}
        findings = lint_bench(payload)
        assert any("key set drifts" in f.message for f in findings)

    def test_speedup_gate_fields_required(self):
        no_target = bench_payload(metadata={})
        findings = lint_bench(no_target)
        assert any("target_speedup" in f.message for f in findings)
        no_speedup_rows = bench_payload(rows=[{"case": "F1", "ms": 1.0}])
        findings = lint_bench(no_speedup_rows)
        assert any("no row records" in f.message for f in findings)

    def test_non_monotone_row_timestamps_flagged(self):
        payload = bench_payload(
            metadata={},
            rows=[
                {"case": "a", "timestamp": "2026-07-30T03:00:00+00:00"},
                {"case": "b", "timestamp": "2026-07-30T02:00:00+00:00"},
            ],
        )
        findings = lint_bench(payload)
        assert any("monotone" in f.message for f in findings)


class TestReportRoundTrip:
    def _findings(self):
        return [
            Finding(
                path="src/repro/a.py", line=3, rule="determinism", message="draw"
            ),
            Finding(
                path="src/repro/b.py",
                line=7,
                rule="hotpath",
                message="loop",
                severity=ADVISORY,
            ),
        ]

    def test_json_report_round_trips_to_findings(self):
        stream = io.StringIO()
        write_json(self._findings(), 2, 40, stream)
        payload = json.loads(stream.getvalue())
        assert payload["baselined"] == 2
        assert payload["files_scanned"] == 40
        rebuilt = [Finding(**entry) for entry in payload["findings"]]
        assert rebuilt == self._findings()
        assert [f.fingerprint() for f in rebuilt] == [
            f.fingerprint() for f in self._findings()
        ]

    def test_json_and_text_reports_agree_on_summary(self):
        json_stream, text_stream = io.StringIO(), io.StringIO()
        write_json(self._findings(), 0, 12, json_stream)
        write_text(self._findings(), 0, 12, text_stream)
        summary = json.loads(json_stream.getvalue())["summary"]
        assert summary == text_stream.getvalue().splitlines()[-1]
        assert "1 error(s)" in summary and "1 advisory" in summary

    def test_empty_json_report(self):
        stream = io.StringIO()
        write_json([], 0, 5, stream)
        payload = json.loads(stream.getvalue())
        assert payload["findings"] == []
        assert payload["summary"] == "lint: clean (5 files scanned)"


class TestSuppressionMechanics:
    def test_multiple_codes_in_one_comment(self):
        findings = lint_source(
            "import numpy as np\n"
            "def f(amplitudes):\n"
            "    for a in amplitudes:  # repro: ignore[hotpath, determinism]\n"
            "        pass\n",
            path=HOT_PATH,
        )
        assert findings == []

    def test_suppression_only_covers_named_rule(self):
        findings = lint_source(
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: ignore[hotpath]\n"
        )
        assert rule_codes(findings) == ["determinism"]

    def test_suppression_inside_string_is_inert(self):
        findings = lint_source(
            "import numpy as np\n"
            'text = "# repro: ignore[determinism]"\n'
            "rng = np.random.default_rng()\n"
        )
        assert rule_codes(findings) == ["determinism"]

    def test_long_multi_rule_list_with_spaces(self):
        suppressed = line_suppressions(
            "x = 1  # repro: ignore[determinism , hotpath,concurrency, deadcode]\n"
        )
        assert suppressed[1] == frozenset(
            {"determinism", "hotpath", "concurrency", "deadcode"}
        )

    def test_empty_bracket_suppresses_nothing(self):
        assert line_suppressions("x = 1  # repro: ignore[]\n") == {}

    def test_suppression_on_decorator_line_is_line_scoped(self):
        source = (
            "import functools\n"
            "@functools.cache  # repro: ignore[deadcode]\n"
            "def _helper():\n"
            "    return 1\n"
        )
        suppressed = line_suppressions(source)
        # The comment binds to the decorator's physical line only: a finding
        # reported at the `def` line (line 3, where project rules anchor) is
        # NOT silenced by a comment one line up.
        assert is_suppressed(suppressed, 2, "deadcode")
        assert not is_suppressed(suppressed, 3, "deadcode")

    def test_two_comments_on_adjacent_lines_union_per_line(self):
        source = (
            "a = 1  # repro: ignore[hotpath]\n"
            "b = 2  # repro: ignore[determinism]\n"
        )
        suppressed = line_suppressions(source)
        assert suppressed[1] == frozenset({"hotpath"})
        assert suppressed[2] == frozenset({"determinism"})


class TestBaseline:
    def test_round_trip_and_split(self, tmp_path):
        finding = Finding(
            path="src/repro/x.py", line=3, rule="determinism", message="demo"
        )
        other = Finding(
            path="src/repro/y.py", line=9, rule="exceptions", message="other"
        )
        baseline_path = str(tmp_path / "lint_baseline.json")
        assert write_baseline(baseline_path, [finding]) == 1
        baseline = load_baseline(baseline_path)
        new, known = split_by_baseline([finding, other], baseline)
        assert new == [other]
        assert known == [finding]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == frozenset()

    def test_shipped_baseline_has_zero_entries(self):
        baseline = load_baseline(os.path.join(REPO_ROOT, "lint_baseline.json"))
        assert baseline == frozenset()

    def test_update_baseline_prunes_stale_entries(self, tmp_path):
        stale = Finding(path="src/repro/gone.py", line=1, rule="hotpath", message="old")
        kept = Finding(path="src/repro/x.py", line=3, rule="determinism", message="still")
        fresh = Finding(path="src/repro/y.py", line=9, rule="exceptions", message="new")
        baseline_path = str(tmp_path / "lint_baseline.json")
        write_baseline(baseline_path, [stale, kept])
        kept_fps, added_fps, pruned_fps = update_baseline(
            baseline_path, [kept, fresh]
        )
        assert kept_fps == [kept.fingerprint()]
        assert added_fps == [fresh.fingerprint()]
        assert pruned_fps == [stale.fingerprint()]
        # The rewritten file holds exactly the current findings: the stale
        # entry is gone and cannot mask a future regression.
        assert load_baseline(baseline_path) == {
            kept.fingerprint(),
            fresh.fingerprint(),
        }

    def test_update_baseline_from_empty(self, tmp_path):
        finding = Finding(path="src/repro/x.py", line=1, rule="hotpath", message="m")
        baseline_path = str(tmp_path / "lint_baseline.json")
        kept_fps, added_fps, pruned_fps = update_baseline(baseline_path, [finding])
        assert (kept_fps, added_fps, pruned_fps) == ([], [finding.fingerprint()], [])


class TestCliAndSelfLint:
    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("determinism", "encapsulation", "config", "artifacts"):
            assert code in out

    def test_unknown_select_fails(self, capsys):
        assert lint_main(["--select", "nonsense", "--root", REPO_ROOT]) == 2

    def test_cli_reports_violations_with_file_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        exit_code = lint_main([str(bad), "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "bad.py:2:" in out
        assert "determinism" in out

    def test_cli_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("try:\n    x = 1\nexcept:\n    pass\n")
        exit_code = lint_main([str(bad), "--root", str(tmp_path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert payload["findings"][0]["rule"] == "exceptions"

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        baseline = tmp_path / "lint_baseline.json"
        assert (
            lint_main(
                [str(bad), "--root", str(tmp_path), "--update-baseline"]
            )
            == 0
        )
        assert baseline.exists()
        capsys.readouterr()
        assert lint_main([str(bad), "--root", str(tmp_path)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_update_baseline_warns_on_stale_fingerprints(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        assert (
            lint_main([str(bad), "--root", str(tmp_path), "--update-baseline"]) == 0
        )
        capsys.readouterr()
        bad.write_text("x = 1\n")  # the finding is fixed; its entry is now stale
        assert (
            lint_main([str(bad), "--root", str(tmp_path), "--update-baseline"]) == 0
        )
        captured = capsys.readouterr()
        assert "pruned stale baseline entry" in captured.err
        assert "1 stale pruned" in captured.out
        capsys.readouterr()
        assert lint_main([str(bad), "--root", str(tmp_path)]) == 0

    def test_jobs_flag_matches_serial_output(self, tmp_path, capsys):
        for name, body in (
            ("bad_a.py", "import numpy as np\nnp.random.seed(1)\n"),
            ("bad_b.py", "try:\n    x = 1\nexcept:\n    pass\n"),
            ("clean.py", "VALUE = 3\n"),
        ):
            (tmp_path / name).write_text(body)
        serial_code = lint_main([str(tmp_path), "--root", str(tmp_path)])
        serial_out = capsys.readouterr().out
        parallel_code = lint_main(
            [str(tmp_path), "--root", str(tmp_path), "--jobs", "2"]
        )
        parallel_out = capsys.readouterr().out
        assert (serial_code, serial_out) == (parallel_code, parallel_out)
        assert serial_code == 1
        assert "bad_a.py" in serial_out and "bad_b.py" in serial_out

    def test_jobs_must_be_positive(self, capsys):
        assert lint_main(["--jobs", "0", "--root", REPO_ROOT]) == 2

    def test_list_rules_shows_scope(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "project" in out and "module" in out
        for code in ("concurrency", "ipdeterminism", "deadcode"):
            assert code in out

    def test_self_lint_src_repro_is_clean(self):
        """Tier-1 gate: the library itself carries zero lint findings."""
        findings, files_scanned = lint_paths(
            paths=[os.path.join(REPO_ROOT, "src")], root=REPO_ROOT
        )
        assert findings == [], "\n".join(f.format() for f in findings)
        assert files_scanned > 40

    def test_committed_bench_artifacts_validate(self):
        """The four committed BENCH_*.json files pass the artifact schema."""
        artifact_paths = sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))
        assert len(artifact_paths) >= 4
        findings, files_scanned = lint_paths(paths=artifact_paths, root=REPO_ROOT)
        assert findings == [], "\n".join(f.format() for f in findings)
        assert files_scanned == len(artifact_paths)

    @pytest.mark.slow
    def test_whole_repo_lint_is_clean(self):
        """What CI's `make lint` enforces, as a test: zero findings anywhere."""
        findings, _ = lint_paths(root=REPO_ROOT)
        assert findings == [], "\n".join(f.format() for f in findings)
