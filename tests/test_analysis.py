"""Tests for the analysis layer: convergence, parallelism, ablation, reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ablation import ABLATION_ARMS, ablation_improvements, run_ablation
from repro.analysis.convergence import compare_convergence, convergence_curve
from repro.analysis.parallelism import parallelism_profile, support_trace
from repro.analysis.report import (
    format_percentage,
    format_speedup,
    format_table,
    summarize_improvement,
)
from repro.qcircuit.circuit import QuantumCircuit
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.optimizer import CobylaOptimizer
from repro.solvers.penalty_qaoa import PenaltyQAOASolver
from repro.solvers.variational import EngineOptions

FAST = EngineOptions(shots=512, seed=5)
FAST_OPTIMIZER = CobylaOptimizer(max_iterations=40)


class TestConvergence:
    def test_choco_converges_faster_than_penalty(self, paper_example_problem):
        choco = ChocoQSolver(
            config=ChocoQConfig(num_layers=2), optimizer=FAST_OPTIMIZER, options=FAST
        ).solve(paper_example_problem)
        penalty = PenaltyQAOASolver(
            num_layers=2, optimizer=FAST_OPTIMIZER, options=FAST
        ).solve(paper_example_problem)
        rows = compare_convergence(paper_example_problem, [choco, penalty])
        by_name = {row["solver"]: row for row in rows}
        choco_iters = by_name["choco-q"]["iterations_to_gap"]
        penalty_iters = by_name["penalty-qaoa"]["iterations_to_gap"]
        assert choco_iters is not None
        assert penalty_iters is None or choco_iters <= penalty_iters
        # Choco-Q starts near the optimum (good initial cost); the penalty
        # method starts with a huge penalty-dominated cost.
        assert by_name["choco-q"]["initial_cost"] < by_name["penalty-qaoa"]["initial_cost"]

    def test_curve_shapes(self, paper_example_problem):
        result = ChocoQSolver(
            config=ChocoQConfig(num_layers=1), optimizer=FAST_OPTIMIZER, options=FAST
        ).solve(paper_example_problem)
        curve = convergence_curve(paper_example_problem, result)
        best = curve.best_so_far()
        assert len(best) == curve.num_iterations
        assert np.all(np.diff(best) <= 1e-12)
        assert curve.final_gap() >= 0.0


class TestParallelism:
    def test_support_grows_from_basis_state(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        circuit.h(1)
        circuit.cx(1, 2)
        trace = support_trace(circuit, initial_state=[0, 0, 0])
        assert trace[0] == 1
        assert trace[-1] == 2

    def test_profile_progress_axis(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).cx(0, 1)
        profile = parallelism_profile("test", circuit)
        axis = profile.progress_axis()
        assert axis[0] > 0.0 and axis[-1] == pytest.approx(1.0)
        assert profile.max_support == 4
        assert profile.support_at_progress(1.0) == 4

    def test_chocoq_harvests_parallelism(self, paper_example_problem):
        """Fig. 9b: starting from one basis state, the support grows quickly."""
        solver = ChocoQSolver(
            config=ChocoQConfig(num_layers=1), optimizer=FAST_OPTIMIZER, options=FAST
        )
        spec, _ = solver.build_spec(paper_example_problem)
        # The built circuit already prepares the feasible initial state from
        # |0...0> with X gates, so the simulation starts from the zero state.
        circuit = spec.build_circuit(spec.initial_parameters)
        profile = parallelism_profile("choco-q", circuit)
        assert profile.support_sizes[0] <= 2
        assert profile.max_support >= 3
        assert profile.growth_onset() < 0.75


class TestAblation:
    def test_ablation_rows_and_improvements(self, paper_example_problem):
        rows = run_ablation(
            paper_example_problem,
            num_layers=1,
            shots=256,
            max_iterations=15,
        )
        labels = [row.label for row in rows]
        assert labels == [arm.label for arm in ABLATION_ARMS]
        by_label = {row.label: row for row in rows}
        # Opt2 (equivalent decomposition) must reduce depth versus Opt1.
        assert by_label["Opt1+2"].transpiled_depth < by_label["Opt1"].transpiled_depth
        improvements = ablation_improvements(rows)
        assert improvements["depth_reduction[Opt1+2]"] > 1.0


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "bb", "value": 2.0}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "1.500" in text
        assert text.count("\n") >= 3

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_percentage(self):
        assert format_percentage(0.671) == "67.10%"

    def test_format_speedup(self):
        assert format_speedup(10.0, 2.0) == "5.00x"
        assert format_speedup(1.0, 0.0) == "inf"

    def test_summarize_improvement(self):
        rows = [
            {"success[cyclic]": 0.1, "success[choco]": 0.4},
            {"success[cyclic]": 0.2, "success[choco]": 0.8},
        ]
        assert summarize_improvement(rows, "success", "cyclic", "choco") == pytest.approx(4.0)

    def test_summarize_improvement_skips_failures(self):
        rows = [{"success[cyclic]": 0.0, "success[choco]": 0.4}]
        assert np.isnan(summarize_improvement(rows, "success", "cyclic", "choco"))
