"""Randomized cross-solver/backend equivalence harness.

Every (solver, backend) pair must agree wherever the mathematics says they
are the same object: for any parameter vector, the subspace layout's evolved
state is the dense state restricted to the feasible coordinates, so exact
expectation values and measurement distributions must match to 1e-9 — for
Choco-Q *and* for the cyclic-QAOA baseline — on seeded randomized instances
of all three problem domains (FLP / GCP / KPP) at varied sizes.  Sampling
from the two layouts under a shared seed must produce compatible per-qubit
marginals.

The sweep scales up out-of-tier: the ``xslow`` cases (larger registers, more
seeded cases per scale) run only under ``pytest --xslow`` / ``make
test-all``.
"""

from __future__ import annotations

import os
import sys
import zlib

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks"))

from solver_factories import make_chocoq_solver, make_cyclic_solver
from repro.problems import make_benchmark
from repro.solvers.variational import (
    DenseStateBackend,
    batched_expectations,
    evolve_parameter_sets,
)

TOLERANCE = 1e-9
SOLVER_KINDS = ("chocoq", "cyclic")

# (scale, case_index) grids: the fast tier sweeps two seeded cases of every
# small scale; the xslow tier adds the large registers and a third case.
FAST_CASES = [(scale, index) for scale in ("F1", "F2", "G1", "G2", "K1", "K2") for index in (0, 1)]
XSLOW_CASES = [
    (scale, index) for scale in ("F3", "F4", "G3", "G4", "K3", "K4") for index in (0, 1, 2)
]


def _spec_pair(kind: str, problem):
    """Dense and subspace AnsatzSpecs of one solver on one problem."""
    if kind == "chocoq":
        dense_spec, _ = make_chocoq_solver("dense", num_layers=2).build_spec(problem)
        subspace_spec, _ = make_chocoq_solver("subspace", num_layers=2).build_spec(problem)
    else:
        dense_spec = make_cyclic_solver("dense").build_spec(problem)
        subspace_spec = make_cyclic_solver("subspace").build_spec(problem)
    return dense_spec, subspace_spec


def _case_seed(*parts) -> int:
    """A deterministic per-case RNG seed (str hash() is salted per process)."""
    return zlib.crc32("/".join(str(part) for part in parts).encode())


def _random_parameter_sets(spec, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(-np.pi, np.pi, size=(count, len(spec.initial_parameters)))


def _assert_distributions_close(left: dict, right: dict, tolerance: float = TOLERANCE):
    for key in set(left) | set(right):
        assert left.get(key, 0.0) == pytest.approx(right.get(key, 0.0), abs=tolerance), key


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("kind", SOLVER_KINDS)
    @pytest.mark.parametrize("scale,case_index", FAST_CASES)
    def test_expectations_and_distributions_agree(self, kind, scale, case_index):
        problem = make_benchmark(scale, case_index)
        dense_spec, subspace_spec = _spec_pair(kind, problem)
        assert subspace_spec.backend is not None, "no subspace layout was built"
        assert subspace_spec.backend.dimension < 2**problem.num_variables

        parameter_sets = _random_parameter_sets(
            dense_spec, count=3, seed=_case_seed(kind, scale, case_index)
        )
        dense_costs = batched_expectations(dense_spec, parameter_sets)
        subspace_costs = batched_expectations(subspace_spec, parameter_sets)
        assert np.max(np.abs(dense_costs - subspace_costs)) < TOLERANCE

        dense_backend = DenseStateBackend(problem.num_variables)
        dense_dist = dense_backend.exact_distribution(dense_spec.evolve(parameter_sets[0]))
        subspace_dist = subspace_spec.backend.exact_distribution(
            subspace_spec.evolve(parameter_sets[0])
        )
        _assert_distributions_close(dense_dist, subspace_dist)

    @pytest.mark.xslow
    @pytest.mark.parametrize("kind", SOLVER_KINDS)
    @pytest.mark.parametrize("scale,case_index", XSLOW_CASES)
    def test_expectations_and_distributions_agree_at_scale(self, kind, scale, case_index):
        problem = make_benchmark(scale, case_index)
        dense_spec, subspace_spec = _spec_pair(kind, problem)
        assert subspace_spec.backend is not None
        parameter_sets = _random_parameter_sets(
            dense_spec, count=2, seed=_case_seed(kind, scale, case_index)
        )
        dense_costs = batched_expectations(dense_spec, parameter_sets)
        subspace_costs = batched_expectations(subspace_spec, parameter_sets)
        assert np.max(np.abs(dense_costs - subspace_costs)) < TOLERANCE
        dense_backend = DenseStateBackend(problem.num_variables)
        dense_dist = dense_backend.exact_distribution(dense_spec.evolve(parameter_sets[0]))
        subspace_dist = subspace_spec.backend.exact_distribution(
            subspace_spec.evolve(parameter_sets[0])
        )
        _assert_distributions_close(dense_dist, subspace_dist)


class TestSamplingMarginals:
    SHOTS = 4096
    # Two independent 4096-shot multinomial draws: per-qubit frequency
    # difference has standard deviation <= sqrt(2 * 0.25 / 4096) ~ 0.011,
    # so 0.06 is a > 5-sigma acceptance band.
    MARGINAL_TOLERANCE = 0.06

    @pytest.mark.parametrize("kind", SOLVER_KINDS)
    @pytest.mark.parametrize("scale", ("F1", "G1", "K2"))
    def test_subspace_sampling_marginals_match_dense(self, kind, scale):
        problem = make_benchmark(scale)
        dense_spec, subspace_spec = _spec_pair(kind, problem)
        parameters = _random_parameter_sets(dense_spec, count=1, seed=11)[0]

        dense_state = dense_spec.evolve(parameters)
        subspace_state = subspace_spec.evolve(parameters)
        dense_counts = DenseStateBackend(problem.num_variables).sample(
            dense_state, self.SHOTS, np.random.default_rng(99)
        )
        subspace_counts = subspace_spec.backend.sample(
            subspace_state, self.SHOTS, np.random.default_rng(99)
        )
        assert dense_counts.shots == subspace_counts.shots == self.SHOTS

        def marginals(result) -> np.ndarray:
            ones = np.zeros(problem.num_variables)
            for bits, count in result.assignments():
                ones += bits * count
            return ones / result.shots

        deviation = np.abs(marginals(dense_counts) - marginals(subspace_counts))
        assert np.max(deviation) < self.MARGINAL_TOLERANCE

    @pytest.mark.parametrize("kind", SOLVER_KINDS)
    def test_sampling_reproducible_under_shared_seed(self, kind):
        problem = make_benchmark("G1")
        _, subspace_spec = _spec_pair(kind, problem)
        parameters = _random_parameter_sets(subspace_spec, count=1, seed=5)[0]
        state = subspace_spec.evolve(parameters)
        first = subspace_spec.backend.sample(state, 512, np.random.default_rng(7))
        second = subspace_spec.backend.sample(state, 512, np.random.default_rng(7))
        assert first.counts == second.counts


class TestBatchedPathBitIdentical:
    @pytest.mark.parametrize("kind", SOLVER_KINDS)
    @pytest.mark.parametrize("backend", ("dense", "subspace"))
    def test_batched_evolution_matches_sequential_bitwise(self, kind, backend):
        problem = make_benchmark("K1")
        if kind == "chocoq":
            spec, _ = make_chocoq_solver(backend, num_layers=2).build_spec(problem)
        else:
            spec = make_cyclic_solver(backend).build_spec(problem)
        parameter_sets = _random_parameter_sets(spec, count=6, seed=21)
        batched_states = evolve_parameter_sets(spec, parameter_sets)
        sequential_states = np.stack([spec.evolve(p) for p in parameter_sets])
        assert np.array_equal(batched_states, sequential_states)

        batched_costs = batched_expectations(spec, parameter_sets)
        sequential_costs = np.array(
            [
                float(np.dot(np.abs(spec.evolve(p)) ** 2, spec.cost_diagonal))
                for p in parameter_sets
            ]
        )
        assert np.array_equal(batched_costs, sequential_costs)

    def test_single_vector_promoted_to_batch(self):
        problem = make_benchmark("F1")
        spec, _ = make_chocoq_solver("subspace", num_layers=2).build_spec(problem)
        parameters = _random_parameter_sets(spec, count=1, seed=2)[0]
        states = evolve_parameter_sets(spec, parameters)
        assert states.shape == (1, spec.backend.dimension)
        assert np.array_equal(states[0], spec.evolve(parameters))


class TestCyclicSpeedupBenchmarkSmoke:
    def test_benchmark_agreement_on_small_case(self):
        """Tier-1 smoke: the cyclic harness runs and the backends agree."""
        from bench_cyclic_subspace import AGREEMENT_TOLERANCE, run_cyclic_subspace

        rows = run_cyclic_subspace(cases=("K1",), repeats=2)
        assert rows[0]["max_err"] <= AGREEMENT_TOLERANCE
        assert rows[0]["|F_enc|"] < rows[0]["2^n"]
        assert rows[0]["subspace_ms/iter"] > 0

    @pytest.mark.slow
    def test_large_case_speedup_target(self):
        """The 16-qubit case must clear the 10x per-iteration speedup bar."""
        from bench_cyclic_subspace import (
            LARGE_CASE,
            TARGET_SPEEDUP,
            check_rows,
            run_cyclic_subspace,
        )

        rows = run_cyclic_subspace(cases=(LARGE_CASE,))
        check_rows([dict(row) for row in rows])
        assert rows[0]["speedup"] >= TARGET_SPEEDUP
