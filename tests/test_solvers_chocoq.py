"""Tests for the Choco-Q solver — the paper's contribution.

Covers the headline correctness claims: the 100% in-constraints rate, the
high success rate, variable elimination, the ablation toggles, and the
bookkeeping (depth, latency, iterations) the evaluation section relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.exceptions import SolverError
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.optimizer import CobylaOptimizer
from repro.solvers.variational import EngineOptions

FAST = EngineOptions(shots=1024, seed=9)
FAST_OPTIMIZER = CobylaOptimizer(max_iterations=60)


def make_solver(**config_kwargs) -> ChocoQSolver:
    return ChocoQSolver(
        config=ChocoQConfig(**config_kwargs), optimizer=FAST_OPTIMIZER, options=FAST
    )


class TestConfig:
    def test_defaults_valid(self):
        config = ChocoQConfig()
        assert config.num_layers >= 1
        assert config.nullspace_mode in ("basis", "full")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_layers": 0},
            {"nullspace_mode": "everything"},
            {"num_eliminated_variables": -1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(SolverError):
            ChocoQConfig(**kwargs)


class TestDriverConstruction:
    def test_driver_terms_satisfy_cu_zero(self, paper_example_problem):
        solver = make_solver()
        driver = solver.build_driver(paper_example_problem)
        matrix, _ = paper_example_problem.constraint_matrix()
        for term in driver.terms:
            assert np.allclose(matrix @ np.array(term.u), 0.0)

    def test_full_mode_has_at_least_basis_terms(self, paper_example_problem):
        basis = make_solver(nullspace_mode="basis").build_driver(paper_example_problem)
        full = make_solver(nullspace_mode="full").build_driver(paper_example_problem)
        assert len(full.terms) >= len(basis.terms)

    def test_unconstrained_problem_rejected(self):
        problem = ConstrainedBinaryProblem(2, Objective.from_linear([1.0, 1.0]))
        with pytest.raises(SolverError):
            make_solver().build_driver(problem)


class TestHeadlineClaims:
    def test_hundred_percent_in_constraints_rate(self, paper_example_problem):
        """The defining property: every measured sample is feasible."""
        result = make_solver(num_layers=2).solve(paper_example_problem)
        metrics = result.metrics(paper_example_problem)
        assert metrics.in_constraints_rate == pytest.approx(1.0)

    def test_high_success_rate_on_paper_example(self, paper_example_problem):
        result = make_solver(num_layers=2).solve(paper_example_problem)
        metrics = result.metrics(paper_example_problem)
        assert metrics.success_rate > 0.5
        assert metrics.approximation_ratio_gap < 0.6

    def test_outperforms_penalty_qaoa(self, paper_example_problem):
        from repro.solvers.penalty_qaoa import PenaltyQAOASolver

        choco = make_solver(num_layers=2).solve(paper_example_problem)
        penalty = PenaltyQAOASolver(
            num_layers=2, optimizer=FAST_OPTIMIZER, options=FAST
        ).solve(paper_example_problem)
        choco_metrics = choco.metrics(paper_example_problem)
        penalty_metrics = penalty.metrics(paper_example_problem)
        assert choco_metrics.in_constraints_rate > penalty_metrics.in_constraints_rate
        assert choco_metrics.success_rate >= penalty_metrics.success_rate

    def test_exact_distribution_only_contains_feasible_states(self, paper_example_problem):
        result = make_solver(num_layers=2).solve(paper_example_problem)
        assert result.exact_distribution is not None
        for key in result.exact_distribution:
            bits = tuple(int(ch) for ch in key)
            assert paper_example_problem.is_feasible(bits)

    def test_works_on_minimization_problems(self, small_min_problem):
        result = make_solver(num_layers=2).solve(small_min_problem)
        metrics = result.metrics(small_min_problem)
        assert metrics.in_constraints_rate == pytest.approx(1.0)
        assert metrics.success_rate > 0.3


class TestBookkeeping:
    def test_result_fields(self, paper_example_problem):
        result = make_solver(num_layers=1).solve(paper_example_problem)
        assert result.solver_name == "choco-q"
        assert result.num_qubits == 4
        assert result.circuit_depth > 0
        assert result.transpiled_depth >= result.circuit_depth
        assert result.metadata["num_driver_terms"] >= 2
        assert result.metadata["iterations"] > 0
        assert result.latency.total > 0.0

    def test_layer_count_scales_depth(self, paper_example_problem):
        one = make_solver(num_layers=1).solve(paper_example_problem)
        three = make_solver(num_layers=3).solve(paper_example_problem)
        assert three.transpiled_depth > one.transpiled_depth

    def test_decomposition_toggle_changes_depth(self, paper_example_problem):
        with_decomposition = make_solver(num_layers=1, use_equivalent_decomposition=True).solve(
            paper_example_problem
        )
        without = make_solver(num_layers=1, use_equivalent_decomposition=False).solve(
            paper_example_problem
        )
        # Generic synthesis of the opaque local unitaries is charged a much
        # larger depth (Fig. 14's Opt1 vs Opt1+2 comparison).
        assert without.transpiled_depth > with_decomposition.transpiled_depth

    def test_serialize_toggle_still_feasible(self, paper_example_problem):
        result = make_solver(num_layers=1, serialize_driver=False).solve(paper_example_problem)
        metrics = result.metrics(paper_example_problem)
        assert metrics.in_constraints_rate == pytest.approx(1.0)


class TestVariableElimination:
    def test_elimination_reduces_qubits(self, paper_example_problem):
        result = make_solver(num_layers=2, num_eliminated_variables=1).solve(
            paper_example_problem
        )
        assert result.metadata["num_circuits"] == 2
        assert result.metadata["sub_problem_qubits"] == 3

    def test_elimination_keeps_constraints_satisfied(self, paper_example_problem):
        result = make_solver(num_layers=2, num_eliminated_variables=1).solve(
            paper_example_problem
        )
        metrics = result.metrics(paper_example_problem)
        assert metrics.in_constraints_rate == pytest.approx(1.0)

    def test_elimination_still_finds_optimum(self, paper_example_problem):
        result = make_solver(num_layers=2, num_eliminated_variables=1).solve(
            paper_example_problem
        )
        metrics = result.metrics(paper_example_problem)
        # The optimum lives in one of the two sub-circuits; its share of the
        # merged distribution is bounded by 1 / num_circuits.
        assert metrics.success_rate > 0.2

    def test_two_eliminated_variables(self, paper_example_problem):
        result = make_solver(num_layers=2, num_eliminated_variables=2).solve(
            paper_example_problem
        )
        assert result.metadata["num_circuits"] <= 4
        metrics = result.metrics(paper_example_problem)
        assert metrics.in_constraints_rate == pytest.approx(1.0)

    def test_elimination_requires_constraints(self):
        problem = ConstrainedBinaryProblem(3, Objective.from_linear([1.0, -1.0, 2.0]))
        solver = make_solver(num_eliminated_variables=1)
        with pytest.raises(SolverError):
            solver.solve(problem)


class TestLargerInstance:
    def test_six_variable_flp_like_instance(self):
        """A 6-variable instance with linking constraints (F1-scale)."""
        from repro.problems import make_benchmark

        problem = make_benchmark("F1")
        result = make_solver(num_layers=3).solve(problem)
        metrics = result.metrics(problem)
        assert metrics.in_constraints_rate == pytest.approx(1.0)
        assert metrics.success_rate > 0.5
