"""Tests for the constraint operator, exact evolution, and the Trotter baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import HamiltonianError, SimulationError
from repro.hamiltonian.commute import CommuteDriver
from repro.hamiltonian.constraint_operator import (
    constraint_expectations,
    constraint_operator,
    constraint_operator_diagonal,
    constraint_system_operators,
)
from repro.hamiltonian.evolution import (
    dense_evolution_operator,
    driver_evolution_operator,
    pauli_sum_evolution,
)
from repro.hamiltonian.pauli import PauliSum, PauliString
from repro.hamiltonian.trotter import TrotterDecomposer
from repro.testing import random_statevector


class TestConstraintOperator:
    def test_operator_terms(self):
        operator = constraint_operator([1.0, 0.0, -2.0])
        labels = {term.label: term.coefficient for term in operator.terms}
        assert labels == {"ZII": 1.0, "IIZ": -2.0}

    def test_diagonal_values(self):
        diagonal = constraint_operator_diagonal([1.0, -1.0], 2)
        # index 0 -> x=(0,0): 1*(1) + (-1)*(1) = 0
        # index 1 -> x=(1,0): 1*(-1) + (-1)*(1) = -2
        assert np.allclose(diagonal, [0.0, -2.0, 2.0, 0.0])

    def test_register_too_small(self):
        with pytest.raises(HamiltonianError):
            constraint_operator([1.0, 1.0], num_qubits=1)

    def test_system_operators_one_per_row(self):
        operators = constraint_system_operators(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert len(operators) == 2

    def test_constraint_expectations(self):
        probabilities = np.zeros(4)
        probabilities[3] = 1.0  # x = (1, 1)
        expectations = constraint_expectations(probabilities, np.array([[1.0, 1.0]]), 2)
        assert expectations[0] == pytest.approx(-2.0)


class TestEvolution:
    def test_dense_evolution_is_unitary(self):
        hamiltonian = np.array([[0.0, 1.0], [1.0, 0.0]])
        unitary = dense_evolution_operator(hamiltonian, 0.7)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(2), atol=1e-10)

    def test_non_square_rejected(self):
        with pytest.raises(HamiltonianError):
            dense_evolution_operator(np.ones((2, 3)), 0.1)

    def test_pauli_sum_evolution_limit(self):
        big = PauliSum([PauliString("I" * 15)])
        with pytest.raises(SimulationError):
            pauli_sum_evolution(big, 0.1)

    def test_zero_time_is_identity(self):
        driver = CommuteDriver.from_solutions([(1, -1, 0), (0, 1, -1)])
        unitary = driver_evolution_operator(driver, 0.0)
        assert np.allclose(unitary, np.eye(8), atol=1e-12)


class TestTrotter:
    def test_decompose_reports_costs(self):
        driver = CommuteDriver.from_solutions([(1, -1, 0, 0), (0, 1, -1, 0), (0, 0, 1, -1)])
        decomposer = TrotterDecomposer(repetitions=8)
        circuit, report = decomposer.decompose(driver, beta=0.5)
        assert report.num_qubits == 4
        assert report.repetitions == 8
        assert report.num_unitaries == 3 * 8
        assert report.memory_bytes > 0
        assert report.decomposition_seconds >= 0.0
        assert circuit.size() == 24

    def test_memory_grows_exponentially_with_qubits(self):
        reports = []
        for size in (4, 6, 8):
            solutions = [
                tuple(1 if j == i else (-1 if j == i + 1 else 0) for j in range(size))
                for i in range(size - 1)
            ]
            driver = CommuteDriver.from_solutions(solutions)
            _, report = TrotterDecomposer(repetitions=4).decompose(driver, beta=0.3)
            reports.append(report)
        assert reports[1].memory_bytes > 3 * reports[0].memory_bytes
        assert reports[2].memory_bytes > 3 * reports[1].memory_bytes

    def test_qubit_limit_mimics_timeout(self):
        solutions = [tuple(1 if j == i else (-1 if j == i + 1 else 0) for j in range(16)) for i in range(3)]
        driver = CommuteDriver.from_solutions(solutions)
        with pytest.raises(HamiltonianError):
            TrotterDecomposer(repetitions=2, max_qubits=12).decompose(driver, beta=0.2)

    def test_approximation_error_decreases_with_repetitions(self):
        driver = CommuteDriver.from_solutions([(1, -1, 0), (0, 1, -1), (1, 0, -1)])
        coarse = TrotterDecomposer(repetitions=2).approximation_error(driver, beta=0.9)
        fine = TrotterDecomposer(repetitions=32).approximation_error(driver, beta=0.9)
        assert fine < coarse

    def test_invalid_repetitions(self):
        with pytest.raises(HamiltonianError):
            TrotterDecomposer(repetitions=0)

    def test_trotter_depth_far_exceeds_chocoq_depth(self):
        """Fig. 12(b): the serialized+decomposed circuit is far shallower."""
        from repro.qcircuit.transpile import depth_after_transpile

        driver = CommuteDriver.from_solutions([(1, -1, 0, 0), (0, 1, -1, 0), (0, 0, 1, -1)])
        _, trotter_report = TrotterDecomposer(repetitions=16).decompose(driver, beta=0.4)
        choco_depth = depth_after_transpile(driver.serialized_circuit(0.4))
        assert trotter_report.circuit_depth > 3 * choco_depth
