"""Tests for the symbolic parameter system."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.qcircuit.parameters import (
    Parameter,
    ParameterExpression,
    free_parameters,
    is_parameterized,
    resolve,
)


class TestParameter:
    def test_distinct_identity_even_with_same_name(self):
        a, b = Parameter("beta"), Parameter("beta")
        assert a != b
        assert a == a

    def test_bind_returns_float(self):
        beta = Parameter("beta")
        assert beta.bind({beta: 0.5}) == pytest.approx(0.5)

    def test_bind_missing_raises(self):
        beta = Parameter("beta")
        with pytest.raises(ParameterError):
            beta.bind({})

    def test_negation_creates_expression(self):
        beta = Parameter("beta")
        expression = -beta
        assert isinstance(expression, ParameterExpression)
        assert expression.bind({beta: 0.3}) == pytest.approx(-0.3)

    def test_scalar_multiplication(self):
        beta = Parameter("beta")
        assert (2 * beta).bind({beta: 0.4}) == pytest.approx(0.8)
        assert (beta * 0.5).bind({beta: 0.4}) == pytest.approx(0.2)

    def test_addition_and_subtraction(self):
        beta = Parameter("beta")
        assert (beta + 1.0).bind({beta: 0.25}) == pytest.approx(1.25)
        assert (beta - 1.0).bind({beta: 0.25}) == pytest.approx(-0.75)


class TestParameterExpression:
    def test_composition_of_scaling(self):
        beta = Parameter("beta")
        expression = (2.0 * beta) * 3.0
        assert expression.bind({beta: 1.0}) == pytest.approx(6.0)

    def test_negated_expression(self):
        beta = Parameter("beta")
        expression = -(2.0 * beta)
        assert expression.bind({beta: 0.5}) == pytest.approx(-1.0)

    def test_offset_scaling(self):
        beta = Parameter("beta")
        expression = (beta + 1.0) * 2.0
        assert expression.bind({beta: 0.5}) == pytest.approx(3.0)

    def test_parameters_property(self):
        beta = Parameter("beta")
        assert (2 * beta).parameters == frozenset({beta})


class TestHelpers:
    def test_is_parameterized(self):
        beta = Parameter("beta")
        assert is_parameterized(beta)
        assert is_parameterized(2 * beta)
        assert not is_parameterized(0.7)

    def test_resolve_constant(self):
        assert resolve(1.5) == pytest.approx(1.5)

    def test_resolve_symbolic_without_bindings_raises(self):
        with pytest.raises(ParameterError):
            resolve(Parameter("gamma"))

    def test_resolve_symbolic_with_bindings(self):
        gamma = Parameter("gamma")
        assert resolve(gamma, {gamma: 2.0}) == pytest.approx(2.0)

    def test_free_parameters_collects_all(self):
        a, b = Parameter("a"), Parameter("b")
        found = free_parameters([a, 2 * b, 0.5])
        assert found == frozenset({a, b})
