"""Tests for the problem model: objectives, constraints, problems."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.exceptions import ProblemError


class TestObjective:
    def test_terms_collapse_duplicates(self):
        objective = Objective({(1, 1): 2.0})
        assert objective.terms == {(1,): 2.0}

    def test_add_term_accumulates_and_cancels(self):
        objective = Objective()
        objective.add_term((0,), 1.5)
        objective.add_term((0,), -1.5)
        assert len(objective) == 0

    def test_evaluate(self):
        objective = Objective({(): 1.0, (0,): 2.0, (0, 1): 3.0})
        assert objective.evaluate([1, 0]) == pytest.approx(3.0)
        assert objective.evaluate([1, 1]) == pytest.approx(6.0)

    def test_addition_and_scaling(self):
        a = Objective({(0,): 1.0})
        b = Objective({(0,): 2.0, (1,): 1.0})
        combined = a + 2.0 * b
        assert combined.terms == {(0,): 5.0, (1,): 2.0}
        assert (-a).terms == {(0,): -1.0}

    def test_substitute_one(self):
        objective = Objective({(0, 1): 2.0, (1,): 1.0})
        reduced = objective.substitute(0, 1)
        assert reduced.terms == {(1,): 3.0}

    def test_substitute_zero_drops_terms(self):
        objective = Objective({(0, 1): 2.0, (1,): 1.0})
        reduced = objective.substitute(0, 0)
        assert reduced.terms == {(1,): 1.0}

    def test_substitute_invalid_value(self):
        with pytest.raises(ProblemError):
            Objective({(0,): 1.0}).substitute(0, 2)

    def test_from_linear(self):
        objective = Objective.from_linear([1.0, 0.0, -2.0], constant=3.0)
        assert objective.evaluate([1, 1, 1]) == pytest.approx(2.0)

    def test_degree(self):
        assert Objective({(0, 1): 1.0}).degree == 2
        assert Objective().degree == 0


class TestLinearConstraint:
    def test_requires_coefficients(self):
        with pytest.raises(ProblemError):
            LinearConstraint((), 0.0)

    def test_support_and_summation_format(self):
        constraint = LinearConstraint((1.0, 0.0, 1.0), 1.0)
        assert constraint.support == (0, 2)
        assert constraint.is_summation_format()
        assert LinearConstraint((-1.0, -1.0), -1.0).is_summation_format()
        assert not LinearConstraint((1.0, -1.0), 0.0).is_summation_format()
        assert not LinearConstraint((2.0, 1.0), 1.0).is_summation_format()

    def test_violation_and_satisfaction(self):
        constraint = LinearConstraint((1.0, 1.0), 1.0)
        assert constraint.is_satisfied([1, 0])
        assert constraint.violation([1, 1]) == pytest.approx(1.0)

    def test_substitute_moves_to_rhs(self):
        constraint = LinearConstraint((2.0, 1.0), 3.0)
        reduced = constraint.substitute(0, 1)
        assert reduced.coefficients == (0.0, 1.0)
        assert reduced.rhs == pytest.approx(1.0)


class TestConstrainedBinaryProblem:
    def test_optimum_of_paper_example(self, paper_example_problem):
        assignment, value = paper_example_problem.brute_force_optimum()
        assert assignment == (1, 0, 1, 0)
        assert value == pytest.approx(6.0)

    def test_optimal_assignments_includes_ties(self):
        problem = ConstrainedBinaryProblem(
            2,
            Objective({(0,): 1.0, (1,): 1.0}),
            [LinearConstraint((1.0, 1.0), 1.0)],
            sense="min",
        )
        optima, value = problem.optimal_assignments()
        assert value == pytest.approx(1.0)
        assert set(optima) == {(1, 0), (0, 1)}

    def test_feasibility_and_violation(self, paper_example_problem):
        assert paper_example_problem.is_feasible((1, 0, 1, 0))
        assert not paper_example_problem.is_feasible((1, 1, 1, 1))
        assert paper_example_problem.total_violation((1, 1, 1, 1)) == pytest.approx(2.0)

    def test_sense_validation(self):
        with pytest.raises(ProblemError):
            ConstrainedBinaryProblem(1, Objective(), sense="maximize")

    def test_constraint_width_validation(self):
        with pytest.raises(ProblemError):
            ConstrainedBinaryProblem(
                3, Objective(), [LinearConstraint((1.0, 1.0), 1.0)]
            )

    def test_objective_variable_range_validated(self):
        with pytest.raises(ProblemError):
            ConstrainedBinaryProblem(2, Objective({(5,): 1.0}))

    def test_minimization_objective_negates_for_max(self, paper_example_problem):
        minimized = paper_example_problem.minimization_objective()
        assert minimized.evaluate((1, 0, 1, 0)) == pytest.approx(-6.0)

    def test_infeasible_problem_raises(self):
        problem = ConstrainedBinaryProblem(
            2, Objective(), [LinearConstraint((1.0, 1.0), 5.0)]
        )
        with pytest.raises(ProblemError):
            problem.brute_force_optimum()

    def test_fix_variable_keeps_width(self, paper_example_problem):
        fixed = paper_example_problem.fix_variable(0, 1)
        assert fixed.num_variables == 4
        # x0 fixed to 1 forces x2 = 1 (via x0 - x2 = 0) and x1 = x3 = 0;
        # x0's contribution stays as a constant term, so the optimum is still 6.
        assignment, value = fixed.brute_force_optimum()
        assert value == pytest.approx(6.0)
        assert assignment[2] == 1

    def test_constraint_matrix_shapes(self, paper_example_problem):
        matrix, rhs = paper_example_problem.constraint_matrix()
        assert matrix.shape == (2, 4)
        assert rhs.shape == (2,)

    def test_assignment_length_checked(self, paper_example_problem):
        with pytest.raises(ProblemError):
            paper_example_problem.evaluate((1, 0))


@settings(max_examples=30, deadline=None)
@given(
    bits=st.lists(st.integers(0, 1), min_size=3, max_size=3),
    weights=st.lists(st.floats(-5, 5, allow_nan=False), min_size=3, max_size=3),
)
def test_property_linear_objective_evaluation(bits, weights):
    """Objective evaluation equals the dot product for linear polynomials."""
    objective = Objective.from_linear(weights)
    expected = sum(w * b for w, b in zip(weights, bits))
    assert objective.evaluate(bits) == pytest.approx(expected)
