"""Tests for Pauli-string algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import HamiltonianError
from repro.hamiltonian.pauli import (
    PauliString,
    PauliSum,
    cyclic_driver_terms,
    ising_from_quadratic,
    single_pauli,
    two_pauli,
)

X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
I2 = np.eye(2, dtype=complex)


class TestPauliString:
    def test_invalid_label_rejected(self):
        with pytest.raises(HamiltonianError):
            PauliString("XQ")

    def test_matrix_little_endian(self):
        # "XZ" = X on qubit 0, Z on qubit 1 -> kron(Z, X)
        assert np.allclose(PauliString("XZ").to_matrix(), np.kron(Z, X))

    def test_support_and_diagonality(self):
        string = PauliString("IZXI")
        assert string.support == (1, 2)
        assert not string.is_diagonal
        assert PauliString("IZZI").is_diagonal

    def test_product_phases(self):
        xy = PauliString("X") * PauliString("Y")
        assert xy.label == "Z"
        assert xy.coefficient == pytest.approx(1j)
        yx = PauliString("Y") * PauliString("X")
        assert yx.coefficient == pytest.approx(-1j)

    def test_product_matches_matrix_product(self):
        a = PauliString("XYZ", 0.5)
        b = PauliString("ZZX", 2.0)
        product = a * b
        assert np.allclose(product.to_matrix(), a.to_matrix() @ b.to_matrix())

    def test_commutation_rule(self):
        assert PauliString("XX").commutes_with(PauliString("ZZ"))
        assert not PauliString("XI").commutes_with(PauliString("ZI"))

    def test_scalar_multiplication(self):
        doubled = 2.0 * PauliString("Z", 1.5)
        assert doubled.coefficient == pytest.approx(3.0)


class TestPauliSum:
    def test_empty_requires_size(self):
        with pytest.raises(HamiltonianError):
            PauliSum([])

    def test_mixed_sizes_rejected(self):
        with pytest.raises(HamiltonianError):
            PauliSum([PauliString("X"), PauliString("XX")])

    def test_simplify_merges_terms(self):
        total = PauliSum([PauliString("Z", 1.0), PauliString("Z", 2.0), PauliString("X", 0.0)])
        simplified = total.simplify()
        assert len(simplified) == 1
        assert simplified.terms[0].coefficient == pytest.approx(3.0)

    def test_diagonal_extraction(self):
        # Z0 has eigenvalues (+1, -1, +1, -1) over indices 0..3
        total = PauliSum([single_pauli(2, 0, "Z")])
        assert np.allclose(total.diagonal(), [1, -1, 1, -1])

    def test_diagonal_rejected_for_off_diagonal(self):
        with pytest.raises(HamiltonianError):
            PauliSum([PauliString("X")]).diagonal()

    def test_commutator_of_commuting_sums_is_zero(self):
        a = PauliSum([PauliString("ZI"), PauliString("IZ")])
        b = PauliSum([PauliString("ZZ")])
        assert a.commutes_with(b)

    def test_commutator_of_anticommuting(self):
        a = PauliSum([PauliString("X")])
        b = PauliSum([PauliString("Z")])
        assert not a.commutes_with(b)
        commutator = a.commutator(b)
        assert np.allclose(
            commutator.to_matrix(), a.to_matrix() @ b.to_matrix() - b.to_matrix() @ a.to_matrix()
        )

    def test_matrix_addition(self):
        a = PauliSum([PauliString("X", 0.5)])
        b = PauliSum([PauliString("Z", 1.5)])
        assert np.allclose((a + b).to_matrix(), 0.5 * X + 1.5 * Z)


class TestConstructors:
    def test_single_pauli_bounds(self):
        with pytest.raises(HamiltonianError):
            single_pauli(2, 5, "Z")
        with pytest.raises(HamiltonianError):
            single_pauli(2, 0, "Q")

    def test_two_pauli_distinct(self):
        with pytest.raises(HamiltonianError):
            two_pauli(3, 1, "X", 1, "Y")

    def test_cyclic_driver_structure(self):
        driver = cyclic_driver_terms(4, [0, 1, 3])
        labels = sorted(term.label for term in driver.terms)
        assert labels == ["IXIX", "IYIY", "XXII", "YYII"]

    def test_cyclic_driver_needs_two_qubits(self):
        with pytest.raises(HamiltonianError):
            cyclic_driver_terms(4, [2])

    def test_cyclic_driver_conserves_excitation_number(self):
        # The driver must commute with sum_i Z_i over its chain.
        driver = cyclic_driver_terms(3, [0, 1, 2])
        number_operator = PauliSum(
            [single_pauli(3, q, "Z") for q in range(3)], num_qubits=3
        )
        assert driver.commutes_with(number_operator)

    def test_ising_from_quadratic_matches_polynomial(self):
        linear = {0: 2.0, 1: -1.0}
        quadratic = {(0, 1): 3.0}
        ising = ising_from_quadratic(2, linear, quadratic, constant=0.5)
        diagonal = np.real(ising.diagonal())
        for index in range(4):
            x0, x1 = index & 1, (index >> 1) & 1
            expected = 0.5 + 2.0 * x0 - 1.0 * x1 + 3.0 * x0 * x1
            assert diagonal[index] == pytest.approx(expected)

    def test_ising_squared_variable_collapses(self):
        ising = ising_from_quadratic(1, {}, {(0, 0): 2.0})
        diagonal = np.real(ising.diagonal())
        assert diagonal[0] == pytest.approx(0.0)
        assert diagonal[1] == pytest.approx(2.0)


@settings(max_examples=30, deadline=None)
@given(
    label_a=st.text(alphabet="IXYZ", min_size=1, max_size=4),
    label_b=st.text(alphabet="IXYZ", min_size=1, max_size=4),
)
def test_property_pauli_product_matches_matrices(label_a, label_b):
    """Symbolic Pauli products agree with explicit matrix products."""
    size = max(len(label_a), len(label_b))
    label_a = label_a.ljust(size, "I")
    label_b = label_b.ljust(size, "I")
    a, b = PauliString(label_a), PauliString(label_b)
    assert np.allclose((a * b).to_matrix(), a.to_matrix() @ b.to_matrix(), atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(
    label_a=st.text(alphabet="IXYZ", min_size=2, max_size=4),
    label_b=st.text(alphabet="IXYZ", min_size=2, max_size=4),
)
def test_property_commutes_with_matches_matrices(label_a, label_b):
    """The symbolic commutation test agrees with the matrix commutator."""
    size = max(len(label_a), len(label_b))
    a = PauliString(label_a.ljust(size, "I"))
    b = PauliString(label_b.ljust(size, "I"))
    commutator = a.to_matrix() @ b.to_matrix() - b.to_matrix() @ a.to_matrix()
    assert a.commutes_with(b) == bool(np.allclose(commutator, 0.0, atol=1e-10))
