"""Compile-once evolution programs: caching invariants and bit-identity.

The compiled path must be a pure restructuring: identical arithmetic over
precomputed pair indices.  These tests pin

* the vectorised ``subspace_pairing`` against the pre-PR per-row loop
  (element for element, including the rejection paths);
* compiled-vs-uncompiled final states as *bit-identical* (``np.array_equal``,
  not a tolerance) on dense and subspace layouts, scalar and batched;
* the compile-once guarantee — a call-count spy shows ``subspace_pairing``
  runs exactly once per (term, map) across a full ``VariationalEngine.run``,
  including one compilation per Opt3 sub-instance;
* the bounded monolithic-unitary cache and the ``abs_squared`` hot-path
  helper.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

from solver_factories import make_chocoq_solver, make_cyclic_solver, make_one_hot_problem
from repro.core.subspace import SubspaceMap
from repro.exceptions import (
    HamiltonianError,
    InfeasibleError,
    ProblemError,
    SolverError,
)
from repro.hamiltonian.commute import (
    CommuteDriver,
    CommuteHamiltonianTerm,
    subspace_pairing_loop,
)
from repro.hamiltonian.compiled import (
    EvolutionProgram,
    apply_diagonal_phase,
    dense_term_pairing,
    prepare_ansatz_state,
)
from repro.problems import make_benchmark
from repro.qcircuit.statevector import (
    Statevector,
    abs_squared,
    state_support_size,
)
from repro.solvers.chocoq import (
    MONOLITHIC_UNITARY_CACHE_SIZE,
    BoundedUnitaryCache,
)
from repro.solvers.cyclic_qaoa import chain_hop_edges, summation_chains

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks"))

SEED_PROBLEMS = ("F1", "G1", "K1", "K2")


def _driver_and_map(case: str):
    problem = make_benchmark(case)
    driver = make_chocoq_solver("subspace").build_driver(problem)
    return driver, SubspaceMap.from_problem(problem)


# ---------------------------------------------------------------------------
# Vectorised pairing == per-row loop reference
# ---------------------------------------------------------------------------


class TestVectorizedPairing:
    @pytest.mark.parametrize("case", SEED_PROBLEMS)
    def test_matches_loop_reference_on_seed_problems(self, case):
        driver, subspace_map = _driver_and_map(case)
        for term in driver.terms:
            a_fast, b_fast = term.subspace_pairing(subspace_map)
            a_loop, b_loop = subspace_pairing_loop(term, subspace_map)
            assert np.array_equal(a_fast, a_loop)
            assert np.array_equal(b_fast, b_loop)

    def test_rejects_non_nullspace_term(self):
        subspace_map = SubspaceMap.from_problem(make_one_hot_problem())
        term = CommuteHamiltonianTerm((1, 0, 0))
        with pytest.raises(HamiltonianError):
            term.subspace_pairing(subspace_map)
        with pytest.raises(HamiltonianError):
            subspace_pairing_loop(term, subspace_map)

    def test_rejects_surplus_v_bar_state(self):
        # F = {11}: u = (-1, -1) pairs no v-side state, but |11> matches v̄
        # with an infeasible partner — both implementations must refuse.
        lonely_map = SubspaceMap.from_constraints([[1.0, 1.0]], [2.0])
        term = CommuteHamiltonianTerm((-1, -1))
        with pytest.raises(HamiltonianError):
            term.subspace_pairing(lonely_map)
        with pytest.raises(HamiltonianError):
            subspace_pairing_loop(term, lonely_map)


class TestCoordinatesOfRows:
    def test_roundtrips_every_basis_row(self):
        _, subspace_map = _driver_and_map("K2")
        shuffled = np.random.default_rng(0).permutation(subspace_map.size)
        rows = subspace_map.basis[shuffled]
        coordinates = subspace_map.coordinates_of_rows(rows)
        assert np.array_equal(coordinates, shuffled)
        assert coordinates.dtype == np.int64

    def test_matches_coordinate_of(self):
        _, subspace_map = _driver_and_map("K1")
        rows = subspace_map.basis[::2]
        expected = [subspace_map.coordinate_of(row) for row in rows]
        assert list(subspace_map.coordinates_of_rows(rows)) == expected

    def test_empty_batch(self):
        _, subspace_map = _driver_and_map("F1")
        rows = np.empty((0, subspace_map.num_variables), dtype=np.uint8)
        assert subspace_map.coordinates_of_rows(rows).shape == (0,)

    def test_infeasible_row_raises(self):
        subspace_map = SubspaceMap.from_problem(make_one_hot_problem())
        infeasible = np.ones((1, subspace_map.num_variables), dtype=np.uint8)
        with pytest.raises(InfeasibleError):
            subspace_map.coordinates_of_rows(infeasible)

    def test_wrong_width_raises(self):
        subspace_map = SubspaceMap.from_problem(make_one_hot_problem())
        with pytest.raises(ProblemError):
            subspace_map.coordinates_of_rows(np.zeros((2, 99), dtype=np.uint8))

    def test_non_binary_row_raises_despite_key_alias(self):
        # (2, 0, 0) packs to the same int64 key as the feasible row (0, 1, 0);
        # the lookup must not be fooled by the collision — coordinate_of
        # raises on this row, so the batch path must too.
        subspace_map = SubspaceMap.from_problem(make_one_hot_problem())
        aliased = np.array([[2, 0, 0]], dtype=np.uint8)
        with pytest.raises(InfeasibleError):
            subspace_map.coordinates_of_rows(aliased)
        with pytest.raises(InfeasibleError):
            subspace_map.coordinate_of(aliased[0])


# ---------------------------------------------------------------------------
# Compiled-vs-uncompiled equivalence (bit-identical, not approximate)
# ---------------------------------------------------------------------------


def _legacy_chocoq_evolve(spec, driver, num_layers, subspace_map=None):
    """The pre-PR recompute-every-call inner loop for a Choco-Q spec."""

    def evolve(parameters):
        parameters, state = prepare_ansatz_state(spec.initial_state, parameters)
        for layer in range(num_layers):
            gamma = parameters[..., 2 * layer]
            beta = parameters[..., 2 * layer + 1]
            state = apply_diagonal_phase(state, gamma, spec.cost_diagonal)
            for term in driver.terms:
                if subspace_map is None:
                    state = term.apply_evolution(state, beta)
                else:
                    state = term.apply_evolution_subspace(state, beta, subspace_map)
        return state

    return evolve


class TestCompiledEquivalence:
    @pytest.mark.parametrize("case", SEED_PROBLEMS)
    @pytest.mark.parametrize("backend", ["dense", "subspace"])
    def test_chocoq_states_bit_identical(self, case, backend):
        problem = make_benchmark(case)
        solver = make_chocoq_solver(backend, num_layers=2)
        spec, driver = solver.build_spec(problem)
        subspace_map = SubspaceMap.from_problem(problem) if backend == "subspace" else None
        legacy = _legacy_chocoq_evolve(spec, driver, 2, subspace_map)
        rng = np.random.default_rng(11)
        for _ in range(4):
            parameters = rng.uniform(-np.pi, np.pi, size=4)
            assert np.array_equal(spec.evolve(parameters), legacy(parameters))
        batch = rng.uniform(-np.pi, np.pi, size=(3, 4))
        assert np.array_equal(spec.evolve(batch), legacy(batch))

    @pytest.mark.parametrize("backend", ["dense", "subspace"])
    def test_cyclic_states_bit_identical(self, backend):
        problem = make_one_hot_problem((2.0, 1.0, 3.0, 0.5))
        solver = make_cyclic_solver(backend, num_layers=2)
        spec = solver.build_spec(problem)
        # Rebuild the ring-hop driver exactly as the solver does.
        chains, _ = summation_chains(problem)
        terms = []
        for chain in chains:
            for qubit_a, qubit_b in chain_hop_edges(chain):
                u = [0] * problem.num_variables
                u[qubit_a] = 1
                u[qubit_b] = -1
                terms.append(CommuteHamiltonianTerm(tuple(u)))
        driver = CommuteDriver(terms)
        if backend == "subspace":
            matrix, rhs = problem.constraint_matrix()
            subspace_map = SubspaceMap.from_constraints(matrix, rhs)
            restricted = driver.restrict(subspace_map)
            apply_hops = restricted.apply_serialized
        else:
            apply_hops = driver.apply_serialized

        def legacy(parameters):
            parameters, state = prepare_ansatz_state(spec.initial_state, parameters)
            for layer in range(2):
                gamma = parameters[..., 2 * layer]
                beta = parameters[..., 2 * layer + 1]
                state = apply_diagonal_phase(state, gamma, spec.cost_diagonal)
                state = apply_hops(state, 2.0 * beta)
            return state

        rng = np.random.default_rng(23)
        for _ in range(4):
            parameters = rng.uniform(-np.pi, np.pi, size=4)
            assert np.array_equal(spec.evolve(parameters), legacy(parameters))

    def test_full_solve_unchanged_by_compilation(self):
        """End-to-end pin: compiled runs reproduce the recorded pre-PR answer.

        The whole run (optimizer trajectory, sampling) must be unaffected by
        compilation because every cost evaluation is bit-identical; dense and
        subspace solves of the same seeded problem still agree exactly.
        """
        problem = make_benchmark("K1")
        dense = make_chocoq_solver("dense", num_layers=2).solve(problem)
        subspace = make_chocoq_solver("subspace", num_layers=2).solve(problem)
        keys = set(dense.exact_distribution) | set(subspace.exact_distribution)
        for key in keys:
            assert dense.exact_distribution.get(key, 0.0) == pytest.approx(
                subspace.exact_distribution.get(key, 0.0), abs=1e-9
            )
        assert dense.metadata["compiled_evolution"] is True
        assert subspace.metadata["compiled_evolution"] is True


class TestEvolutionProgramValidation:
    def test_requires_a_layer(self):
        with pytest.raises(HamiltonianError):
            EvolutionProgram(0, np.zeros(4), [])

    def test_rejects_matrix_diagonal(self):
        with pytest.raises(HamiltonianError):
            EvolutionProgram(1, np.zeros((2, 2)), [])

    def test_rejects_mismatched_pairs(self):
        with pytest.raises(HamiltonianError):
            EvolutionProgram(1, np.zeros(4), [(np.array([0, 1]), np.array([2]))])

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(HamiltonianError):
            EvolutionProgram(1, np.zeros(4), [(np.array([0]), np.array([7]))])

    def test_dense_term_pairing_matches_apply_evolution(self):
        term = CommuteHamiltonianTerm((1, 0, -1))
        a_indices, b_indices = dense_term_pairing(term)
        state = np.arange(8, dtype=complex) / np.linalg.norm(np.arange(8))
        program = EvolutionProgram(1, np.zeros(8), [(a_indices, b_indices)])
        compiled = program.execute(state, np.array([0.0, 0.4]))
        assert np.array_equal(compiled, term.apply_evolution(state, 0.4))

    def test_program_reports_shape(self):
        program = EvolutionProgram(2, np.zeros(8), [dense_term_pairing(CommuteHamiltonianTerm((1, -1, 0)))])
        assert program.dimension == 8
        assert program.num_terms == 1
        assert program.num_layers == 2


# ---------------------------------------------------------------------------
# Compile-once guarantee (call-count spy over a full engine run)
# ---------------------------------------------------------------------------


class TestPairingComputedOnce:
    def _install_spy(self, monkeypatch):
        calls: dict[tuple, int] = {}
        keepalive: list = []  # pin maps so id() keys stay unique
        original = CommuteHamiltonianTerm.subspace_pairing

        def spy(self, subspace_map):
            keepalive.append(subspace_map)
            key = (self.u, id(subspace_map))
            calls[key] = calls.get(key, 0) + 1
            return original(self, subspace_map)

        monkeypatch.setattr(CommuteHamiltonianTerm, "subspace_pairing", spy)
        return calls

    def test_once_per_term_and_map_across_full_run(self, monkeypatch):
        calls = self._install_spy(monkeypatch)
        result = make_chocoq_solver("subspace", num_layers=2, max_iterations=25).solve(
            make_benchmark("K1")
        )
        # The run did iterate — so an uncompiled path would have recomputed
        # the pairing (terms x layers) times per iteration.
        assert result.metadata["iterations"] > 1
        assert calls, "the subspace run never resolved a pairing"
        assert all(count == 1 for count in calls.values()), calls

    def test_once_per_sub_instance_under_elimination(self, monkeypatch):
        calls = self._install_spy(monkeypatch)
        result = make_chocoq_solver(
            "subspace", num_layers=1, max_iterations=15, num_eliminated_variables=1
        ).solve(make_benchmark("K1"))
        assert result.metadata["num_circuits"] >= 2
        assert calls
        assert all(count == 1 for count in calls.values()), calls
        # Each Opt3 sub-instance compiled its own program over its own map.
        num_maps = len({key[1] for key in calls})
        assert num_maps == result.metadata["num_circuits"]


# ---------------------------------------------------------------------------
# Bounded monolithic-unitary cache
# ---------------------------------------------------------------------------


class TestBoundedUnitaryCache:
    def test_evicts_oldest_beyond_cap(self):
        cache = BoundedUnitaryCache(max_entries=3)
        for key in (0.1, 0.2, 0.3, 0.4):
            cache.put(key, np.full((2, 2), key))
        assert len(cache) == 3
        assert cache.get(0.1) is None
        assert cache.get(0.4) is not None

    def test_get_refreshes_recency(self):
        cache = BoundedUnitaryCache(max_entries=2)
        cache.put(0.1, np.eye(2))
        cache.put(0.2, np.eye(2))
        assert cache.get(0.1) is not None  # 0.2 is now the LRU entry
        cache.put(0.3, np.eye(2))
        assert cache.get(0.2) is None
        assert cache.get(0.1) is not None

    def test_default_cap_is_small(self):
        cache = BoundedUnitaryCache()
        for index in range(MONOLITHIC_UNITARY_CACHE_SIZE + 10):
            cache.put(float(index), np.eye(1))
        assert len(cache) == MONOLITHIC_UNITARY_CACHE_SIZE

    def test_rejects_empty_cache(self):
        with pytest.raises(SolverError):
            BoundedUnitaryCache(max_entries=0)

    def test_monolithic_solve_still_matches_serialized_format(self):
        """The ablation path still runs end to end with the bounded cache."""
        result = make_chocoq_solver(
            "dense", num_layers=1, max_iterations=20, serialize_driver=False
        ).solve(make_one_hot_problem())
        assert result.metadata["compiled_evolution"] is False
        assert result.outcomes.shots == 1024


# ---------------------------------------------------------------------------
# abs_squared hot-path helper
# ---------------------------------------------------------------------------


class TestAbsSquared:
    def test_matches_abs_power_for_complex(self, rng):
        amplitudes = rng.normal(size=64) + 1j * rng.normal(size=64)
        np.testing.assert_allclose(
            abs_squared(amplitudes), np.abs(amplitudes) ** 2, rtol=1e-15
        )

    def test_real_input(self):
        np.testing.assert_allclose(abs_squared(np.array([-2.0, 3.0])), [4.0, 9.0])
        assert abs_squared(np.array([1, 2])).dtype == float

    def test_support_size_unchanged(self, rng):
        amplitudes = rng.normal(size=32) + 1j * rng.normal(size=32)
        amplitudes[::3] = 0.0
        assert state_support_size(amplitudes) == int(
            np.count_nonzero(np.abs(amplitudes) ** 2 > 1e-9)
        )

    def test_statevector_probabilities_normalised(self):
        state = Statevector.uniform_superposition(4)
        probabilities = state.probabilities()
        assert probabilities.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(probabilities, np.abs(state.data) ** 2)


# ---------------------------------------------------------------------------
# Throughput benchmark smoke (the slow gate runs in the marked tier)
# ---------------------------------------------------------------------------


class TestThroughputBenchSmoke:
    def test_bench_runs_small_case_and_writes_json(self, tmp_path):
        from bench_iteration_throughput import BENCH_NAME, run_iteration_throughput
        from harness import load_bench_json, write_bench_json

        rows = run_iteration_throughput(cases=("F1",), repeats=2)
        assert rows[0]["bit_identical"]
        assert rows[0]["subspace_compiled_ms/iter"] > 0
        path = write_bench_json(BENCH_NAME, rows, path=str(tmp_path / "bench.json"))
        payload = load_bench_json(BENCH_NAME, path=path)
        assert payload["benchmark"] == BENCH_NAME
        assert payload["rows"][0]["case"] == "F1"

    @pytest.mark.slow
    def test_gate_case_clears_target(self):
        from bench_iteration_throughput import (
            GATE_CASES,
            TARGET_SPEEDUP,
            check_rows,
            run_iteration_throughput,
        )

        rows = run_iteration_throughput(cases=GATE_CASES)
        check_rows(rows)
        assert rows[0]["subspace_speedup"] >= TARGET_SPEEDUP
