"""Tests for the QuantumCircuit IR: building, depth, composition, binding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.parameters import Parameter
from repro.qcircuit.statevector import StatevectorSimulator


class TestConstruction:
    def test_requires_positive_qubits(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_out_of_range_qubit_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.h(2)

    def test_duplicate_qubits_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.cx(1, 1)

    def test_builder_methods_chain(self):
        circuit = QuantumCircuit(3)
        returned = circuit.h(0).cx(0, 1).rz(0.3, 2)
        assert returned is circuit
        assert len(circuit) == 3

    def test_count_ops(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).cx(0, 1).rz(0.1, 0)
        assert circuit.count_ops() == {"h": 2, "cx": 1, "rz": 1}

    def test_size_excludes_directives(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().measure_all()
        assert circuit.size() == 1

    def test_qubits_used(self):
        circuit = QuantumCircuit(4)
        circuit.h(0).cx(1, 3)
        assert circuit.qubits_used() == frozenset({0, 1, 3})


class TestDepth:
    def test_parallel_gates_share_a_layer(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).h(1).h(2)
        assert circuit.depth() == 1

    def test_sequential_gates_stack(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).x(0).h(0)
        assert circuit.depth() == 3

    def test_two_qubit_gate_synchronises(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).h(1)
        assert circuit.depth() == 3

    def test_barrier_synchronises_depth(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.h(1)
        # The barrier aligns qubit 1's frontier to qubit 0's, so the second H
        # lands in layer 2.
        assert circuit.depth() == 2

    def test_empty_circuit_depth_zero(self):
        assert QuantumCircuit(2).depth() == 0

    def test_two_qubit_gate_count(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cz(1, 2).h(0)
        assert circuit.num_two_qubit_gates() == 2


class TestParameters:
    def test_parameter_collection(self):
        beta, gamma = Parameter("beta"), Parameter("gamma")
        circuit = QuantumCircuit(2)
        circuit.rz(gamma, 0).rx(beta, 1).rz(0.5, 0)
        assert circuit.parameters == frozenset({beta, gamma})
        assert circuit.is_parameterized

    def test_bind_produces_concrete_circuit(self):
        beta = Parameter("beta")
        circuit = QuantumCircuit(1)
        circuit.rx(beta, 0)
        bound = circuit.bind({beta: 0.7})
        assert not bound.is_parameterized
        assert bound[0].gate.params == (0.7,)
        # Original untouched.
        assert circuit.is_parameterized

    def test_mcp_with_negated_parameter(self):
        beta = Parameter("beta")
        circuit = QuantumCircuit(3)
        circuit.mcp(-beta, [0, 1], 2)
        bound = circuit.bind({beta: 0.4})
        assert bound[0].gate.params[0] == pytest.approx(-0.4)


class TestComposition:
    def test_compose_identity_mapping(self):
        inner = QuantumCircuit(2)
        inner.h(0).cx(0, 1)
        outer = QuantumCircuit(3)
        outer.compose(inner)
        assert outer.count_ops() == {"h": 1, "cx": 1}

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(2)
        inner.cx(0, 1)
        outer = QuantumCircuit(3)
        outer.compose(inner, qubits=[2, 0])
        assert outer[0].qubits == (2, 0)

    def test_compose_size_mismatch_raises(self):
        inner = QuantumCircuit(4)
        outer = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            outer.compose(inner)

    def test_compose_bad_mapping_length(self):
        inner = QuantumCircuit(2)
        outer = QuantumCircuit(3)
        with pytest.raises(CircuitError):
            outer.compose(inner, qubits=[0])


class TestInverse:
    def test_inverse_reverses_and_inverts(self, simulator):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).rz(0.3, 1).rx(0.9, 0)
        roundtrip = circuit.copy()
        roundtrip.compose(circuit.inverse())
        state = simulator.statevector(roundtrip)
        expected = np.zeros(4, dtype=complex)
        expected[0] = 1.0
        assert np.allclose(state.data, expected, atol=1e-10)

    def test_inverse_drops_directives(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).measure_all()
        assert all(not inst.is_directive for inst in circuit.inverse())


class TestCopySemantics:
    def test_copy_is_shallow_but_independent_list(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        duplicate = circuit.copy()
        duplicate.x(0)
        assert len(circuit) == 1
        assert len(duplicate) == 2

    def test_remove_directives(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).barrier().measure_all()
        stripped = circuit.remove_directives()
        assert len(stripped) == 1

    def test_summary_mentions_ops(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        text = circuit.summary()
        assert "cx:1" in text and "h:1" in text
