"""Tests for the serializable noise subsystem.

Covers the :class:`~repro.solvers.config.NoiseConfig` round-trip and
validation, the ``noise`` field threading (solver configs, ``repro.solve``,
``RunSpec``), content-hash separation of noisy and noiseless specs, the
parallel-vs-sequential bit-identity of noisy plans, the exact-shot-
conservation contract of ``NoiseModel.sample``, and the public
``append_instruction`` circuit API the trajectory cloning uses.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.exceptions import CircuitError, SolverError
from repro.qcircuit.circuit import Instruction, QuantumCircuit
from repro.qcircuit.gates import standard_gate
from repro.qcircuit.noise import IBM_FEZ, IBM_OSAKA, NoiseModel
from repro.run import ExperimentPlan, RunSpec, run_plan
from repro.run import plan as plan_module
from repro.run.problems import register_benchmark, unregister_benchmark
from repro.solvers import (
    ChocoQConfig,
    CobylaOptimizer,
    EngineOptions,
    HEAConfig,
    NoiseConfig,
    as_noise_config,
)
from repro.solvers.variational import noise_seed_sequence

FAST_OPTIMIZER = CobylaOptimizer(max_iterations=6)


def bell_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(2)
    circuit.h(0).cx(0, 1)
    return circuit


# ---------------------------------------------------------------------------
# NoiseConfig round-trip and validation
# ---------------------------------------------------------------------------


class TestNoiseConfig:
    def test_round_trip_is_fixed_point(self):
        config = NoiseConfig(device="fez", mode="analytical", trajectories=4, readout=False)
        data = config.to_dict()
        json.dumps(data)  # must be JSON-serializable
        assert NoiseConfig.from_dict(data) == config

    def test_replace_revalidates(self):
        config = NoiseConfig(device="osaka")
        assert config.replace(trajectories=2).trajectories == 2
        with pytest.raises(SolverError, match="trajectories"):
            config.replace(trajectories=0)
        with pytest.raises(SolverError, match="unknown"):
            config.replace(typo_field=1)

    def test_unknown_device_rejected_as_config_error(self):
        with pytest.raises(SolverError, match="unknown device"):
            NoiseConfig(device="quito")

    def test_bad_mode_rejected(self):
        with pytest.raises(SolverError, match="mode"):
            NoiseConfig(device="fez", mode="exact")

    def test_rates_must_be_probabilities(self):
        with pytest.raises(SolverError, match="two_qubit_error"):
            NoiseConfig(two_qubit_error=1.5)

    def test_empty_config_rejected(self):
        with pytest.raises(SolverError, match="device profile name or"):
            NoiseConfig()

    def test_profile_resolution_overrides_device_rates(self):
        profile = NoiseConfig(device="fez", two_qubit_error=0.05).profile()
        assert profile.two_qubit_error == 0.05
        assert profile.single_qubit_error == IBM_FEZ.single_qubit_error

    def test_readout_toggle_wins_over_explicit_rate(self):
        profile = NoiseConfig(device="osaka", readout_error=0.3, readout=False).profile()
        assert profile.readout_error == 0.0

    def test_custom_profile_without_device(self):
        profile = NoiseConfig(two_qubit_error=0.01).profile()
        assert profile.name == "custom"
        assert profile.single_qubit_error == 0.0
        assert profile.two_qubit_error == 0.01

    def test_as_noise_config_spellings(self):
        from_name = as_noise_config("FEZ")
        assert from_name == NoiseConfig(device="FEZ")
        assert as_noise_config(None) is None
        config = NoiseConfig(device="fez")
        assert as_noise_config(config) is config
        assert as_noise_config(config.to_dict()) == config
        with pytest.raises(SolverError, match="noise must be"):
            as_noise_config(3)

    def test_build_model_is_seed_deterministic(self):
        config = NoiseConfig(device="osaka", trajectories=4)
        circuit = bell_circuit()
        first = config.build_model(seed=7).sample(circuit, shots=64, trajectories=4)
        second = config.build_model(seed=7).sample(circuit, shots=64, trajectories=4)
        assert first.counts == second.counts

    def test_noise_seed_sequence_is_stable_and_distinct(self):
        derived = noise_seed_sequence(11)
        again = noise_seed_sequence(11)
        assert derived.entropy == again.entropy
        assert derived.spawn_key == again.spawn_key
        # The reserved child never collides with the raw engine seed stream.
        raw = np.random.default_rng(11).integers(1 << 30, size=4)
        noisy = np.random.default_rng(noise_seed_sequence(11)).integers(1 << 30, size=4)
        assert not np.array_equal(raw, noisy)


# ---------------------------------------------------------------------------
# Threading through solver configs, EngineOptions and the facade
# ---------------------------------------------------------------------------


class TestNoiseThreading:
    def test_solver_config_coerces_device_name_and_dict(self):
        assert ChocoQConfig(noise="fez").noise == NoiseConfig(device="fez")
        assert HEAConfig(noise={"device": "osaka"}).noise == NoiseConfig(device="osaka")
        assert ChocoQConfig().noise is None

    def test_solver_config_round_trip_with_noise(self):
        config = ChocoQConfig(num_layers=2, noise=NoiseConfig(device="fez", trajectories=4))
        data = config.to_dict()
        json.dumps(data)
        assert data["noise"]["device"] == "fez"
        assert ChocoQConfig.from_dict(data) == config

    def test_engine_options_normalise_and_reject_conflicts(self):
        options = EngineOptions(noise="fez")
        assert options.noise == NoiseConfig(device="fez")
        with pytest.raises(SolverError, match="not both"):
            EngineOptions(noise="fez", noise_model=NoiseModel(IBM_FEZ))

    def test_with_noise_never_overrides_caller_settings(self):
        config_noise = NoiseConfig(device="osaka")
        plain = EngineOptions(shots=32)
        assert plain.with_noise(config_noise).noise == config_noise
        assert plain.with_noise(None) is plain
        prebuilt = EngineOptions(noise_model=NoiseModel(IBM_FEZ))
        assert prebuilt.with_noise(config_noise) is prebuilt

    def test_facade_noise_runs_and_annotates_metadata(self, paper_example_problem):
        result = repro.solve(
            paper_example_problem, solver="choco-q", num_layers=1, noise="fez",
            optimizer=FAST_OPTIMIZER, options=EngineOptions(shots=64, seed=3),
        )
        assert result.outcomes.shots == 64
        assert result.exact_distribution is None
        assert result.metadata["noise"]["device"] == "fez"

    def test_facade_noise_conflicts_with_options_noise(self, paper_example_problem):
        # An explicit noise= must never be silently out-prioritised by an
        # options-level model.
        with pytest.raises(SolverError, match="not both"):
            repro.solve(
                paper_example_problem, solver="hea", noise="osaka",
                options=EngineOptions(noise_model=NoiseModel(IBM_FEZ)),
            )
        with pytest.raises(SolverError, match="not both"):
            repro.solve(
                paper_example_problem, solver="hea", noise="osaka",
                options=EngineOptions(noise="fez"),
            )

    def test_facade_noise_rejected_with_solver_instance(self, paper_example_problem):
        from repro.solvers import ChocoQSolver

        solver = ChocoQSolver(config=ChocoQConfig(num_layers=1))
        with pytest.raises(SolverError, match="configure it directly"):
            repro.solve(paper_example_problem, solver=solver, noise="fez")

    def test_noisy_run_is_seed_deterministic(self, paper_example_problem):
        def run():
            return repro.solve(
                paper_example_problem, solver="penalty-qaoa", num_layers=1,
                noise={"device": "osaka", "trajectories": 2},
                optimizer=FAST_OPTIMIZER, options=EngineOptions(shots=64, seed=9),
            )

        assert run().outcomes.counts == run().outcomes.counts

    def test_analytical_mode_runs_deterministically(self, paper_example_problem):
        noise = NoiseConfig(device="osaka", mode="analytical")

        def run():
            return repro.solve(
                paper_example_problem, solver="hea", num_layers=1, noise=noise,
                optimizer=FAST_OPTIMIZER, options=EngineOptions(shots=128, seed=5),
            )

        first, second = run(), run()
        assert first.outcomes.shots == 128
        assert first.outcomes.counts == second.outcomes.counts
        assert first.metadata["noise"]["mode"] == "analytical"

    def test_elimination_pipeline_conserves_shots_under_noise(self, paper_example_problem):
        result = repro.solve(
            paper_example_problem, solver="choco-q",
            config={"num_layers": 1, "num_eliminated_variables": 1},
            noise={"device": "fez", "trajectories": 2},
            optimizer=FAST_OPTIMIZER, options=EngineOptions(shots=33, seed=2),
        )
        assert result.outcomes.shots == 33
        # The merged elimination result carries the same annotation every
        # single-instance noisy run does.
        assert result.metadata["noise"]["device"] == "fez"


# ---------------------------------------------------------------------------
# RunSpec and the batch runner
# ---------------------------------------------------------------------------


def tiny_problem():
    from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective

    return ConstrainedBinaryProblem(
        num_variables=3,
        objective=Objective.from_linear([2.0, 1.0, 3.0]),
        constraints=[LinearConstraint((1.0, 1.0, 1.0), 1.0)],
        sense="min",
        name="tiny-noise-bench",
    )


@pytest.fixture
def tiny_benchmark():
    register_benchmark("tiny-noise-bench", tiny_problem, replace=True)
    yield "tiny-noise-bench"
    unregister_benchmark("tiny-noise-bench")


def noisy_plan(benchmark: str) -> ExperimentPlan:
    return ExperimentPlan.grid(
        solvers=("choco-q", "penalty-qaoa"),
        benchmarks=[benchmark],
        seeds=(0, 1),
        configs={name: {"num_layers": 1} for name in ("choco-q", "penalty-qaoa")},
        shots=64,
        max_iterations=6,
        noise={"device": "fez", "trajectories": 4},
        name="tiny-noisy-grid",
    )


def deterministic_metrics(record) -> dict:
    return {key: value for key, value in record.metrics.items() if key != "latency_s"}


class TestNoisyRunSpecs:
    def test_noise_separates_content_hash(self):
        ideal = RunSpec(solver="hea", benchmark="F1", seed=1)
        noisy = RunSpec(solver="hea", benchmark="F1", seed=1, noise={"device": "fez"})
        assert ideal.content_hash() != noisy.content_hash()
        # Distinct scenarios hash apart too.
        other = RunSpec(solver="hea", benchmark="F1", seed=1, noise={"device": "osaka"})
        assert noisy.content_hash() != other.content_hash()

    def test_noiseless_hash_unchanged_by_noise_field_introduction(self):
        # The pre-noise payload must hash identically, so JSONL caches written
        # before the field existed stay valid.  The same convention covers
        # every later optional field (optimization_level): None is dropped.
        spec = RunSpec(solver="hea", benchmark="F1", seed=1)
        payload = {
            key: value
            for key, value in spec.to_dict().items()
            if key in plan_module._HASHED_FIELDS
            and key not in ("noise", "optimization_level")
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        import hashlib

        assert spec.content_hash() == hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def test_equivalent_noise_spellings_hash_identically(self):
        # Partial dict, mixed-case device name, and full canonical dict are
        # one scenario — one spec, one content hash, one cache entry.
        partial = RunSpec(solver="hea", benchmark="F1", seed=1, noise={"device": "Fez"})
        named = RunSpec(solver="hea", benchmark="F1", seed=1, noise="fez")
        full = RunSpec(
            solver="hea", benchmark="F1", seed=1, noise=NoiseConfig(device="fez").to_dict()
        )
        assert partial == named == full
        assert partial.content_hash() == named.content_hash() == full.content_hash()

    def test_noisy_spec_round_trips(self):
        spec = RunSpec(
            solver="choco-q", benchmark="F1", config={"num_layers": 1},
            seed=3, shots=128, noise={"device": "fez", "trajectories": 8},
        )
        data = spec.to_dict()
        json.dumps(data)
        assert RunSpec.from_dict(data) == spec

    def test_grid_noise_validates_and_stamps_every_spec(self, tiny_benchmark):
        plan = noisy_plan(tiny_benchmark)
        assert all(spec.noise["device"] == "fez" for spec in plan.specs)
        with pytest.raises(SolverError, match="unknown device"):
            ExperimentPlan.grid(["hea"], [tiny_benchmark], noise="quito")

    def test_noisy_parallel_matches_sequential_bit_for_bit(self, tiny_benchmark):
        plan = noisy_plan(tiny_benchmark)
        sequential = run_plan(plan)
        parallel = run_plan(plan, max_workers=2)
        assert [deterministic_metrics(r) for r in sequential] == [
            deterministic_metrics(r) for r in parallel
        ]
        assert [r.result["outcomes"]["counts"] for r in sequential] == [
            r.result["outcomes"]["counts"] for r in parallel
        ]

    def test_cached_noisy_plan_executes_zero_specs(self, tiny_benchmark, tmp_path, monkeypatch):
        plan = noisy_plan(tiny_benchmark)
        path = tmp_path / "noisy.jsonl"
        first = run_plan(plan, jsonl_path=path)
        assert all(not record.cached for record in first)

        def forbidden(spec):  # pragma: no cover - failing is the assertion
            raise AssertionError(f"cached noisy spec was re-executed: {spec}")

        monkeypatch.setattr(plan_module, "execute_spec", forbidden)
        second = run_plan(plan, jsonl_path=path)
        assert all(record.cached for record in second)
        assert [deterministic_metrics(r) for r in first] == [
            deterministic_metrics(r) for r in second
        ]

    def test_noisy_record_solver_result_reconstruction(self, tiny_benchmark):
        plan = ExperimentPlan(
            specs=[RunSpec(
                solver="choco-q", benchmark=tiny_benchmark,
                config={"num_layers": 1}, seed=0, shots=64, max_iterations=6,
                noise={"device": "fez", "trajectories": 2},
            )]
        )
        record = run_plan(plan)[0]
        result = record.solver_result()
        assert result.outcomes.shots == 64
        assert result.metadata["noise"]["device"] == "fez"


# ---------------------------------------------------------------------------
# Shot conservation and the circuit cloning API
# ---------------------------------------------------------------------------


class TestShotConservation:
    @pytest.mark.parametrize("shots", [1, 2, 5, 15, 16, 17, 100, 1000])
    def test_sample_delivers_exactly_n_shots(self, shots):
        # Regression: 1000 shots / 16 trajectories used to deliver 992.
        model = NoiseModel(IBM_FEZ, seed=11)
        result = model.sample(bell_circuit(), shots=shots, trajectories=16)
        assert result.shots == shots
        assert sum(result.counts.values()) == shots

    def test_remainder_spread_over_leading_trajectories(self):
        model = NoiseModel(IBM_OSAKA, seed=5)
        result = model.sample(bell_circuit(), shots=10, trajectories=3)
        assert result.shots == 10

    def test_invalid_trajectories_rejected(self):
        from repro.exceptions import NoiseModelError

        with pytest.raises(NoiseModelError, match="trajectories"):
            NoiseModel(IBM_FEZ).sample(bell_circuit(), shots=8, trajectories=0)

    def test_analytical_sampling_conserves_shots(self):
        model = NoiseModel(IBM_OSAKA, seed=3)
        result = model.sample_analytical(bell_circuit(), shots=257)
        assert result.shots == 257
        assert all(len(key) == 2 for key in result.counts)


class TestAppendInstruction:
    def test_appends_gates_and_directives(self):
        source = QuantumCircuit(2)
        source.h(0).cx(0, 1).barrier().measure_all()
        clone = QuantumCircuit(2)
        for instruction in source:
            clone.append_instruction(instruction)
        assert [inst.name for inst in clone] == [inst.name for inst in source]

    def test_validates_register_bounds(self):
        big = QuantumCircuit(3)
        big.x(2)
        small = QuantumCircuit(2)
        with pytest.raises(CircuitError, match="out of range"):
            small.append_instruction(big[0])

    def test_extend_carries_directives(self):
        source = QuantumCircuit(2)
        source.h(0).barrier()
        target = QuantumCircuit(2)
        target.extend(source)
        assert [inst.name for inst in target] == ["h", "barrier"]

    def test_trajectory_cloning_survives_directives(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().cx(0, 1)
        model = NoiseModel(IBM_OSAKA, seed=2)
        noisy = model._sample_noisy_circuit(circuit)
        assert "barrier" in [inst.name for inst in noisy]
        gate = Instruction(standard_gate("x"), (0,))
        assert QuantumCircuit(1).append_instruction(gate).size() == 1
