"""Tests for the application domains (FLP, GCP, KPP) and the benchmark suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProblemError
from repro.problems.benchmark_suite import (
    SCALE_NAMES,
    benchmark_specs,
    get_spec,
    iter_benchmark_cases,
    make_benchmark,
)
from repro.problems.facility_location import (
    FacilityLocationInstance,
    facility_location_problem,
    random_facility_location,
    variable_layout as flp_layout,
)
from repro.problems.graph_coloring import (
    coloring_from_assignment,
    graph_coloring_problem,
    is_proper_coloring,
    random_graph_coloring,
)
from repro.problems.k_partition import (
    cut_weight,
    k_partition_problem,
    partition_from_assignment,
    partition_graph,
    random_k_partition,
)


class TestFacilityLocation:
    def test_instance_dimensions(self):
        instance = random_facility_location(2, 1, seed=0)
        assert instance.num_variables == 6
        assert instance.num_constraints == 3

    def test_problem_shape_matches_instance(self):
        instance = random_facility_location(2, 2, seed=1)
        problem = facility_location_problem(instance)
        assert problem.num_variables == instance.num_variables
        assert problem.num_constraints == instance.num_constraints
        assert problem.sense == "min"

    def test_optimum_serves_every_demand_from_open_facility(self):
        instance = random_facility_location(2, 2, seed=2)
        problem = facility_location_problem(instance)
        assignment, _ = problem.brute_force_optimum()
        layout = flp_layout(2, 2)
        for demand in range(2):
            served_by = [
                facility
                for facility in range(2)
                if assignment[layout[f"x{demand}_{facility}"]] == 1
            ]
            assert len(served_by) == 1
            assert assignment[layout[f"y{served_by[0]}"]] == 1

    def test_optimum_cost_matches_direct_computation(self):
        instance = random_facility_location(2, 1, seed=3)
        problem = facility_location_problem(instance)
        _, value = problem.brute_force_optimum()
        # The optimum must equal the cheapest (opening + service) choice of a
        # single facility serving the single demand point.
        direct = min(
            instance.opening_costs[j] + instance.service_costs[0][j] for j in range(2)
        )
        assert value == pytest.approx(direct)

    def test_generator_validation(self):
        with pytest.raises(ProblemError):
            random_facility_location(0, 1)

    def test_deterministic_given_seed(self):
        a = random_facility_location(2, 2, seed=5)
        b = random_facility_location(2, 2, seed=5)
        assert a == b


class TestGraphColoring:
    def test_two_color_instances_are_bipartite(self):
        instance = random_graph_coloring(4, 3, num_colors=2, seed=1)
        problem = graph_coloring_problem(instance)
        # A feasible optimum must exist because the generator guarantees
        # 2-colorability.
        assignment, _ = problem.brute_force_optimum()
        coloring = coloring_from_assignment(instance, assignment)
        assert is_proper_coloring(instance, coloring)

    def test_instance_dimensions(self):
        instance = random_graph_coloring(3, 1, num_colors=2, seed=0)
        assert instance.num_variables == 8
        assert instance.num_constraints == 5

    def test_edge_count_respected(self):
        instance = random_graph_coloring(5, 4, num_colors=2, seed=3)
        assert len(instance.edges) == 4

    def test_too_many_edges_rejected(self):
        with pytest.raises(ProblemError):
            random_graph_coloring(3, 10, num_colors=2)

    def test_one_color_rejected(self):
        with pytest.raises(ProblemError):
            random_graph_coloring(3, 1, num_colors=1)

    def test_three_color_generation(self):
        instance = random_graph_coloring(4, 5, num_colors=3, seed=2)
        problem = graph_coloring_problem(instance)
        assignment, _ = problem.brute_force_optimum()
        coloring = coloring_from_assignment(instance, assignment)
        assert is_proper_coloring(instance, coloring)

    def test_objective_prefers_cheap_colors(self):
        instance = random_graph_coloring(3, 1, num_colors=2, seed=4)
        problem = graph_coloring_problem(instance)
        assignment, value = problem.brute_force_optimum()
        coloring = coloring_from_assignment(instance, assignment)
        expected = sum(instance.color_costs[c] for c in coloring.values())
        assert value == pytest.approx(expected)


class TestKPartition:
    def test_dimensions_and_balance(self):
        instance = random_k_partition(4, 3, num_blocks=2, seed=0)
        problem = k_partition_problem(instance)
        assert problem.num_variables == 8
        assert problem.num_constraints == 6
        assignment, _ = problem.brute_force_optimum()
        partition = partition_from_assignment(instance, assignment)
        sizes = [sum(1 for b in partition.values() if b == block) for block in range(2)]
        assert sizes == [2, 2]

    def test_constraints_are_summation_format(self):
        instance = random_k_partition(4, 3, num_blocks=2, seed=1)
        problem = k_partition_problem(instance)
        assert all(constraint.is_summation_format() for constraint in problem.constraints)

    def test_objective_counts_within_block_weight(self):
        instance = random_k_partition(4, 4, num_blocks=2, seed=2)
        problem = k_partition_problem(instance)
        assignment, value = problem.brute_force_optimum()
        partition = partition_from_assignment(instance, assignment)
        total_weight = sum(instance.weights)
        assert value == pytest.approx(total_weight - cut_weight(instance, partition))

    def test_indivisible_sizes_rejected(self):
        with pytest.raises(ProblemError):
            random_k_partition(5, 3, num_blocks=2, seed=0)

    def test_partition_graph_weights(self):
        instance = random_k_partition(4, 3, num_blocks=2, seed=3)
        graph = partition_graph(instance)
        assert graph.number_of_edges() == 3
        assert all("weight" in data for _, _, data in graph.edges(data=True))


class TestBenchmarkSuite:
    def test_twelve_scales(self):
        assert len(benchmark_specs()) == 12
        assert set(SCALE_NAMES) == {
            "F1", "F2", "F3", "F4", "G1", "G2", "G3", "G4", "K1", "K2", "K3", "K4",
        }

    def test_unknown_scale_rejected(self):
        with pytest.raises(ProblemError):
            get_spec("Z9")

    @pytest.mark.parametrize("name", SCALE_NAMES)
    def test_every_scale_is_feasible_and_bounded(self, name):
        problem = make_benchmark(name)
        assert problem.num_variables <= 16
        matrix, rhs = problem.constraint_matrix()
        from repro.core.feasibility import find_feasible_assignment

        assert problem.is_feasible(find_feasible_assignment(matrix, rhs))

    def test_scales_grow_within_domain(self):
        sizes = [make_benchmark(name).num_variables for name in ("F1", "F2", "F3")]
        assert sizes == sorted(sizes)

    def test_cases_are_reproducible(self):
        a = make_benchmark("G2", case_index=1)
        b = make_benchmark("G2", case_index=1)
        assert a.constraint_matrix()[0].tolist() == b.constraint_matrix()[0].tolist()
        assert a.objective.terms == b.objective.terms

    def test_distinct_cases_differ(self):
        cases = list(iter_benchmark_cases("F2", 3))
        assert len({str(sorted(case.objective.terms.items())) for case in cases}) >= 2


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 200))
def test_property_flp_optimum_opens_used_facilities(seed):
    """In any optimal FLP solution, a facility serving a demand is open."""
    instance = random_facility_location(2, 1, seed=seed)
    problem = facility_location_problem(instance)
    assignment, _ = problem.brute_force_optimum()
    layout = flp_layout(2, 1)
    for facility in range(2):
        if assignment[layout[f"x0_{facility}"]] == 1:
            assert assignment[layout[f"y{facility}"]] == 1


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 200))
def test_property_kpp_blocks_balanced(seed):
    """Every feasible KPP assignment has perfectly balanced blocks."""
    instance = random_k_partition(4, 3, num_blocks=2, seed=seed)
    problem = k_partition_problem(instance)
    assignment, _ = problem.brute_force_optimum()
    partition = partition_from_assignment(instance, assignment)
    sizes = [sum(1 for b in partition.values() if b == block) for block in range(2)]
    assert sizes == [instance.block_size] * 2
