"""Shared problem and solver factories for the test suite.

These are the single home for the small instances and seeded fast-optimizer
solvers that used to be duplicated across ``test_subspace_backend.py`` and
``test_solvers_baselines.py``.  They live in their own module (not
``conftest.py``) so test files can import them by name — the repo has two
conftest files (``tests/`` and ``benchmarks/``), and a bare ``from conftest
import ...`` resolves to whichever was imported first in a whole-repo run.
``conftest.py`` wraps each factory in a fixture for tests that prefer
injection.
"""

from __future__ import annotations

from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.solvers.chocoq import ChocoQConfig, ChocoQSolver
from repro.solvers.cyclic_qaoa import CyclicQAOASolver
from repro.solvers.optimizer import CobylaOptimizer
from repro.solvers.variational import EngineOptions


def make_one_hot_problem(
    weights=(2.0, 1.0, 3.0),
    rhs: float = 1.0,
    sense: str = "min",
    name: str = "one-hot",
) -> ConstrainedBinaryProblem:
    """A linear-objective problem with a single one-hot summation chain.

    ``min/max sum_i w_i x_i`` subject to ``sum_i x_i = rhs`` — the smallest
    family the cyclic driver encodes exactly, shared by the baseline,
    backend-equivalence and hop-regression tests.
    """
    weights = list(weights)
    return ConstrainedBinaryProblem(
        num_variables=len(weights),
        objective=Objective.from_linear(weights),
        constraints=[LinearConstraint(tuple(1.0 for _ in weights), rhs)],
        sense=sense,
        name=name,
    )


def make_chocoq_solver(
    backend: str = "dense",
    seed: int = 9,
    shots: int = 1024,
    max_iterations: int = 40,
    **config_kwargs,
) -> ChocoQSolver:
    """A seeded, fast-optimizer ChocoQSolver for one test run."""
    return ChocoQSolver(
        config=ChocoQConfig(backend=backend, **config_kwargs),
        optimizer=CobylaOptimizer(max_iterations=max_iterations),
        options=EngineOptions(shots=shots, seed=seed),
    )


def make_cyclic_solver(
    backend: str = "dense",
    seed: int = 9,
    shots: int = 1024,
    max_iterations: int = 40,
    num_layers: int = 2,
    **solver_kwargs,
) -> CyclicQAOASolver:
    """A seeded, fast-optimizer CyclicQAOASolver for one test run."""
    return CyclicQAOASolver(
        num_layers=num_layers,
        optimizer=CobylaOptimizer(max_iterations=max_iterations),
        options=EngineOptions(shots=shots, seed=seed),
        backend=backend,
        **solver_kwargs,
    )
