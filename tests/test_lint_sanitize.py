"""The event-loop stall sanitizer (``repro.lint.sanitize``).

Proves the guard catches a deliberately seeded stall, stays silent over
healthy async code, and captures unhandled task exceptions — including ones
routed through :func:`repro.service.server.surface_task_exception`, the
done-callback the concurrency lint rule made the service attach.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.lint.sanitize import (
    DEFAULT_THRESHOLD,
    EventLoopStallError,
    LoopStallGuard,
    StallEvent,
    loop_stall_guard,
)
from repro.service.server import surface_task_exception


class TestSeededStall:
    def test_synthetic_stall_is_caught(self):
        async def stall_the_loop():
            # The seeded bug: synchronous sleep on the loop thread.
            time.sleep(0.12)

        with pytest.raises(EventLoopStallError) as excinfo:
            with loop_stall_guard(threshold=0.05):
                asyncio.run(stall_the_loop())
        assert "1 stall(s)" in str(excinfo.value)

    def test_stall_event_records_duration_and_handle(self):
        async def stall_the_loop():
            time.sleep(0.12)

        with loop_stall_guard(threshold=0.05, check=False) as guard:
            asyncio.run(stall_the_loop())
        assert len(guard.stalls) == 1
        event = guard.stalls[0]
        assert isinstance(event, StallEvent)
        assert event.seconds >= 0.1
        assert event.handle  # the offending callback is named in the report
        with pytest.raises(EventLoopStallError):
            guard.check()

    def test_stall_below_threshold_passes(self):
        async def brief_blip():
            time.sleep(0.02)

        with loop_stall_guard(threshold=0.3) as guard:
            asyncio.run(brief_blip())
        assert guard.stalls == []


class TestCleanLoop:
    def test_healthy_async_code_passes(self):
        async def healthy():
            await asyncio.gather(*(asyncio.sleep(0) for _ in range(10)))
            return 42

        with loop_stall_guard(threshold=0.05) as guard:
            assert asyncio.run(healthy()) == 42
        assert guard.stalls == []
        assert guard.unhandled == []
        assert guard.loops_guarded >= 1

    def test_guarded_loops_run_in_debug_mode(self):
        seen = {}

        async def introspect():
            loop = asyncio.get_running_loop()
            seen["debug"] = loop.get_debug()
            seen["slow"] = loop.slow_callback_duration

        with loop_stall_guard(threshold=0.123, check=False):
            asyncio.run(introspect())
        assert seen["debug"] is True
        assert seen["slow"] == pytest.approx(0.123)

    def test_policy_is_restored_after_the_block(self):
        before = asyncio.get_event_loop_policy()
        with loop_stall_guard(threshold=0.05):
            assert asyncio.get_event_loop_policy() is not before
        assert asyncio.get_event_loop_policy() is before

    def test_executor_hop_does_not_stall_the_loop(self):
        async def hop():
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, time.sleep, 0.12)

        # The same 0.12s sleep that trips the seeded-stall test is invisible
        # when it runs where it belongs: on an executor thread.
        with loop_stall_guard(threshold=0.05) as guard:
            asyncio.run(hop())
        assert guard.stalls == []


class TestUnhandledExceptions:
    def test_surfaced_task_exception_is_captured(self):
        async def scenario():
            async def boom():
                raise ValueError("seeded failure")

            task = asyncio.get_running_loop().create_task(boom())
            task.add_done_callback(surface_task_exception)
            await asyncio.sleep(0.01)

        with loop_stall_guard(threshold=5.0, check=False) as guard:
            asyncio.run(scenario())
        assert len(guard.unhandled) == 1
        assert "seeded failure" in guard.unhandled[0]
        with pytest.raises(EventLoopStallError) as excinfo:
            guard.check()
        assert "unhandled" in str(excinfo.value)

    def test_awaited_task_without_callback_is_not_captured(self):
        async def scenario():
            async def boom():
                raise ValueError("handled failure")

            task = asyncio.get_running_loop().create_task(boom())
            try:
                await task
            except ValueError:
                pass

        # The awaiter consumes the exception; with no surfacing callback
        # attached (awaited tasks do not need one) the guard stays clean.
        with loop_stall_guard(threshold=5.0) as guard:
            asyncio.run(scenario())
        assert guard.unhandled == []

    def test_surfacing_is_unconditional_on_failure(self):
        async def scenario():
            async def boom():
                raise ValueError("reported anyway")

            task = asyncio.get_running_loop().create_task(boom())
            task.add_done_callback(surface_task_exception)
            try:
                await task
            except ValueError:
                pass

        # A done-callback cannot know whether some awaiter also consumed the
        # exception, so attaching one means "always report failures" — which
        # is why the service attaches it only to tasks nobody awaits.
        with loop_stall_guard(threshold=5.0, check=False) as guard:
            asyncio.run(scenario())
        assert len(guard.unhandled) == 1

    def test_cancelled_task_is_not_an_error(self):
        async def scenario():
            task = asyncio.get_running_loop().create_task(asyncio.sleep(30))
            task.add_done_callback(surface_task_exception)
            task.cancel()
            await asyncio.sleep(0.01)

        with loop_stall_guard(threshold=5.0) as guard:
            asyncio.run(scenario())
        assert guard.unhandled == []


class TestGuardMechanics:
    def test_default_threshold_is_sane(self):
        guard = LoopStallGuard()
        assert guard.threshold == DEFAULT_THRESHOLD
        assert 0.0 < DEFAULT_THRESHOLD < 1.0

    def test_report_lists_every_event(self):
        guard = LoopStallGuard(threshold=0.1)
        guard.stalls.append(StallEvent(handle="<Handle demo>", seconds=0.4))
        guard.unhandled.append("background task 'x' failed")
        report = guard.report()
        assert "<Handle demo>" in report
        assert "background task 'x' failed" in report
        assert "1 stall(s)" in report

    def test_check_is_quiet_when_clean(self):
        LoopStallGuard().check()
