"""The whole-program lint layer: call graph + the three project rules.

Covers the :class:`~repro.lint.project.ProjectGraph` machinery directly
(alias resolution through re-exports, method dispatch approximation, cycle
handling, executor-hop semantics) and each project rule through good/bad/
suppressed in-memory fixtures via
:func:`~repro.lint.engine.lint_project_sources` — the same path ``make
lint`` exercises over the real tree.
"""

from __future__ import annotations

import os

from repro.lint import lint_project_sources
from repro.lint.engine import lint_paths, parse_module
from repro.lint.project import ProjectGraph, is_project_path, module_id_for_path

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def build_graph(sources: dict[str, str]) -> ProjectGraph:
    modules = {path: parse_module(path, text) for path, text in sources.items()}
    return ProjectGraph.build(
        [m for p, m in modules.items() if is_project_path(p)],
        [m for p, m in modules.items() if not is_project_path(p)],
    )


def findings_for(sources: dict[str, str], rule: str):
    return [
        finding
        for finding in lint_project_sources(sources, select=[rule])
        if finding.rule == rule
    ]


class TestModuleIdentity:
    def test_src_paths_strip_the_src_prefix(self):
        assert module_id_for_path("src/repro/service/server.py") == (
            "repro.service.server"
        )

    def test_package_init_collapses_to_package_id(self):
        assert module_id_for_path("src/repro/service/__init__.py") == "repro.service"

    def test_non_src_trees_keep_their_prefix(self):
        assert module_id_for_path("benchmarks/harness.py") == "benchmarks.harness"

    def test_test_files_are_reference_only(self):
        assert not is_project_path("tests/test_service.py")
        assert not is_project_path("src/repro/conftest.py")
        assert is_project_path("src/repro/lint/engine.py")
        assert is_project_path("scripts/coverage_report.py")


class TestCallGraphResolution:
    def test_direct_call_edge(self):
        graph = build_graph(
            {
                "src/demo/mod.py": (
                    "def helper():\n    return 1\n\n"
                    "def caller():\n    return helper()\n"
                ),
            }
        )
        assert "demo.mod.helper" in set(graph.callees("demo.mod.caller"))

    def test_alias_resolution_through_package_reexport(self):
        graph = build_graph(
            {
                "src/demo/__init__.py": "from demo.core import helper\n",
                "src/demo/core.py": "def helper():\n    return 1\n",
                "src/demo/user.py": (
                    "from demo import helper\n\n"
                    "def caller():\n    return helper()\n"
                ),
            }
        )
        # The re-exported name resolves through the package __init__ to the
        # defining module's symbol.
        assert graph.resolve_symbol("demo.helper") == ("function", "demo.core.helper")
        assert "demo.core.helper" in set(graph.callees("demo.user.caller"))

    def test_method_dispatch_via_local_constructor(self):
        graph = build_graph(
            {
                "src/demo/mod.py": (
                    "class Worker:\n"
                    "    def run(self):\n        return 1\n\n"
                    "def caller():\n"
                    "    worker = Worker()\n"
                    "    return worker.run()\n"
                ),
            }
        )
        assert "demo.mod.Worker.run" in set(graph.callees("demo.mod.caller"))

    def test_method_dispatch_via_self_attribute_type(self):
        graph = build_graph(
            {
                "src/demo/store.py": (
                    "class Store:\n"
                    "    def put(self, record):\n        return record\n"
                ),
                "src/demo/service.py": (
                    "from demo.store import Store\n\n"
                    "class Service:\n"
                    "    def __init__(self):\n"
                    "        self.store = Store()\n"
                    "    def save(self, record):\n"
                    "        return self.store.put(record)\n"
                ),
            }
        )
        assert "demo.store.Store.put" in set(graph.callees("demo.service.Service.save"))

    def test_optional_attribute_type_through_ifexp(self):
        graph = build_graph(
            {
                "src/demo/mod.py": (
                    "class Sink:\n"
                    "    def append(self, row):\n        return row\n\n"
                    "class Store:\n"
                    "    def __init__(self, path):\n"
                    "        self.sink = Sink() if path else None\n"
                    "    def put(self, row):\n"
                    "        return self.sink.append(row)\n"
                ),
            }
        )
        assert "demo.mod.Sink.append" in set(graph.callees("demo.mod.Store.put"))

    def test_call_cycle_reachability_terminates(self):
        graph = build_graph(
            {
                "src/demo/mod.py": (
                    "def ping():\n    return pong()\n\n"
                    "def pong():\n    return ping()\n"
                ),
            }
        )
        reachable = graph.reachable_from(["demo.mod.ping"])
        assert {"demo.mod.ping", "demo.mod.pong"} <= reachable

    def test_inheritance_cycle_lookup_terminates(self):
        graph = build_graph(
            {
                "src/demo/mod.py": (
                    "class A(B):\n"
                    "    def only_on_a(self):\n        return 1\n\n"
                    "class B(A):\n"
                    "    def only_on_b(self):\n        return 2\n"
                ),
            }
        )
        # A pathological A<->B inheritance cycle must neither loop nor crash.
        assert graph.lookup_method("demo.mod.A", "only_on_b") == "demo.mod.B.only_on_b"
        assert graph.lookup_method("demo.mod.A", "missing") is None

    def test_executor_hop_is_an_entry_not_an_edge(self):
        graph = build_graph(
            {
                "src/demo/mod.py": (
                    "import asyncio\n\n"
                    "def work():\n    return 1\n\n"
                    "async def run():\n"
                    "    loop = asyncio.get_running_loop()\n"
                    "    return await loop.run_in_executor(None, work)\n"
                ),
            }
        )
        assert "demo.mod.work" in graph.executor_entries
        assert "demo.mod.work" not in set(graph.callees("demo.mod.run"))

    def test_loop_callback_is_a_call_edge(self):
        graph = build_graph(
            {
                "src/demo/mod.py": (
                    "import asyncio\n\n"
                    "def flush():\n    return 1\n\n"
                    "async def run():\n"
                    "    loop = asyncio.get_running_loop()\n"
                    "    loop.call_soon(flush)\n"
                ),
            }
        )
        assert "demo.mod.flush" in set(graph.callees("demo.mod.run"))
        assert "demo.mod.flush" not in graph.executor_entries


class TestConcurrencyRule:
    def test_direct_blocking_primitive_in_async_def(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import time\n\n"
                    "async def handler():\n"
                    "    time.sleep(1)\n"
                ),
            },
            "concurrency",
        )
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message
        assert findings[0].line == 4

    def test_blocking_reachable_through_sync_helper_chain(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import time\n\n"
                    "def inner():\n    time.sleep(1)\n\n"
                    "def outer():\n    inner()\n\n"
                    "async def handler():\n    outer()\n"
                ),
            },
            "concurrency",
        )
        assert len(findings) == 1
        assert "outer -> inner" in findings[0].message
        assert "time.sleep" in findings[0].message

    def test_executor_hop_breaks_the_chain(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import asyncio\nimport time\n\n"
                    "def slow():\n    time.sleep(1)\n\n"
                    "async def handler():\n"
                    "    loop = asyncio.get_running_loop()\n"
                    "    await loop.run_in_executor(None, slow)\n"
                ),
            },
            "concurrency",
        )
        assert findings == []

    def test_suppressed_blocking_call(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import time\n\n"
                    "async def handler():\n"
                    "    time.sleep(1)  # repro: ignore[concurrency] startup only\n"
                ),
            },
            "concurrency",
        )
        assert findings == []

    def test_fire_and_forget_task_flagged(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import asyncio\n\n"
                    "async def work():\n    return 1\n\n"
                    "async def spawner():\n"
                    "    asyncio.create_task(work())\n"
                ),
            },
            "concurrency",
        )
        assert len(findings) == 1
        assert "fire-and-forget" in findings[0].message

    def test_awaited_task_is_clean(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import asyncio\n\n"
                    "async def work():\n    return 1\n\n"
                    "async def spawner():\n"
                    "    task = asyncio.create_task(work())\n"
                    "    await task\n"
                ),
            },
            "concurrency",
        )
        assert findings == []

    def test_bookkeeping_only_done_callback_still_flagged(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import asyncio\n\n"
                    "async def work():\n    return 1\n\n"
                    "class Pool:\n"
                    "    def __init__(self):\n"
                    "        self.tasks = set()\n"
                    "    async def spawn(self):\n"
                    "        task = asyncio.create_task(work())\n"
                    "        self.tasks.add(task)\n"
                    "        task.add_done_callback(self.tasks.discard)\n"
                ),
            },
            "concurrency",
        )
        assert len(findings) == 1
        assert "fire-and-forget" in findings[0].message

    def test_surfacing_done_callback_is_clean(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import asyncio\n\n"
                    "async def work():\n    return 1\n\n"
                    "def surface(task):\n"
                    "    if not task.cancelled():\n"
                    "        task.exception()\n\n"
                    "async def spawner():\n"
                    "    task = asyncio.create_task(work())\n"
                    "    task.add_done_callback(surface)\n"
                ),
            },
            "concurrency",
        )
        assert findings == []

    def test_unobserved_task_factory_propagates_to_call_site(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import asyncio\n\n"
                    "async def work():\n    return 1\n\n"
                    "def spawn():\n"
                    "    return asyncio.create_task(work())\n\n"
                    "async def bad_caller():\n"
                    "    spawn()\n\n"
                    "async def good_caller():\n"
                    "    await spawn()\n"
                ),
            },
            "concurrency",
        )
        assert len(findings) == 1
        assert "bad_caller" in findings[0].message
        assert "spawn()" in findings[0].message

    def test_await_while_holding_sync_lock(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import asyncio\nimport threading\n\n"
                    "class Shared:\n"
                    "    def __init__(self):\n"
                    "        self.lock = threading.Lock()\n"
                    "    async def update(self):\n"
                    "        with self.lock:\n"
                    "            await asyncio.sleep(0)\n"
                ),
            },
            "concurrency",
        )
        assert len(findings) == 1
        assert "holding sync lock" in findings[0].message

    def test_slow_lock_acquire_in_async_flagged(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import threading\nimport time\n\n"
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self.lock = threading.Lock()\n"
                    "    def put(self, row):\n"
                    "        with self.lock:\n"
                    "            time.sleep(1)\n"
                    "    async def get(self):\n"
                    "        with self.lock:\n"
                    "            return 1\n"
                ),
            },
            "concurrency",
        )
        assert any(
            "holds this lock across blocking work" in finding.message
            for finding in findings
        )

    def test_fast_lock_acquire_in_async_is_clean(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import threading\n\n"
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self.lock = threading.Lock()\n"
                    "        self.rows = {}\n"
                    "    def put(self, key, row):\n"
                    "        with self.lock:\n"
                    "            self.rows[key] = row\n"
                    "    async def get(self, key):\n"
                    "        with self.lock:\n"
                    "            return self.rows.get(key)\n"
                ),
            },
            "concurrency",
        )
        assert findings == []

    def test_unguarded_cross_thread_write_flagged(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import asyncio\n\n"
                    "class Counter:\n"
                    "    def __init__(self):\n"
                    "        self.total = 0\n"
                    "    def bump(self):\n"
                    "        self.total += 1\n"
                    "    async def read(self):\n"
                    "        loop = asyncio.get_running_loop()\n"
                    "        await loop.run_in_executor(None, self.bump)\n"
                    "        return self.total\n"
                ),
            },
            "concurrency",
        )
        assert len(findings) == 1
        assert "Counter.total" in findings[0].message
        assert "executor-side" in findings[0].message

    def test_lock_guarded_cross_thread_write_is_clean(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import asyncio\nimport threading\n\n"
                    "class Counter:\n"
                    "    def __init__(self):\n"
                    "        self.total = 0\n"
                    "        self.lock = threading.Lock()\n"
                    "    def bump(self):\n"
                    "        with self.lock:\n"
                    "            self.total += 1\n"
                    "    async def read(self):\n"
                    "        loop = asyncio.get_running_loop()\n"
                    "        await loop.run_in_executor(None, self.bump)\n"
                    "        with self.lock:\n"
                    "            return self.total\n"
                ),
            },
            "concurrency",
        )
        assert findings == []


class TestInterproceduralDeterminismRule:
    def test_public_entry_tainted_through_private_helper(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import numpy as np\n\n"
                    "def _draw():\n"
                    "    return np.random.uniform()  # repro: ignore[determinism]\n\n"
                    "def api():\n"
                    "    return _draw()\n"
                ),
            },
            "ipdeterminism",
        )
        assert len(findings) == 1
        assert findings[0].line == 6  # the def line of the public entry
        assert "api" in findings[0].message
        assert "np.random.uniform" in findings[0].message

    def test_chain_spans_modules(self):
        findings = findings_for(
            {
                "src/demo/inner.py": (
                    "import numpy as np\n\n"
                    "def sample():\n"
                    "    return np.random.uniform()  # repro: ignore[determinism]\n"
                ),
                "src/demo/outer.py": (
                    "from demo.inner import sample\n\n"
                    "def api():\n"
                    "    return sample()\n"
                ),
            },
            "ipdeterminism",
        )
        assert any(
            "api" in finding.message and "sample" in finding.message
            for finding in findings
        )

    def test_seeded_generator_threaded_through_is_clean(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import numpy as np\n\n"
                    "def _draw(rng):\n"
                    "    return rng.uniform()\n\n"
                    "def api(rng):\n"
                    "    return _draw(rng)\n"
                ),
            },
            "ipdeterminism",
        )
        assert findings == []

    def test_direct_drawer_is_not_double_flagged(self):
        # The per-module determinism rule owns the draw line; ipdeterminism
        # only reports the propagation into entry points that do NOT draw.
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import numpy as np\n\n"
                    "def api():\n"
                    "    return np.random.uniform()\n"
                ),
            },
            "ipdeterminism",
        )
        assert findings == []

    def test_suppression_on_entry_point_def_line(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "import numpy as np\n\n"
                    "def _draw():\n"
                    "    return np.random.uniform()  # repro: ignore[determinism]\n\n"
                    "def api():  # repro: ignore[ipdeterminism] sanctioned entropy\n"
                    "    return _draw()\n"
                ),
            },
            "ipdeterminism",
        )
        assert findings == []


class TestDeadCodeRule:
    def test_unreferenced_private_function_flagged(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "def _orphan():\n    return 1\n\n"
                    "def api():\n    return 2\n"
                ),
            },
            "deadcode",
        )
        assert len(findings) == 1
        assert "_orphan" in findings[0].message
        assert findings[0].line == 1

    def test_referenced_private_function_is_clean(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "def _helper():\n    return 1\n\n"
                    "def api():\n    return _helper()\n"
                ),
            },
            "deadcode",
        )
        assert findings == []

    def test_public_and_dunder_names_exempt(self):
        findings = findings_for(
            {
                "src/demo/mod.py": (
                    "class Thing:\n"
                    "    def __enter__(self):\n        return self\n\n"
                    "def unreferenced_api():\n    return 1\n"
                ),
            },
            "deadcode",
        )
        assert findings == []

    def test_test_only_reference_keeps_a_private_alive(self):
        findings = findings_for(
            {
                "src/demo/mod.py": "def _poked_by_tests():\n    return 1\n",
                "tests/test_demo.py": (
                    "from demo.mod import _poked_by_tests\n\n"
                    "def test_it():\n    assert _poked_by_tests() == 1\n"
                ),
            },
            "deadcode",
        )
        assert findings == []

    def test_suppression_must_sit_on_the_def_line(self):
        flagged = findings_for(
            {
                "src/demo/mod.py": (
                    "import functools\n\n"
                    "@functools.cache  # repro: ignore[deadcode]\n"
                    "def _orphan():\n    return 1\n"
                ),
            },
            "deadcode",
        )
        silenced = findings_for(
            {
                "src/demo/mod.py": (
                    "import functools\n\n"
                    "@functools.cache\n"
                    "def _orphan():  # repro: ignore[deadcode] kept for PR 11\n"
                    "    return 1\n"
                ),
            },
            "deadcode",
        )
        # Suppressions are strictly line-scoped: the decorator-line comment
        # does not cover the def-line finding one line below it.
        assert len(flagged) == 1
        assert silenced == []


class TestProjectRuleOrchestration:
    def test_partial_path_scan_skips_project_rules(self, tmp_path):
        target = tmp_path / "src" / "demo"
        target.mkdir(parents=True)
        (target / "mod.py").write_text("def _orphan():\n    return 1\n")
        findings, _ = lint_paths(
            paths=[str(target / "mod.py")], root=str(tmp_path)
        )
        assert [f for f in findings if f.rule == "deadcode"] == []

    def test_explicit_select_forces_project_rules_on_partial_scan(self, tmp_path):
        target = tmp_path / "src" / "demo"
        target.mkdir(parents=True)
        (target / "mod.py").write_text("def _orphan():\n    return 1\n")
        findings, _ = lint_paths(
            paths=[str(target / "mod.py")],
            root=str(tmp_path),
            select=["deadcode"],
        )
        assert [f.rule for f in findings] == ["deadcode"]

    def test_full_scan_runs_project_rules(self, tmp_path):
        target = tmp_path / "src" / "demo"
        target.mkdir(parents=True)
        (target / "mod.py").write_text("def _orphan():\n    return 1\n")
        findings, _ = lint_paths(root=str(tmp_path))
        assert [f.rule for f in findings] == ["deadcode"]

    def test_jobs_parity_includes_project_rules(self, tmp_path):
        target = tmp_path / "src" / "demo"
        target.mkdir(parents=True)
        (target / "mod.py").write_text(
            "import numpy as np\n\n"
            "def _orphan():\n    return 1\n\n"
            "def api():\n    return np.random.uniform()\n"
        )
        serial, serial_count = lint_paths(root=str(tmp_path))
        parallel, parallel_count = lint_paths(root=str(tmp_path), jobs=2)
        assert serial == parallel
        assert serial_count == parallel_count
        assert {f.rule for f in serial} == {"deadcode", "determinism"}

    def test_whole_repo_project_rules_are_clean(self):
        findings, _ = lint_paths(
            root=REPO_ROOT,
            select=["concurrency", "ipdeterminism", "deadcode"],
        )
        assert findings == [], "\n".join(f.format() for f in findings)
