"""Tests for the unified experiment API (repro.run + repro.solve).

Covers the solver registry, the facade, config and SolverResult
serialization round-trips, the batch runner's parallel determinism and
JSONL resume behaviour, and the multistart initial-parameter picker.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.exceptions import PlanExecutionError, ProblemError, SolverError
from repro.run import (
    ExperimentPlan,
    RunRecord,
    RunSpec,
    available_benchmarks,
    available_solvers,
    get_solver_entry,
    make_solver,
    register_benchmark,
    register_solver,
    resolve_benchmark,
    run_plan,
    unregister_benchmark,
    unregister_solver,
)
from repro.run import plan as plan_module
from repro.solvers import (
    ChocoQConfig,
    ChocoQSolver,
    CobylaOptimizer,
    CyclicQAOAConfig,
    EngineOptions,
    HEAConfig,
    PenaltyQAOAConfig,
    SolverResult,
)

LINEUP = ("choco-q", "penalty-qaoa", "cyclic-qaoa", "hea")

FAST_OPTIMIZER = CobylaOptimizer(max_iterations=8)
FAST_OPTIONS = EngineOptions(shots=64, seed=7)


def tiny_problem() -> ConstrainedBinaryProblem:
    """3-variable one-hot instance, cheap enough for 12-spec grids."""
    return ConstrainedBinaryProblem(
        num_variables=3,
        objective=Objective.from_linear([2.0, 1.0, 3.0]),
        constraints=[LinearConstraint((1.0, 1.0, 1.0), 1.0)],
        sense="min",
        name="tiny-one-hot",
    )


@pytest.fixture
def tiny_benchmark():
    register_benchmark("tiny-one-hot", tiny_problem, replace=True)
    yield "tiny-one-hot"
    unregister_benchmark("tiny-one-hot")


def tiny_plan(benchmark: str, seeds=(0, 1, 2)) -> ExperimentPlan:
    """4 solvers x 3 seeds = 12 specs at throwaway scale."""
    return ExperimentPlan.grid(
        solvers=LINEUP,
        benchmarks=[benchmark],
        seeds=seeds,
        configs={name: {"num_layers": 1} for name in LINEUP},
        shots=64,
        max_iterations=6,
        name="tiny-grid",
    )


def deterministic_metrics(record: RunRecord) -> dict:
    """Record metrics minus the one wall-clock-dependent entry."""
    return {key: value for key, value in record.metrics.items() if key != "latency_s"}


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_all_four_solvers_registered(self):
        assert set(LINEUP) <= set(available_solvers())

    def test_unknown_solver_lists_available(self):
        with pytest.raises(SolverError, match="available"):
            get_solver_entry("no-such-solver")

    def test_duplicate_registration_rejected(self):
        entry = get_solver_entry("hea")
        with pytest.raises(SolverError, match="already registered"):
            register_solver("hea", entry.solver_cls, entry.config_cls)

    def test_register_and_replace_custom_solver(self):
        entry = get_solver_entry("choco-q")
        try:
            register_solver("custom-test", entry.solver_cls, entry.config_cls)
            assert "custom-test" in available_solvers()
            register_solver("custom-test", entry.solver_cls, entry.config_cls, replace=True)
        finally:
            unregister_solver("custom-test")
        assert "custom-test" not in available_solvers()

    def test_make_solver_merges_config_and_overrides(self):
        solver = make_solver(
            "choco-q", ChocoQConfig(num_layers=2), num_eliminated_variables=1
        )
        assert isinstance(solver, ChocoQSolver)
        assert solver.config.num_layers == 2
        assert solver.config.num_eliminated_variables == 1

    def test_make_solver_rejects_wrong_config_class(self):
        with pytest.raises(SolverError, match="expects"):
            make_solver("choco-q", HEAConfig())

    def test_make_solver_accepts_optimizer_name(self):
        solver = make_solver("hea", optimizer="spsa")
        assert solver.optimizer.name == "spsa"


# ---------------------------------------------------------------------------
# Benchmark-name resolution
# ---------------------------------------------------------------------------


class TestBenchmarkRegistry:
    def test_scales_always_available(self):
        names = available_benchmarks()
        assert "F1" in names and "K4" in names

    def test_registered_problem_resolves(self, tiny_benchmark):
        problem = resolve_benchmark(tiny_benchmark)
        assert problem.num_variables == 3
        assert tiny_benchmark in available_benchmarks()

    def test_cannot_shadow_builtin_scale(self):
        with pytest.raises(ProblemError, match="shadows"):
            register_benchmark("f1", tiny_problem)

    def test_scale_resolution_matches_make_benchmark(self):
        assert resolve_benchmark("F1").name == repro.make_benchmark("F1").name


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------


class TestSolveFacade:
    @pytest.mark.parametrize("name", LINEUP)
    def test_every_registered_solver_runs(self, name, paper_example_problem):
        result = repro.solve(
            paper_example_problem,
            solver=name,
            num_layers=1,
            optimizer=FAST_OPTIMIZER,
            options=FAST_OPTIONS,
        )
        assert result.solver_name == name
        assert result.outcomes.shots == 64
        assert result.metadata["num_layers"] == 1

    def test_benchmark_name_as_problem(self):
        result = repro.solve(
            "F1", solver="choco-q", num_layers=1,
            optimizer=FAST_OPTIMIZER, options=FAST_OPTIONS,
        )
        assert result.problem_name == repro.make_benchmark("F1").name

    def test_solver_instance_passthrough(self, paper_example_problem):
        solver = ChocoQSolver(
            config=ChocoQConfig(num_layers=1),
            optimizer=FAST_OPTIMIZER,
            options=FAST_OPTIONS,
        )
        result = repro.solve(paper_example_problem, solver=solver)
        assert result.solver_name == "choco-q"

    def test_solver_instance_rejects_extra_configuration(self, paper_example_problem):
        solver = ChocoQSolver(config=ChocoQConfig(num_layers=1))
        with pytest.raises(SolverError, match="configure it directly"):
            repro.solve(paper_example_problem, solver=solver, num_layers=2)

    def test_config_dict_accepted(self, paper_example_problem):
        result = repro.solve(
            paper_example_problem,
            solver="choco-q",
            config={"num_layers": 2},
            optimizer=FAST_OPTIMIZER,
            options=FAST_OPTIONS,
        )
        assert result.metadata["num_layers"] == 2

    def test_unknown_override_rejected(self, paper_example_problem):
        with pytest.raises(SolverError, match="unknown"):
            repro.solve(paper_example_problem, solver="hea", bogus_field=1)


# ---------------------------------------------------------------------------
# Config serialization
# ---------------------------------------------------------------------------


class TestConfigRoundTrip:
    @pytest.mark.parametrize("name", LINEUP)
    def test_default_config_round_trips(self, name):
        config_cls = get_solver_entry(name).config_cls
        config = config_cls()
        data = config.to_dict()
        json.dumps(data)  # must be JSON-serializable
        assert config_cls.from_dict(data) == config

    def test_non_default_round_trip(self):
        config = ChocoQConfig(num_layers=2, backend="subspace", subspace_limit=64)
        assert ChocoQConfig.from_dict(config.to_dict()) == config

    def test_unknown_key_rejected(self):
        with pytest.raises(SolverError, match="unknown"):
            PenaltyQAOAConfig.from_dict({"num_layers": 2, "typo_field": 1})

    def test_replace_validates(self):
        with pytest.raises(SolverError, match="unknown"):
            HEAConfig().replace(typo_field=1)

    @pytest.mark.parametrize(
        "config_cls",
        [ChocoQConfig, PenaltyQAOAConfig, CyclicQAOAConfig, HEAConfig],
    )
    def test_shared_layer_validation(self, config_cls):
        with pytest.raises(SolverError, match="num_layers"):
            config_cls(num_layers=0)

    def test_shared_backend_validation(self):
        with pytest.raises(SolverError, match="backend"):
            CyclicQAOAConfig(backend="sparse")
        with pytest.raises(SolverError, match="subspace_limit"):
            ChocoQConfig(backend="subspace", subspace_limit=0)

    @pytest.mark.parametrize("name", LINEUP)
    def test_kwargs_shim_matches_config(self, name):
        entry = get_solver_entry(name)
        via_kwargs = entry.solver_cls(num_layers=2)
        via_config = entry.solver_cls(config=entry.config_cls(num_layers=2))
        assert via_kwargs.config == via_config.config

    def test_kwargs_and_config_conflict(self):
        with pytest.raises(SolverError, match="not both"):
            ChocoQSolver(config=ChocoQConfig(), num_layers=2)

    @pytest.mark.parametrize("bad", [3, {"num_layers": 3}])
    def test_positional_non_config_fails_fast(self, bad):
        # The pre-redesign signature took num_layers positionally; an int or
        # dict sliding into the config slot must fail at construction, not
        # deep inside solve().
        with pytest.raises(SolverError, match="config must be"):
            ChocoQSolver(bad)


# ---------------------------------------------------------------------------
# SolverResult serialization
# ---------------------------------------------------------------------------


class TestSolverResultRoundTrip:
    @pytest.mark.parametrize("name", LINEUP)
    def test_round_trip_is_dict_fixed_point(self, name, paper_example_problem):
        result = repro.solve(
            paper_example_problem, solver=name, num_layers=1,
            optimizer=FAST_OPTIMIZER, options=FAST_OPTIONS,
        )
        data = result.to_dict()
        json.dumps(data)
        restored = SolverResult.from_dict(data)
        assert restored.to_dict() == data

    def test_restored_result_reproduces_metrics(self, paper_example_problem):
        result = repro.solve(
            paper_example_problem, solver="choco-q", num_layers=1,
            optimizer=FAST_OPTIMIZER, options=FAST_OPTIONS,
        )
        restored = SolverResult.from_dict(result.to_dict())
        original = result.metrics(paper_example_problem)
        rebuilt = restored.metrics(paper_example_problem)
        assert rebuilt == original

    def test_elimination_result_round_trips(self, paper_example_problem):
        result = repro.solve(
            paper_example_problem, solver="choco-q",
            config={"num_layers": 1, "num_eliminated_variables": 1},
            optimizer=FAST_OPTIMIZER, options=FAST_OPTIONS,
        )
        data = result.to_dict()
        json.dumps(data)
        assert SolverResult.from_dict(data).to_dict() == data

    def test_trace_and_parameters_survive(self, paper_example_problem):
        result = repro.solve(
            paper_example_problem, solver="choco-q", num_layers=1,
            optimizer=FAST_OPTIMIZER, options=FAST_OPTIONS,
        )
        restored = SolverResult.from_dict(result.to_dict())
        assert restored.trace.costs == result.trace.costs
        np.testing.assert_array_equal(
            restored.optimal_parameters, result.optimal_parameters
        )


# ---------------------------------------------------------------------------
# Batch runner
# ---------------------------------------------------------------------------


class TestRunPlan:
    def test_grid_builds_full_product(self, tiny_benchmark):
        plan = tiny_plan(tiny_benchmark)
        assert len(plan) == 12
        assert len({spec.content_hash() for spec in plan.specs}) == 12

    def test_parallel_matches_sequential_bit_for_bit(self, tiny_benchmark):
        plan = tiny_plan(tiny_benchmark)
        sequential = run_plan(plan)
        parallel = run_plan(plan, max_workers=2)
        assert len(sequential) == len(parallel) == 12
        assert [deterministic_metrics(r) for r in sequential] == [
            deterministic_metrics(r) for r in parallel
        ]

    def test_derived_seeds_are_deterministic_and_distinct(self, tiny_benchmark):
        plan = tiny_plan(tiny_benchmark, seeds=(None, None))
        first = plan.resolved_specs()
        second = plan.resolved_specs()
        assert [s.seed for s in first] == [s.seed for s in second]
        assert all(s.seed is not None for s in first)
        # Same solver at different grid positions draws different seeds.
        assert first[0].seed != first[1].seed

    def test_resume_returns_cached_records(self, tiny_benchmark, tmp_path):
        plan = tiny_plan(tiny_benchmark)
        path = tmp_path / "plan.jsonl"
        first = run_plan(plan, jsonl_path=path)
        assert all(not record.cached for record in first)
        second = run_plan(plan, jsonl_path=path)
        assert all(record.cached for record in second)
        assert [deterministic_metrics(r) for r in first] == [
            deterministic_metrics(r) for r in second
        ]

    def test_resume_does_not_reexecute_cached_specs(
        self, tiny_benchmark, tmp_path, monkeypatch
    ):
        plan = tiny_plan(tiny_benchmark)
        path = tmp_path / "plan.jsonl"
        run_plan(plan, jsonl_path=path)

        def forbidden(spec):  # pragma: no cover - failing is the assertion
            raise AssertionError(f"cached spec was re-executed: {spec}")

        monkeypatch.setattr(plan_module, "execute_spec", forbidden)
        records = run_plan(plan, jsonl_path=path)
        assert len(records) == 12

    def test_partial_resume_runs_only_missing_specs(
        self, tiny_benchmark, tmp_path, monkeypatch
    ):
        plan = tiny_plan(tiny_benchmark)
        path = tmp_path / "plan.jsonl"
        run_plan(plan, jsonl_path=path)
        # Keep only the first 5 completed lines: 7 specs become pending again.
        lines = path.read_text().splitlines()[:5]
        path.write_text("\n".join(lines) + "\n")

        executed = []
        real_execute = plan_module.execute_spec

        def counting(spec):
            executed.append(spec.content_hash())
            return real_execute(spec)

        monkeypatch.setattr(plan_module, "execute_spec", counting)
        records = run_plan(plan, jsonl_path=path)
        assert len(executed) == 7
        assert sum(1 for record in records if record.cached) == 5

    def test_resume_false_ignores_cache(self, tiny_benchmark, tmp_path):
        plan = tiny_plan(tiny_benchmark)
        path = tmp_path / "plan.jsonl"
        run_plan(plan, jsonl_path=path)
        records = run_plan(plan, jsonl_path=path, resume=False)
        assert all(not record.cached for record in records)

    def test_spec_round_trip_and_label_excluded_from_hash(self):
        spec = RunSpec(
            solver="hea", benchmark="F1", config={"num_layers": 2},
            seed=3, shots=128, label="hea@F1",
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec
        relabelled = RunSpec.from_dict({**spec.to_dict(), "label": "other"})
        assert relabelled.content_hash() == spec.content_hash()
        reseeded = RunSpec.from_dict({**spec.to_dict(), "seed": 4})
        assert reseeded.content_hash() != spec.content_hash()

    def test_parallel_failure_preserves_completed_records(self, tmp_path):
        def broken():
            raise ProblemError("deliberately broken benchmark")

        register_benchmark("tiny-one-hot", tiny_problem, replace=True)
        register_benchmark("broken-bench", broken, replace=True)
        try:
            specs = [
                RunSpec(solver="choco-q", benchmark="tiny-one-hot",
                        config={"num_layers": 1}, seed=seed, shots=64, max_iterations=6)
                for seed in range(4)
            ]
            specs.insert(1, RunSpec(solver="choco-q", benchmark="broken-bench", seed=0))
            path = tmp_path / "plan.jsonl"
            with pytest.raises(PlanExecutionError, match="deliberately broken") as excinfo:
                run_plan(ExperimentPlan(specs=specs), max_workers=2, jsonl_path=path)
            # The raised error names the failed spec (display name + hash)
            # and chains the original exception.
            broken_spec = specs[1]
            assert "choco-q@broken-bench" in str(excinfo.value)
            assert excinfo.value.failures == [
                {
                    "display_name": broken_spec.display_name(),
                    "spec_hash": broken_spec.content_hash(),
                    "error": "deliberately broken benchmark",
                }
            ]
            # Every healthy spec still reached the JSONL sink before the
            # failure was re-raised — that is the crash-safety contract.
            assert len(plan_module.load_records(path)) == 4
        finally:
            unregister_benchmark("tiny-one-hot")
            unregister_benchmark("broken-bench")

    def test_benchmark_optimum_cache_invalidated_on_reregister(self):
        from repro.run.problems import benchmark_optimum

        register_benchmark("cache-probe", tiny_problem, replace=True)
        try:
            first = benchmark_optimum("cache-probe")
            register_benchmark(
                "cache-probe",
                lambda: ConstrainedBinaryProblem(
                    num_variables=2,
                    objective=Objective.from_linear([5.0, 9.0]),
                    constraints=[LinearConstraint((1.0, 1.0), 1.0)],
                    sense="min",
                    name="cache-probe-2",
                ),
                replace=True,
            )
            second = benchmark_optimum("cache-probe")
            assert first != second
        finally:
            unregister_benchmark("cache-probe")

    def test_record_solver_result_reconstruction(self, tiny_benchmark):
        plan = ExperimentPlan(
            specs=[RunSpec(solver="choco-q", benchmark=tiny_benchmark,
                           config={"num_layers": 1}, seed=0, shots=64,
                           max_iterations=6)]
        )
        record = run_plan(plan)[0]
        result = record.solver_result()
        assert isinstance(result, SolverResult)
        assert result.solver_name == "choco-q"
        assert result.outcomes.shots == 64


# ---------------------------------------------------------------------------
# Multistart initial-parameter picker
# ---------------------------------------------------------------------------


class TestMultistart:
    def test_multistart_metadata_and_determinism(self, paper_example_problem):
        def run():
            return repro.solve(
                paper_example_problem, solver="choco-q", num_layers=1,
                optimizer=CobylaOptimizer(max_iterations=8),
                options=EngineOptions(shots=64, seed=11, multistart=4),
            )

        first, second = run(), run()
        assert first.metadata["multistart"] == 4
        assert len(first.metadata["multistart_scores"]) == 4
        assert first.metadata["multistart_scores"] == second.metadata["multistart_scores"]
        assert first.metadata["final_cost"] == second.metadata["final_cost"]
        np.testing.assert_array_equal(first.optimal_parameters, second.optimal_parameters)

    def test_multistart_never_starts_worse_than_default(self, paper_example_problem):
        result = repro.solve(
            paper_example_problem, solver="cyclic-qaoa", num_layers=1,
            optimizer=CobylaOptimizer(max_iterations=8),
            options=EngineOptions(shots=64, seed=11, multistart=6),
        )
        scores = result.metadata["multistart_scores"]
        best = result.metadata["multistart_best_index"]
        # Candidate 0 is the ansatz default; the picked basin can only improve.
        assert scores[best] == min(scores)
        assert scores[best] <= scores[0]

    def test_multistart_disabled_leaves_metadata_clean(self, paper_example_problem):
        result = repro.solve(
            paper_example_problem, solver="choco-q", num_layers=1,
            optimizer=FAST_OPTIMIZER, options=FAST_OPTIONS,
        )
        assert "multistart" not in result.metadata

    def test_multistart_validation(self):
        with pytest.raises(SolverError, match="multistart"):
            EngineOptions(multistart=0)

    def test_multistart_through_run_spec(self, tiny_benchmark):
        plan = ExperimentPlan(
            specs=[RunSpec(solver="choco-q", benchmark=tiny_benchmark,
                           config={"num_layers": 1}, seed=0, shots=64,
                           max_iterations=6, multistart=3)]
        )
        record = run_plan(plan)[0]
        assert record.solver_result().metadata["multistart"] == 3
