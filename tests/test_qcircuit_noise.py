"""Tests for device profiles and the noise model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NoiseModelError
from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.noise import (
    DEVICE_PROFILES,
    IBM_FEZ,
    IBM_OSAKA,
    IBM_SHERBROOKE,
    NoiseModel,
    get_device_profile,
)


class TestDeviceProfiles:
    def test_three_devices_registered(self):
        assert set(DEVICE_PROFILES) == {"fez", "osaka", "sherbrooke"}

    def test_lookup_case_insensitive(self):
        assert get_device_profile("FEZ") is IBM_FEZ

    def test_unknown_device_raises(self):
        with pytest.raises(NoiseModelError):
            get_device_profile("quito")

    def test_fez_is_best_two_qubit_device(self):
        # Section V-A: Fez features native CZ at 99.7% fidelity, the ECR
        # devices need three native gates per CZ.
        assert IBM_FEZ.effective_two_qubit_error() < IBM_OSAKA.effective_two_qubit_error()
        assert IBM_FEZ.effective_two_qubit_error() < IBM_SHERBROOKE.effective_two_qubit_error()

    def test_ecr_translation_cost(self):
        assert IBM_OSAKA.cz_cost == 3
        assert IBM_FEZ.cz_cost == 1


class TestAnalyticalModel:
    def test_fidelity_decreases_with_depth(self):
        shallow = QuantumCircuit(2)
        shallow.h(0).cx(0, 1)
        deep = QuantumCircuit(2)
        for _ in range(20):
            deep.cx(0, 1)
        model = NoiseModel(IBM_FEZ, seed=0)
        assert model.fidelity_factor(deep) < model.fidelity_factor(shallow)

    def test_fez_beats_osaka_on_same_circuit(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2).cx(0, 2)
        assert NoiseModel(IBM_FEZ).fidelity_factor(circuit) > NoiseModel(IBM_OSAKA).fidelity_factor(circuit)

    def test_analytical_distribution_mixes_towards_uniform(self):
        circuit = QuantumCircuit(2)
        for _ in range(10):
            circuit.cx(0, 1)
        ideal = np.array([1.0, 0.0, 0.0, 0.0])
        model = NoiseModel(IBM_OSAKA)
        noisy = model.apply_analytical(ideal, circuit)
        assert noisy[0] < 1.0
        assert np.all(noisy > 0.0)
        assert np.sum(noisy) == pytest.approx(1.0)

    def test_opaque_unitary_charged_synthesized_cost(self):
        # Regression: a k-qubit ``unitary`` used to be priced like a single
        # CX.  It must carry its synthesized cost of 4**k - 1 two-qubit
        # gates, matching the depth penalty of unitary_synthesis_penalty.
        model = NoiseModel(IBM_FEZ)
        opaque = QuantumCircuit(3)
        opaque.unitary(np.eye(8), [0, 1, 2])
        e2 = IBM_FEZ.effective_two_qubit_error()
        expected = (1 - e2) ** (4**3 - 1) * (1 - IBM_FEZ.readout_error) ** 3
        assert model.fidelity_factor(opaque) == pytest.approx(expected)
        single_cx = QuantumCircuit(3)
        single_cx.cx(0, 1)
        assert model.fidelity_factor(opaque) < model.fidelity_factor(single_cx)

    def test_single_qubit_unitary_still_charged_single(self):
        model = NoiseModel(IBM_FEZ)
        circuit = QuantumCircuit(1)
        circuit.unitary(np.eye(2), [0])
        expected = (1 - IBM_FEZ.single_qubit_error) * (1 - IBM_FEZ.readout_error)
        assert model.fidelity_factor(circuit) == pytest.approx(expected)

    def test_fig10_analytical_path_pins_unitary_charge(self):
        # The fig10 grid's analytical mode mixes the ideal distribution with
        # uniform weighted by fidelity_factor; pin that mix for a circuit
        # holding an opaque 2-qubit unitary so the 4**k - 1 charge is
        # observable end-to-end.
        model = NoiseModel(IBM_OSAKA)
        circuit = QuantumCircuit(2)
        circuit.unitary(np.eye(4), [0, 1])
        fidelity = model.fidelity_factor(circuit)
        e2 = IBM_OSAKA.effective_two_qubit_error()
        assert fidelity == pytest.approx(
            (1 - e2) ** 15 * (1 - IBM_OSAKA.readout_error) ** 2
        )
        ideal = np.array([1.0, 0.0, 0.0, 0.0])
        noisy = model.apply_analytical(ideal, circuit)
        assert noisy == pytest.approx(fidelity * ideal + (1 - fidelity) * 0.25)


class TestTrajectorySampling:
    def test_sampling_shape_and_shots(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        model = NoiseModel(IBM_FEZ, seed=11)
        result = model.sample(circuit, shots=64, trajectories=4)
        # Exact shot conservation, not just "at least the rounded share".
        assert sum(result.counts.values()) == 64
        assert result.shots == 64
        assert all(len(key) == 2 for key in result.counts)

    def test_seed_sequence_seeding_reproduces(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        seed = np.random.SeedSequence(entropy=42, spawn_key=(7,))
        first = NoiseModel(IBM_FEZ, seed=seed).sample(circuit, shots=64, trajectories=4)
        second = NoiseModel(IBM_FEZ, seed=seed).sample(circuit, shots=64, trajectories=4)
        assert first.counts == second.counts

    def test_noise_perturbs_deterministic_circuit(self):
        circuit = QuantumCircuit(3)
        for _ in range(15):
            circuit.cx(0, 1)
            circuit.cx(1, 2)
        model = NoiseModel(IBM_OSAKA, seed=5)
        result = model.sample(circuit, shots=256, trajectories=16)
        # With ~90 noisy 2-qubit gate slots something should flip eventually.
        assert len(result.counts) > 1

    def test_zero_shots_rejected(self):
        model = NoiseModel(IBM_FEZ)
        with pytest.raises(NoiseModelError):
            model.sample(QuantumCircuit(1), shots=0)

    def test_readout_error_only_flips_bits(self):
        profile = IBM_FEZ
        model = NoiseModel(profile, seed=3)
        flipped = model._apply_readout_error({"0000": 100})
        assert sum(flipped.values()) == 100
        assert all(len(key) == 4 for key in flipped)
