"""Tests for the transpiler: basis coverage and unitary equivalence.

Transpiled circuits must equal their sources up to a global phase; the
``global_phase_equal`` helper from conftest encodes that comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.gates import BASIS_GATES
from repro.qcircuit.statevector import Statevector, StatevectorSimulator
from repro.qcircuit.transpile import (
    TranspileOptions,
    depth_after_transpile,
    gate_counts_after_transpile,
    transpile,
)

from repro.testing import global_phase_equal


def random_state(num_qubits: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    state = rng.normal(size=2**num_qubits) + 1j * rng.normal(size=2**num_qubits)
    return state / np.linalg.norm(state)


def assert_equivalent(circuit: QuantumCircuit, seed: int = 7) -> None:
    """Transpiled circuit acts identically (up to global phase) on a random state."""
    simulator = StatevectorSimulator(max_qubits=18)
    state = random_state(circuit.num_qubits, seed)
    ideal = simulator.statevector(
        circuit, initial_state=Statevector(data=state.copy(), num_qubits=circuit.num_qubits)
    ).data
    lowered = transpile(circuit)
    padded = np.zeros(2**lowered.num_qubits, dtype=complex)
    padded[: len(state)] = state
    lowered_state = simulator.statevector(
        lowered, initial_state=Statevector(data=padded, num_qubits=lowered.num_qubits)
    ).data
    # Ancillas must return to |0>, so only the first block may be populated.
    assert np.allclose(
        np.linalg.norm(lowered_state[len(state):]), 0.0, atol=1e-8
    ), "ancilla qubits were not returned to |0>"
    assert global_phase_equal(ideal, lowered_state[: len(state)])


class TestBasisCoverage:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda c: c.y(0),
            lambda c: c.s(0),
            lambda c: c.t(1),
            lambda c: c.p(0.3, 0),
            lambda c: c.rx(0.7, 1),
            lambda c: c.ry(1.2, 0),
            lambda c: c.swap(0, 1),
            lambda c: c.cp(0.5, 0, 1),
            lambda c: c.rzz(0.8, 0, 1),
            lambda c: c.rxx(0.4, 0, 1),
            lambda c: c.ryy(0.9, 0, 1),
        ],
    )
    def test_all_gates_lower_to_basis(self, builder):
        circuit = QuantumCircuit(2)
        builder(circuit)
        lowered = transpile(circuit)
        for instruction in lowered:
            if instruction.is_directive:
                continue
            assert instruction.gate.name in BASIS_GATES

    def test_mcx_and_mcp_lower_to_basis(self):
        circuit = QuantumCircuit(5)
        circuit.mcx([0, 1, 2, 3], 4)
        circuit.mcp(0.7, [0, 1, 2], 4)
        lowered = transpile(circuit)
        names = {inst.gate.name for inst in lowered if not inst.is_directive}
        assert names.issubset(BASIS_GATES)

    def test_directives_preserved(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).measure_all()
        lowered = transpile(circuit)
        assert any(inst.gate.name == "measure" for inst in lowered)


class TestEquivalence:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda c: (c.y(0), c.s(1), c.t(0)),
            lambda c: (c.rx(0.7, 0), c.ry(1.3, 1), c.p(0.2, 1)),
            lambda c: (c.swap(0, 1), c.cp(0.6, 1, 0)),
            lambda c: (c.rzz(0.4, 0, 1), c.rxx(0.5, 0, 1), c.ryy(0.7, 1, 0)),
        ],
    )
    def test_two_qubit_circuits(self, builder):
        circuit = QuantumCircuit(2)
        builder(circuit)
        assert_equivalent(circuit)

    @pytest.mark.parametrize("num_controls", [2, 3, 4])
    def test_mcx_equivalence(self, num_controls):
        circuit = QuantumCircuit(num_controls + 1)
        for qubit in range(num_controls + 1):
            circuit.h(qubit)
        circuit.mcx(list(range(num_controls)), num_controls)
        assert_equivalent(circuit)

    @pytest.mark.parametrize("num_controls", [1, 2, 3, 4])
    @pytest.mark.parametrize("theta", [0.3, -1.1])
    def test_mcp_equivalence(self, num_controls, theta):
        circuit = QuantumCircuit(num_controls + 1)
        for qubit in range(num_controls + 1):
            circuit.h(qubit)
        circuit.mcp(theta, list(range(num_controls)), num_controls)
        assert_equivalent(circuit)

    def test_no_ancilla_mode_still_equivalent(self):
        circuit = QuantumCircuit(5)
        for qubit in range(5):
            circuit.h(qubit)
        circuit.mcp(0.9, [0, 1, 2, 3], 4)
        options = TranspileOptions(use_ancillas=False)
        lowered = transpile(circuit, options)
        assert lowered.num_qubits == 5
        simulator = StatevectorSimulator()
        state = random_state(5)
        ideal = simulator.statevector(
            circuit, initial_state=Statevector(data=state.copy(), num_qubits=5)
        ).data
        lowered_state = simulator.statevector(
            lowered, initial_state=Statevector(data=state.copy(), num_qubits=5)
        ).data
        assert global_phase_equal(ideal, lowered_state)


class TestDepthAccounting:
    def test_depth_after_transpile_counts_unitary_penalty(self):
        circuit = QuantumCircuit(2)
        circuit.unitary(np.eye(4), [0, 1])
        assert depth_after_transpile(circuit) >= 4**2 - 1

    def test_mcp_depth_is_linear_in_support(self):
        depths = []
        for size in (3, 5, 7, 9):
            circuit = QuantumCircuit(size)
            circuit.mcp(0.5, list(range(size - 1)), size - 1)
            depths.append(depth_after_transpile(circuit))
        growth = [b - a for a, b in zip(depths, depths[1:])]
        # Linear growth: successive increments stay within a constant factor.
        assert max(growth) <= 2.5 * min(growth)

    def test_gate_counts_after_transpile(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        counts = gate_counts_after_transpile(circuit)
        assert counts.get("cx", 0) == 3


class TestLevelZeroGolden:
    """``optimization_level=0`` is pinned bit-identical to the pre-pass-stack
    transpiler via a golden fixture captured from the unmodified seed."""

    def _golden_source(self) -> QuantumCircuit:
        circuit = QuantumCircuit(5, name="golden")
        circuit.h(0).y(1).s(2).t(3).sdg(4)
        circuit.rx(0.7, 0).ry(-1.3, 1).p(0.4, 2)
        circuit.swap(0, 1).cp(0.6, 1, 2).rzz(0.8, 2, 3)
        circuit.rxx(0.5, 3, 4).ryy(0.9, 0, 4)
        circuit.mcx([0, 1, 2], 3).mcp(0.7, [1, 2], 4)
        circuit.barrier().measure_all()
        return circuit

    def test_level_zero_bit_identical_to_golden(self):
        import json
        import os

        fixture = os.path.join(
            os.path.dirname(__file__), "data", "golden_transpile_level0.json"
        )
        with open(fixture) as handle:
            golden = json.load(handle)
        lowered = transpile(
            self._golden_source(), TranspileOptions(optimization_level=0)
        )
        payload = {
            "num_qubits": lowered.num_qubits,
            "instructions": [
                [
                    instruction.gate.name,
                    list(instruction.qubits),
                    [repr(float(p)) for p in instruction.gate.params],
                ]
                for instruction in lowered
            ],
        }
        assert payload == golden

    def test_default_level_only_shrinks_the_golden_circuit(self):
        source = self._golden_source()
        level_zero = transpile(source, TranspileOptions(optimization_level=0))
        optimized = transpile(source)
        assert optimized.size() < level_zero.size()
        assert optimized.num_qubits == level_zero.num_qubits
