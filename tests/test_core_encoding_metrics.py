"""Tests for penalty encodings, QUBO conversion, metrics and elimination."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import (
    default_penalty_weight,
    frozen_variables,
    penalty_objective,
    qubo_matrix,
    squared_constraint_penalty,
    to_qubo,
)
from repro.core.metrics import (
    approximation_ratio_gap,
    best_measured,
    evaluate_outcomes,
    expected_objective,
    in_constraints_rate,
    success_rate,
)
from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.core.variable_elimination import (
    build_elimination_plan,
    choose_elimination_variables,
)
from repro.exceptions import ProblemError


class TestPenaltyEncoding:
    def test_penalty_is_zero_on_feasible_points(self, paper_example_problem):
        penalty = squared_constraint_penalty(paper_example_problem)
        for bits in itertools.product((0, 1), repeat=4):
            if paper_example_problem.is_feasible(bits):
                assert penalty.evaluate(bits) == pytest.approx(0.0)
            else:
                assert penalty.evaluate(bits) > 0.0

    def test_penalty_equals_squared_violation(self, paper_example_problem):
        penalty = squared_constraint_penalty(paper_example_problem)
        matrix, rhs = paper_example_problem.constraint_matrix()
        for bits in itertools.product((0, 1), repeat=4):
            expected = float(np.sum((matrix @ np.array(bits) - rhs) ** 2))
            assert penalty.evaluate(bits) == pytest.approx(expected)

    def test_penalty_objective_orders_feasible_first(self, paper_example_problem):
        weight = default_penalty_weight(paper_example_problem)
        qubo = penalty_objective(paper_example_problem, weight)
        feasible_values = [
            qubo.evaluate(bits)
            for bits in itertools.product((0, 1), repeat=4)
            if paper_example_problem.is_feasible(bits)
        ]
        infeasible_values = [
            qubo.evaluate(bits)
            for bits in itertools.product((0, 1), repeat=4)
            if not paper_example_problem.is_feasible(bits)
        ]
        assert max(feasible_values) < min(infeasible_values)

    def test_negative_weight_rejected(self, paper_example_problem):
        with pytest.raises(ProblemError):
            penalty_objective(paper_example_problem, -1.0)

    def test_to_qubo_split(self):
        constant, linear, quadratic = to_qubo(Objective({(): 1.0, (0,): 2.0, (0, 1): 3.0}))
        assert constant == pytest.approx(1.0)
        assert linear == {0: 2.0}
        assert quadratic == {(0, 1): 3.0}

    def test_to_qubo_rejects_cubic(self):
        with pytest.raises(ProblemError):
            to_qubo(Objective({(0, 1, 2): 1.0}))

    def test_qubo_matrix_reproduces_polynomial(self):
        objective = Objective({(0,): 2.0, (1,): -1.0, (0, 1): 4.0})
        matrix = qubo_matrix(objective, 2)
        for bits in itertools.product((0, 1), repeat=2):
            x = np.array(bits, dtype=float)
            assert x @ matrix @ x == pytest.approx(objective.evaluate(bits))

    def test_frozen_variables_picks_high_degree(self, paper_example_problem):
        frozen = frozen_variables(paper_example_problem, count=2)
        assert len(frozen) == 2
        assert all(value in (0, 1) for _, value in frozen)


class TestMetrics:
    def test_success_rate_counts_only_optima(self, paper_example_problem):
        outcomes = {"1010": 0.5, "0100": 0.3, "1111": 0.2}
        assert success_rate(paper_example_problem, outcomes) == pytest.approx(0.5)

    def test_in_constraints_rate(self, paper_example_problem):
        outcomes = {"1010": 0.5, "0100": 0.3, "1111": 0.2}
        assert in_constraints_rate(paper_example_problem, outcomes) == pytest.approx(0.8)

    def test_perfect_solver_has_zero_arg(self, paper_example_problem):
        assert approximation_ratio_gap(paper_example_problem, {"1010": 1.0}) == pytest.approx(0.0)

    def test_arg_penalises_violations(self, paper_example_problem):
        feasible_only = approximation_ratio_gap(paper_example_problem, {"0100": 1.0})
        with_violation = approximation_ratio_gap(paper_example_problem, {"1111": 1.0})
        assert with_violation > feasible_only

    def test_expected_objective(self, paper_example_problem):
        outcomes = {"1010": 0.5, "0100": 0.5}
        assert expected_objective(paper_example_problem, outcomes) == pytest.approx(4.0)

    def test_best_measured_requires_feasible(self, paper_example_problem):
        bits, value = best_measured(paper_example_problem, {"1111": 0.9, "0100": 0.1})
        assert bits == (0, 1, 0, 0)
        assert value == pytest.approx(2.0)

    def test_best_measured_none_when_all_infeasible(self, paper_example_problem):
        bits, value = best_measured(paper_example_problem, {"1111": 1.0})
        assert bits is None and value is None

    def test_evaluate_outcomes_bundle(self, paper_example_problem):
        report = evaluate_outcomes(paper_example_problem, {"1010": 1.0}, circuit_depth=42)
        assert report.success_rate == pytest.approx(1.0)
        assert report.in_constraints_rate == pytest.approx(1.0)
        assert report.circuit_depth == 42
        row = report.as_row()
        assert row["success_rate_percent"] == pytest.approx(100.0)

    def test_longer_bitstrings_are_truncated(self, paper_example_problem):
        # Transpiled circuits may carry ancilla bits after the problem register.
        assert success_rate(paper_example_problem, {"101000": 1.0}) == pytest.approx(1.0)

    def test_short_bitstring_rejected(self, paper_example_problem):
        with pytest.raises(ProblemError):
            success_rate(paper_example_problem, {"10": 1.0})

    def test_empty_distribution_rejected(self, paper_example_problem):
        with pytest.raises(ProblemError):
            in_constraints_rate(paper_example_problem, {})


class TestVariableElimination:
    def test_choose_prefers_most_nonzeros(self, paper_example_problem):
        chosen = choose_elimination_variables(paper_example_problem, 1)
        assert len(chosen) == 1

    def test_zero_count_returns_empty(self, paper_example_problem):
        assert choose_elimination_variables(paper_example_problem, 0) == []

    def test_plan_covers_feasible_assignments(self, paper_example_problem):
        plan = build_elimination_plan(paper_example_problem, [1])
        assert plan.num_circuits == 2
        for instance in plan.instances:
            assert instance.problem.num_variables == 3

    def test_lifted_assignments_satisfy_original_constraints(self, paper_example_problem):
        plan = build_elimination_plan(paper_example_problem, [3])
        for instance in plan.instances:
            matrix, rhs = instance.problem.constraint_matrix()
            from repro.core.feasibility import enumerate_feasible_assignments

            for reduced_bits in enumerate_feasible_assignments(matrix, rhs):
                lifted = instance.lift(reduced_bits)
                assert paper_example_problem.is_feasible(lifted)

    def test_reduced_optimum_maps_to_original_optimum(self, paper_example_problem):
        plan = build_elimination_plan(paper_example_problem, [1])
        _, original_value = paper_example_problem.brute_force_optimum()
        best = None
        for instance in plan.instances:
            try:
                assignment, _ = instance.problem.brute_force_optimum()
            except ProblemError:
                continue
            lifted = instance.lift(assignment)
            value = paper_example_problem.evaluate(lifted)
            if best is None or paper_example_problem.better(value, best):
                best = value
        assert best == pytest.approx(original_value)

    def test_cannot_eliminate_everything(self, paper_example_problem):
        with pytest.raises(ProblemError):
            build_elimination_plan(paper_example_problem, [0, 1, 2, 3])

    def test_out_of_range_variable(self, paper_example_problem):
        with pytest.raises(ProblemError):
            build_elimination_plan(paper_example_problem, [9])


@settings(max_examples=25, deadline=None)
@given(
    weight=st.floats(1.0, 50.0, allow_nan=False),
    bits=st.lists(st.integers(0, 1), min_size=4, max_size=4),
)
def test_property_penalty_objective_value(weight, bits):
    """penalty_objective(x) = f_min(x) + weight * ||Cx - c||^2 pointwise."""
    objective = Objective({(0,): 3.0, (1,): 2.0, (2,): 3.0, (3,): 1.0})
    constraints = [
        LinearConstraint((1.0, 0.0, -1.0, 0.0), 0.0),
        LinearConstraint((1.0, 1.0, 0.0, 1.0), 1.0),
    ]
    problem = ConstrainedBinaryProblem(4, objective, constraints, sense="max")
    qubo = penalty_objective(problem, weight)
    matrix, rhs = problem.constraint_matrix()
    expected = -objective.evaluate(bits) + weight * float(
        np.sum((matrix @ np.array(bits) - rhs) ** 2)
    )
    assert qubo.evaluate(bits) == pytest.approx(expected, rel=1e-9)
