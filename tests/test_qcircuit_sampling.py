"""Tests for sampling helpers and histogram manipulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.subspace import SubspaceMap
from repro.qcircuit.sampling import (
    SampleResult,
    combine_metadata,
    counts_to_probability_vector,
    exact_distribution,
    merge_results,
    subspace_exact_distribution,
)
from repro.qcircuit.statevector import Statevector


class TestSampleResult:
    def test_from_counts_totals_shots(self):
        result = SampleResult.from_counts({"00": 3, "11": 7})
        assert result.shots == 10
        assert result.frequencies()["11"] == pytest.approx(0.7)

    def test_from_statevector_respects_distribution(self, rng):
        state = Statevector.from_bitstring([1, 0, 1])
        result = SampleResult.from_statevector(state, shots=50, rng=rng)
        assert result.counts == {"101": 50}

    def test_from_probabilities(self, rng):
        probabilities = np.array([0.0, 1.0, 0.0, 0.0])
        result = SampleResult.from_probabilities(probabilities, 2, shots=20, rng=rng)
        assert result.counts == {"10": 20}

    def test_most_common_ordering(self):
        result = SampleResult.from_counts({"00": 1, "01": 5, "10": 3})
        assert [key for key, _ in result.most_common()] == ["01", "10", "00"]
        assert result.most_common(1) == [("01", 5)]

    def test_assignments_returns_bit_arrays(self):
        result = SampleResult.from_counts({"10": 4})
        bits, count = result.assignments()[0]
        assert list(bits) == [1, 0]
        assert count == 4

    def test_merge_adds_counts(self):
        a = SampleResult.from_counts({"0": 5})
        b = SampleResult.from_counts({"0": 2, "1": 3})
        merged = a.merge(b)
        assert merged.counts == {"0": 7, "1": 3}
        assert merged.shots == 10

    def test_merge_results_helper(self):
        parts = [SampleResult.from_counts({"0": 1}) for _ in range(4)]
        assert merge_results(parts).counts == {"0": 4}

    def test_merge_preserves_metadata(self):
        a = SampleResult.from_counts({"0": 5}, metadata={"origin": "sub-0"})
        b = SampleResult.from_counts({"1": 3}, metadata={"shots_requested": 3})
        merged = a.merge(b)
        assert merged.metadata == {"origin": "sub-0", "shots_requested": 3}

    def test_merge_concatenates_list_metadata(self):
        a = SampleResult.from_counts(
            {"0": 5}, metadata={"eliminated_assignments": [{"assignment": {0: 0}}]}
        )
        b = SampleResult.from_counts(
            {"1": 3}, metadata={"eliminated_assignments": [{"assignment": {0: 1}}]}
        )
        merged = merge_results([a, b])
        assert merged.metadata["eliminated_assignments"] == [
            {"assignment": {0: 0}},
            {"assignment": {0: 1}},
        ]

    def test_merge_collects_conflicting_scalars(self):
        a = SampleResult.from_counts({"0": 1}, metadata={"tag": "left"})
        b = SampleResult.from_counts({"1": 1}, metadata={"tag": "right"})
        assert a.merge(b).metadata["tag"] == ["left", "right"]

    def test_combine_metadata_keeps_equal_values(self):
        assert combine_metadata({"k": 1}, {"k": 1}) == {"k": 1}

    def test_merge_of_many_scalars_stays_flat(self):
        """Folding conflicting scalars through merge_results must not nest."""
        parts = [
            SampleResult.from_counts({"0": 1}, metadata={"tag": tag})
            for tag in ("a", "b", "c")
        ]
        assert merge_results(parts).metadata["tag"] == ["a", "b", "c"]

    def test_combine_metadata_list_absorbs_scalar(self):
        assert combine_metadata({"k": [1, 2]}, {"k": 3}) == {"k": [1, 2, 3]}
        assert combine_metadata({"k": 1}, {"k": [2, 3]}) == {"k": [1, 2, 3]}

    def test_combine_metadata_tolerates_numpy_arrays(self):
        same = combine_metadata({"bias": np.array([1, 2])}, {"bias": np.array([1, 2])})
        assert np.array_equal(same["bias"], np.array([1, 2]))
        different = combine_metadata({"bias": np.array([1, 2])}, {"bias": np.array([3, 4])})
        assert isinstance(different["bias"], list) and len(different["bias"]) == 2

    def test_empty_frequencies(self):
        assert SampleResult().frequencies() == {}

    def test_probability_of_index(self):
        result = SampleResult.from_counts({"01": 3, "11": 1})
        # index 2 corresponds to bitstring "01" (q0=0, q1=1)
        assert result.probability_of_index(2, 2) == pytest.approx(0.75)


class TestDistributionHelpers:
    def test_exact_distribution_matches_probabilities(self):
        state = Statevector.uniform_superposition(2)
        distribution = exact_distribution(state)
        assert len(distribution) == 4
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_counts_to_probability_vector(self):
        vector = counts_to_probability_vector({"10": 1, "01": 3}, 2)
        assert vector[1] == pytest.approx(0.25)  # "10" -> index 1
        assert vector[2] == pytest.approx(0.75)  # "01" -> index 2

    def test_counts_to_probability_vector_empty(self):
        vector = counts_to_probability_vector({}, 2)
        assert np.allclose(vector, 0.0)


class TestSubspaceSampling:
    @pytest.fixture
    def one_hot_map(self) -> SubspaceMap:
        # x0 + x1 + x2 = 1: coordinates are the three one-hot bitstrings.
        return SubspaceMap.from_constraints([[1.0, 1.0, 1.0]], [1.0])

    def test_subspace_exact_distribution_lifts_coordinates(self, one_hot_map):
        probabilities = np.array([0.5, 0.5, 0.0])
        distribution = subspace_exact_distribution(probabilities, one_hot_map)
        assert distribution == {
            one_hot_map.bitstring_of(0): 0.5,
            one_hot_map.bitstring_of(1): 0.5,
        }

    def test_from_subspace_probabilities_counts(self, one_hot_map, rng):
        probabilities = np.array([0.0, 1.0, 0.0])
        result = SampleResult.from_subspace_probabilities(
            probabilities, one_hot_map, shots=30, rng=rng
        )
        assert result.counts == {one_hot_map.bitstring_of(1): 30}
        assert result.shots == 30

    def test_subspace_samples_match_dense_format(self, one_hot_map, rng):
        """Sampled keys are full-register feasible bitstrings."""
        probabilities = np.full(3, 1.0 / 3.0)
        result = SampleResult.from_subspace_probabilities(
            probabilities, one_hot_map, shots=90, rng=rng
        )
        assert sum(result.counts.values()) == 90
        for key in result.counts:
            assert len(key) == 3
            assert sum(int(ch) for ch in key) == 1
