"""Tests for sampling helpers and histogram manipulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.qcircuit.sampling import (
    SampleResult,
    counts_to_probability_vector,
    exact_distribution,
    merge_results,
)
from repro.qcircuit.statevector import Statevector


class TestSampleResult:
    def test_from_counts_totals_shots(self):
        result = SampleResult.from_counts({"00": 3, "11": 7})
        assert result.shots == 10
        assert result.frequencies()["11"] == pytest.approx(0.7)

    def test_from_statevector_respects_distribution(self, rng):
        state = Statevector.from_bitstring([1, 0, 1])
        result = SampleResult.from_statevector(state, shots=50, rng=rng)
        assert result.counts == {"101": 50}

    def test_from_probabilities(self, rng):
        probabilities = np.array([0.0, 1.0, 0.0, 0.0])
        result = SampleResult.from_probabilities(probabilities, 2, shots=20, rng=rng)
        assert result.counts == {"10": 20}

    def test_most_common_ordering(self):
        result = SampleResult.from_counts({"00": 1, "01": 5, "10": 3})
        assert [key for key, _ in result.most_common()] == ["01", "10", "00"]
        assert result.most_common(1) == [("01", 5)]

    def test_assignments_returns_bit_arrays(self):
        result = SampleResult.from_counts({"10": 4})
        bits, count = result.assignments()[0]
        assert list(bits) == [1, 0]
        assert count == 4

    def test_merge_adds_counts(self):
        a = SampleResult.from_counts({"0": 5})
        b = SampleResult.from_counts({"0": 2, "1": 3})
        merged = a.merge(b)
        assert merged.counts == {"0": 7, "1": 3}
        assert merged.shots == 10

    def test_merge_results_helper(self):
        parts = [SampleResult.from_counts({"0": 1}) for _ in range(4)]
        assert merge_results(parts).counts == {"0": 4}

    def test_empty_frequencies(self):
        assert SampleResult().frequencies() == {}

    def test_probability_of_index(self):
        result = SampleResult.from_counts({"01": 3, "11": 1})
        # index 2 corresponds to bitstring "01" (q0=0, q1=1)
        assert result.probability_of_index(2, 2) == pytest.approx(0.75)


class TestDistributionHelpers:
    def test_exact_distribution_matches_probabilities(self):
        state = Statevector.uniform_superposition(2)
        distribution = exact_distribution(state)
        assert len(distribution) == 4
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_counts_to_probability_vector(self):
        vector = counts_to_probability_vector({"10": 1, "01": 3}, 2)
        assert vector[1] == pytest.approx(0.25)  # "10" -> index 1
        assert vector[2] == pytest.approx(0.75)  # "01" -> index 2

    def test_counts_to_probability_vector_empty(self):
        vector = counts_to_probability_vector({}, 2)
        assert np.allclose(vector, 0.0)
