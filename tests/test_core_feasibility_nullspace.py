"""Tests for feasibility search and the ternary nullspace machinery."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feasibility import (
    count_feasible_assignments,
    enumerate_feasible_assignments,
    find_feasible_assignment,
    problem_initial_assignment,
)
from repro.core.nullspace import (
    enumerate_ternary_nullspace,
    nullity,
    ternary_nullspace_basis,
    total_nonzeros,
    variable_nonzero_counts,
)
from repro.exceptions import InfeasibleError, ProblemError

PAPER_MATRIX = np.array([[1.0, 0.0, -1.0, 0.0], [1.0, 1.0, 0.0, 1.0]])
PAPER_RHS = np.array([0.0, 1.0])


class TestFeasibility:
    def test_enumerates_all_solutions(self):
        solutions = enumerate_feasible_assignments(PAPER_MATRIX, PAPER_RHS)
        assert set(solutions) == {(0, 0, 0, 1), (0, 1, 0, 0), (1, 0, 1, 0)}

    def test_matches_brute_force_on_random_systems(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            matrix = rng.integers(-2, 3, size=(2, 5)).astype(float)
            rhs = rng.integers(-1, 3, size=2).astype(float)
            expected = {
                bits
                for bits in itertools.product((0, 1), repeat=5)
                if np.allclose(matrix @ np.array(bits), rhs)
            }
            found = set(enumerate_feasible_assignments(matrix, rhs))
            assert found == expected

    def test_find_one_raises_when_infeasible(self):
        with pytest.raises(InfeasibleError):
            find_feasible_assignment([[1.0, 1.0]], [5.0])

    def test_limit_caps_enumeration(self):
        solutions = enumerate_feasible_assignments(PAPER_MATRIX, PAPER_RHS, limit=2)
        assert len(solutions) == 2

    def test_count(self):
        assert count_feasible_assignments(PAPER_MATRIX, PAPER_RHS) == 3

    def test_problem_initial_assignment(self, paper_example_problem):
        bits = problem_initial_assignment(paper_example_problem)
        assert paper_example_problem.is_feasible(bits)

    def test_empty_matrix_rejected(self):
        with pytest.raises(ProblemError):
            find_feasible_assignment(np.zeros((0, 0)), [])


class TestTernaryNullspace:
    def test_enumeration_matches_brute_force(self):
        found = set(enumerate_ternary_nullspace(PAPER_MATRIX))
        expected = set()
        for entries in itertools.product((-1, 0, 1), repeat=4):
            if not any(entries):
                continue
            if not np.allclose(PAPER_MATRIX @ np.array(entries), 0.0):
                continue
            # Canonical form: first non-zero entry is +1.
            first = next(e for e in entries if e != 0)
            if first == 1:
                expected.add(entries)
        assert found == expected

    def test_every_vector_satisfies_cu_zero(self):
        rng = np.random.default_rng(3)
        matrix = rng.integers(-2, 3, size=(3, 6)).astype(float)
        for u in enumerate_ternary_nullspace(matrix):
            assert np.allclose(matrix @ np.array(u), 0.0)

    def test_max_support_bounds_solutions(self):
        solutions = enumerate_ternary_nullspace(PAPER_MATRIX, max_support=2)
        assert all(sum(1 for x in u if x != 0) <= 2 for u in solutions)

    def test_nullity(self):
        assert nullity(PAPER_MATRIX) == 2
        assert nullity(np.eye(3)) == 0

    def test_basis_has_nullity_vectors_and_full_rank(self):
        basis = ternary_nullspace_basis(PAPER_MATRIX)
        assert len(basis) == 2
        assert np.linalg.matrix_rank(np.array(basis, dtype=float)) == 2

    def test_basis_prefers_small_supports(self):
        basis = ternary_nullspace_basis(PAPER_MATRIX)
        full = enumerate_ternary_nullspace(PAPER_MATRIX)
        assert total_nonzeros(basis) <= total_nonzeros(full)

    def test_basis_raises_when_no_ternary_moves_exist(self):
        # [[1, 2, 4]] has a 2-dimensional rational nullspace but admits no
        # non-zero solution with entries restricted to {-1, 0, 1}.
        with pytest.raises(ProblemError):
            ternary_nullspace_basis(np.array([[1.0, 2.0, 4.0]]))

    def test_basis_empty_for_full_rank_square(self):
        # nullity == 0 -> no driver needed; returns empty list.
        matrix = np.array([[1.0, 2.0], [0.0, 1.0]])
        assert ternary_nullspace_basis(matrix) == []

    def test_variable_nonzero_counts(self):
        counts = variable_nonzero_counts([(1, -1, 0), (1, 0, -1)], 3)
        assert list(counts) == [2, 1, 1]


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(1, 2),
    cols=st.integers(2, 5),
    seed=st.integers(0, 500),
)
def test_property_nullspace_vectors_annihilate(rows, cols, seed):
    """Every enumerated vector lies in the kernel of C."""
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-1, 2, size=(rows, cols)).astype(float)
    for u in enumerate_ternary_nullspace(matrix, limit=50):
        assert np.allclose(matrix @ np.array(u), 0.0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500))
def test_property_feasible_assignments_satisfy_constraints(seed):
    """Every assignment from the DFS satisfies C x = c exactly."""
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-1, 2, size=(2, 6)).astype(float)
    x = rng.integers(0, 2, size=6)
    rhs = matrix @ x  # guarantees at least one solution
    for bits in enumerate_feasible_assignments(matrix, rhs, limit=20):
        assert np.allclose(matrix @ np.array(bits), rhs)
