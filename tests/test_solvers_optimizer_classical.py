"""Tests for classical optimizers and classical reference solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.exceptions import InfeasibleError, SolverError
from repro.solvers.classical import (
    BranchAndBoundSolver,
    ExhaustiveSolver,
    GreedyRoundingSolver,
)
from repro.solvers.optimizer import (
    CobylaOptimizer,
    NelderMeadOptimizer,
    SpsaOptimizer,
    make_optimizer,
)


def quadratic_bowl(x: np.ndarray) -> float:
    return float(np.sum((x - np.array([1.0, -2.0])) ** 2))


class TestOptimizers:
    @pytest.mark.parametrize(
        "optimizer",
        [
            CobylaOptimizer(max_iterations=200),
            NelderMeadOptimizer(max_iterations=300),
            SpsaOptimizer(max_iterations=300, seed=0),
        ],
    )
    def test_minimizes_quadratic_bowl(self, optimizer):
        result = optimizer.minimize(quadratic_bowl, [0.0, 0.0])
        assert result.cost < 0.3
        assert result.trace.num_iterations > 0

    def test_trace_records_every_evaluation(self):
        optimizer = CobylaOptimizer(max_iterations=30)
        result = optimizer.minimize(quadratic_bowl, [0.0, 0.0])
        assert len(result.trace.costs) == result.num_iterations
        assert result.trace.best_cost <= result.trace.costs[0]

    def test_invalid_iterations(self):
        with pytest.raises(SolverError):
            CobylaOptimizer(max_iterations=0)

    def test_factory(self):
        assert isinstance(make_optimizer("cobyla"), CobylaOptimizer)
        assert isinstance(make_optimizer("SPSA", seed=1), SpsaOptimizer)
        with pytest.raises(SolverError):
            make_optimizer("adam")

    def test_trace_iterations_to_reach(self):
        optimizer = CobylaOptimizer(max_iterations=100)
        result = optimizer.minimize(quadratic_bowl, [5.0, 5.0])
        first = result.trace.iterations_to_reach(1.0)
        assert first is not None
        assert result.trace.costs[first] <= 1.0


class TestClassicalSolvers:
    def test_exhaustive_finds_paper_optimum(self, paper_example_problem):
        result = ExhaustiveSolver().solve(paper_example_problem)
        assert result.assignment == (1, 0, 1, 0)
        assert result.value == pytest.approx(6.0)
        assert result.is_optimal

    def test_branch_and_bound_matches_exhaustive(self, paper_example_problem):
        exhaustive = ExhaustiveSolver().solve(paper_example_problem)
        pruned = BranchAndBoundSolver().solve(paper_example_problem)
        assert pruned.value == pytest.approx(exhaustive.value)
        assert pruned.nodes_explored < exhaustive.nodes_explored

    def test_branch_and_bound_on_random_instances(self):
        rng = np.random.default_rng(5)
        for _ in range(5):
            num_variables = 6
            weights = rng.integers(-5, 6, size=num_variables).astype(float)
            target = rng.integers(1, 3)
            problem = ConstrainedBinaryProblem(
                num_variables,
                Objective.from_linear(weights),
                [LinearConstraint(tuple([1.0] * num_variables), float(target))],
                sense="min",
            )
            assert BranchAndBoundSolver().solve(problem).value == pytest.approx(
                ExhaustiveSolver().solve(problem).value
            )

    def test_infeasible_raises(self):
        problem = ConstrainedBinaryProblem(
            2, Objective(), [LinearConstraint((1.0, 1.0), 9.0)]
        )
        with pytest.raises(InfeasibleError):
            BranchAndBoundSolver().solve(problem)

    def test_greedy_returns_feasible(self, paper_example_problem):
        result = GreedyRoundingSolver().solve(paper_example_problem)
        assert paper_example_problem.is_feasible(result.assignment)
        assert not result.is_optimal

    def test_unconstrained_branch_and_bound_falls_back(self):
        problem = ConstrainedBinaryProblem(3, Objective.from_linear([-1.0, 2.0, -3.0]))
        result = BranchAndBoundSolver().solve(problem)
        assert result.assignment == (1, 0, 1)
