"""Shared fixtures and markers for the test suite.

Markers:
    slow: long-running benchmark-scale tests.  Tier-1 CI can skip them with
        ``pytest -m "not slow"``; the full suite (no ``-m``) still runs
        everything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.qcircuit.statevector import StatevectorSimulator


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long-running benchmark-scale test; deselect with -m 'not slow'",
    )


@pytest.fixture
def simulator() -> StatevectorSimulator:
    return StatevectorSimulator(max_qubits=16)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def paper_example_problem() -> ConstrainedBinaryProblem:
    """The running example of Fig. 2(a) / Fig. 3.

    Four binary variables, two constraints ``x0 - x2 = 0`` and
    ``x0 + x1 + x3 = 1``; maximize ``3 x0 + 2 x1 + 3 x2 + x3``.
    The optimum is ``(1, 0, 1, 0)`` with value 6.
    """
    objective = Objective({(0,): 3.0, (1,): 2.0, (2,): 3.0, (3,): 1.0})
    constraints = [
        LinearConstraint((1.0, 0.0, -1.0, 0.0), 0.0),
        LinearConstraint((1.0, 1.0, 0.0, 1.0), 1.0),
    ]
    return ConstrainedBinaryProblem(
        num_variables=4,
        objective=objective,
        constraints=constraints,
        sense="max",
        name="paper-example",
    )


@pytest.fixture
def small_min_problem() -> ConstrainedBinaryProblem:
    """A small minimization problem with one summation constraint."""
    objective = Objective({(0,): 2.0, (1,): 1.0, (2,): 3.0, (0, 2): -1.0})
    constraints = [LinearConstraint((1.0, 1.0, 1.0), 1.0)]
    return ConstrainedBinaryProblem(
        num_variables=3,
        objective=objective,
        constraints=constraints,
        sense="min",
        name="small-min",
    )


