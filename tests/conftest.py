"""Shared fixtures, factories and markers for the test suite.

Markers:
    slow: long-running benchmark-scale tests.  Tier-1 CI can skip them with
        ``pytest -m "not slow"``; the full suite (no ``-m``) still runs
        everything.
    xslow: scaled-up randomized sweeps (large instances, many cases).  These
        are *skipped by default* and only run when ``--xslow`` is passed (or
        ``RUN_XSLOW=1`` is set), so the tier-1 invocation ``pytest -x -q``
        never pays for them; ``make test-all`` opts in.

The problem fixtures/factories here are the single home for the small
instances that used to be duplicated across ``test_subspace_backend.py`` and
``test_solvers_baselines.py``; solver factories carry the fast optimizer and
seeded engine options most tests want.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.dirname(__file__))

from solver_factories import (  # noqa: E402
    make_chocoq_solver,
    make_cyclic_solver,
    make_one_hot_problem,
)

from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.qcircuit.statevector import StatevectorSimulator


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long-running benchmark-scale test; deselect with -m 'not slow'",
    )
    config.addinivalue_line(
        "markers",
        "xslow: scaled-up randomized sweep; skipped unless --xslow is given",
    )


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--xslow",
        action="store_true",
        default=False,
        help="run tests marked xslow (scaled-up randomized sweeps)",
    )


def pytest_collection_modifyitems(config: pytest.Config, items: list[pytest.Item]) -> None:
    truthy = ("1", "true", "yes", "on")
    if config.getoption("--xslow") or os.environ.get("RUN_XSLOW", "").lower() in truthy:
        return
    skip_xslow = pytest.mark.skip(reason="xslow tier: pass --xslow (or RUN_XSLOW=1) to run")
    for item in items:
        if "xslow" in item.keywords:
            item.add_marker(skip_xslow)


@pytest.fixture
def stall_guard():
    """Opt-in event-loop stall sanitizer (see :mod:`repro.lint.sanitize`).

    Every loop the test creates (``asyncio.run`` included) runs in asyncio
    debug mode with a tight slow-callback threshold; the fixture raises at
    teardown if any callback stalled the loop or a task exception went
    unhandled.  ``tests/test_service.py`` applies it module-wide.  The
    threshold is deliberately generous (loaded CI machines jitter) and
    overridable via ``REPRO_STALL_THRESHOLD`` seconds.
    """
    from repro.lint.sanitize import loop_stall_guard

    threshold = float(os.environ.get("REPRO_STALL_THRESHOLD", "0.5"))
    with loop_stall_guard(threshold=threshold) as guard:
        yield guard


@pytest.fixture
def simulator() -> StatevectorSimulator:
    return StatevectorSimulator(max_qubits=16)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# ---------------------------------------------------------------------------
# Shared small problems
# ---------------------------------------------------------------------------


@pytest.fixture
def paper_example_problem() -> ConstrainedBinaryProblem:
    """The running example of Fig. 2(a) / Fig. 3.

    Four binary variables, two constraints ``x0 - x2 = 0`` and
    ``x0 + x1 + x3 = 1``; maximize ``3 x0 + 2 x1 + 3 x2 + x3``.
    The optimum is ``(1, 0, 1, 0)`` with value 6.
    """
    objective = Objective({(0,): 3.0, (1,): 2.0, (2,): 3.0, (3,): 1.0})
    constraints = [
        LinearConstraint((1.0, 0.0, -1.0, 0.0), 0.0),
        LinearConstraint((1.0, 1.0, 0.0, 1.0), 1.0),
    ]
    return ConstrainedBinaryProblem(
        num_variables=4,
        objective=objective,
        constraints=constraints,
        sense="max",
        name="paper-example",
    )


@pytest.fixture
def small_min_problem() -> ConstrainedBinaryProblem:
    """A small minimization problem with one summation constraint."""
    objective = Objective({(0,): 2.0, (1,): 1.0, (2,): 3.0, (0, 2): -1.0})
    constraints = [LinearConstraint((1.0, 1.0, 1.0), 1.0)]
    return ConstrainedBinaryProblem(
        num_variables=3,
        objective=objective,
        constraints=constraints,
        sense="min",
        name="small-min",
    )


@pytest.fixture
def twin_problem() -> ConstrainedBinaryProblem:
    """Two decoupled one-hot pairs; eliminating x0 yields twin sub-instances.

    The flat objective keeps the optimised state in superposition, so the two
    (structurally identical) sub-circuits must draw *different* samples —
    the regression the per-instance SeedSequence spawn fixes.
    """
    constraints = [
        LinearConstraint((1.0, 1.0, 0.0, 0.0), 1.0),
        LinearConstraint((0.0, 0.0, 1.0, 1.0), 1.0),
    ]
    return ConstrainedBinaryProblem(
        4, Objective(), constraints, sense="max", name="twin"
    )


@pytest.fixture
def one_hot_problem_factory():
    return make_one_hot_problem


# ---------------------------------------------------------------------------
# Shared solver factories (see solver_factories.py)
# ---------------------------------------------------------------------------


@pytest.fixture
def chocoq_solver_factory():
    return make_chocoq_solver


@pytest.fixture
def cyclic_solver_factory():
    return make_cyclic_solver
