"""Tests for diagonal objective Hamiltonians and phase-separation circuits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import HamiltonianError
from repro.hamiltonian.diagonal import (
    DiagonalHamiltonian,
    phase_separation_circuit,
    split_polynomial,
)
from repro.qcircuit.parameters import Parameter
from repro.qcircuit.statevector import StatevectorSimulator, Statevector
from repro.testing import global_phase_equal


class TestDiagonalHamiltonian:
    def test_from_polynomial_values(self):
        terms = {(): 1.0, (0,): 2.0, (0, 1): -3.0}
        hamiltonian = DiagonalHamiltonian.from_polynomial(terms, 2)
        assert hamiltonian.value([0, 0]) == pytest.approx(1.0)
        assert hamiltonian.value([1, 0]) == pytest.approx(3.0)
        assert hamiltonian.value([1, 1]) == pytest.approx(0.0)

    def test_variable_out_of_range(self):
        with pytest.raises(HamiltonianError):
            DiagonalHamiltonian.from_polynomial({(5,): 1.0}, 2)

    def test_expectation(self):
        hamiltonian = DiagonalHamiltonian.from_polynomial({(0,): 1.0}, 1)
        probabilities = np.array([0.25, 0.75])
        assert hamiltonian.expectation(probabilities) == pytest.approx(0.75)

    def test_apply_evolution_only_phases(self):
        hamiltonian = DiagonalHamiltonian.from_polynomial({(0,): 2.0}, 1)
        state = np.array([1.0, 1.0], dtype=complex) / np.sqrt(2)
        evolved = hamiltonian.apply_evolution(state, 0.5)
        assert np.allclose(np.abs(evolved), np.abs(state))
        assert np.angle(evolved[1]) == pytest.approx(-1.0)

    def test_addition_and_scaling(self):
        a = DiagonalHamiltonian.from_polynomial({(0,): 1.0}, 1)
        b = DiagonalHamiltonian.from_polynomial({(): 1.0}, 1)
        combined = a + 2.0 * b
        assert np.allclose(combined.diagonal, [2.0, 3.0])

    def test_size_mismatch_rejected(self):
        a = DiagonalHamiltonian.from_polynomial({(): 1.0}, 1)
        b = DiagonalHamiltonian.from_polynomial({(): 1.0}, 2)
        with pytest.raises(HamiltonianError):
            _ = a + b

    def test_cubic_terms_supported_densely(self):
        hamiltonian = DiagonalHamiltonian.from_polynomial({(0, 1, 2): 4.0}, 3)
        assert hamiltonian.value([1, 1, 1]) == pytest.approx(4.0)
        assert hamiltonian.value([1, 1, 0]) == pytest.approx(0.0)


class TestSplitPolynomial:
    def test_split(self):
        constant, linear, quadratic = split_polynomial({(): 1.0, (2,): 3.0, (0, 1): -2.0})
        assert constant == pytest.approx(1.0)
        assert linear == {2: 3.0}
        assert quadratic == {(0, 1): -2.0}

    def test_duplicate_indices_collapse(self):
        constant, linear, quadratic = split_polynomial({(1, 1): 5.0})
        assert linear == {1: 5.0}
        assert not quadratic

    def test_cubic_rejected(self):
        with pytest.raises(HamiltonianError):
            split_polynomial({(0, 1, 2): 1.0})


class TestPhaseSeparationCircuit:
    @pytest.mark.parametrize("gamma", [0.3, -0.9, 1.7])
    def test_circuit_matches_exact_evolution(self, gamma):
        terms = {(): 2.0, (0,): 1.0, (1,): -2.0, (0, 2): 3.0, (1, 2): -1.5}
        num_qubits = 3
        hamiltonian = DiagonalHamiltonian.from_polynomial(terms, num_qubits)
        simulator = StatevectorSimulator()
        rng = np.random.default_rng(4)
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        state /= np.linalg.norm(state)
        exact = hamiltonian.apply_evolution(state.copy(), gamma)
        circuit = phase_separation_circuit(terms, num_qubits, gamma)
        circuit_state = simulator.statevector(
            circuit, initial_state=Statevector(data=state.copy(), num_qubits=num_qubits)
        ).data
        assert global_phase_equal(exact, circuit_state)

    def test_symbolic_gamma_supported(self):
        gamma = Parameter("gamma")
        circuit = phase_separation_circuit({(0,): 1.0, (0, 1): 2.0}, 2, gamma)
        assert circuit.is_parameterized
        bound = circuit.bind({gamma: 0.4})
        assert not bound.is_parameterized

    def test_zero_terms_produce_empty_circuit(self):
        circuit = phase_separation_circuit({(): 5.0}, 2, 0.7)
        assert circuit.size() == 0
