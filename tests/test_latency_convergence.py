"""Unit tests for the latency model and convergence analysis.

These two modules were previously exercised only indirectly through solver
integration tests; here their arithmetic is pinned directly — the latency
estimate is a closed-form function of gate durations and iteration counts,
and the convergence curves have exact shape/monotonicity invariants.
"""

from __future__ import annotations

import numpy as np
import pytest

from solver_factories import make_one_hot_problem
from repro.core.problem import ConstrainedBinaryProblem, Objective
from repro.qcircuit.circuit import QuantumCircuit
from repro.qcircuit.noise import IBM_FEZ, IBM_OSAKA
from repro.qcircuit.sampling import SampleResult
from repro.solvers.base import OptimizationTrace, SolverResult
from repro.solvers.latency import LatencyEstimate, LatencyModel
from repro.analysis.convergence import (
    ConvergenceCurve,
    compare_convergence,
    convergence_curve,
)


def result_with_costs(costs, solver_name: str = "stub") -> SolverResult:
    trace = OptimizationTrace()
    for cost in costs:
        trace.record(cost, np.zeros(2))
    return SolverResult(
        solver_name=solver_name,
        problem_name="p",
        outcomes=SampleResult(),
        trace=trace,
        num_qubits=2,
    )


class TestLatencyModel:
    def test_gate_durations_by_kind(self):
        model = LatencyModel(profile=IBM_FEZ)
        assert model.gate_duration("measure", 1) == IBM_FEZ.readout_time
        assert model.gate_duration("cz", 2) == IBM_FEZ.two_qubit_time * IBM_FEZ.cz_cost
        assert model.gate_duration("h", 1) == pytest.approx(35e-9)
        # Virtual-Z gates are free.
        assert model.gate_duration("rz", 1) == 0.0

    def test_ecr_device_pays_translation_cost(self):
        fez = LatencyModel(profile=IBM_FEZ)
        osaka = LatencyModel(profile=IBM_OSAKA)
        assert osaka.gate_duration("cz", 2) == IBM_OSAKA.two_qubit_time * 3
        assert osaka.gate_duration("cz", 2) > fez.gate_duration("cz", 2)

    def test_circuit_duration_is_critical_path(self):
        model = LatencyModel(profile=IBM_FEZ)
        circuit = QuantumCircuit(2)
        circuit.h(0)  # 35 ns on qubit 0
        circuit.h(0)  # 35 ns on qubit 0
        circuit.cz(0, 1)  # 90 ns joining both qubits after 70 ns
        expected = 2 * 35e-9 + 90e-9 + IBM_FEZ.readout_time
        assert model.circuit_duration(circuit) == pytest.approx(expected)

    def test_parallel_gates_do_not_stack(self):
        model = LatencyModel(profile=IBM_FEZ)
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(1)  # runs in parallel with the other H
        assert model.circuit_duration(circuit) == pytest.approx(35e-9 + IBM_FEZ.readout_time)

    def test_barrier_aligns_frontiers(self):
        model = LatencyModel(profile=IBM_FEZ)
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(0)
        circuit.barrier()
        circuit.h(1)  # must start only after the barrier level (70 ns)
        expected = 2 * 35e-9 + 35e-9 + IBM_FEZ.readout_time
        assert model.circuit_duration(circuit) == pytest.approx(expected)

    def test_empty_circuit_costs_one_readout(self):
        model = LatencyModel(profile=IBM_FEZ)
        assert model.circuit_duration(QuantumCircuit(3)) == pytest.approx(
            IBM_FEZ.readout_time
        )

    def test_execution_time_scales_with_shots(self):
        model = LatencyModel(profile=IBM_FEZ, per_job_overhead=5e-3)
        circuit = QuantumCircuit(1)
        circuit.h(0)
        duration = model.circuit_duration(circuit)
        assert model.execution_time(circuit, shots=100) == pytest.approx(
            5e-3 + 100 * duration
        )

    def test_estimate_accounting(self):
        model = LatencyModel(profile=IBM_FEZ, per_job_overhead=1e-3, classical_update_time=2e-3)
        circuit = QuantumCircuit(1)
        circuit.h(0)
        estimate = model.estimate(
            circuit, iterations=10, shots=50, compilation_seconds=0.25, num_circuits=4
        )
        per_iteration = model.execution_time(circuit, 50) * 4
        assert estimate.compilation == pytest.approx(0.25)
        assert estimate.quantum_execution == pytest.approx(10 * per_iteration)
        assert estimate.classical_processing == pytest.approx(10 * 2e-3)
        assert estimate.iterations == 10
        assert estimate.shots == 50
        assert estimate.total == pytest.approx(
            estimate.compilation + estimate.quantum_execution + estimate.classical_processing
        )

    def test_estimate_total_is_sum_of_parts(self):
        estimate = LatencyEstimate(
            compilation=1.0,
            quantum_execution=2.0,
            classical_processing=3.0,
            circuit_duration=0.1,
            iterations=5,
            shots=10,
        )
        assert estimate.total == pytest.approx(6.0)


class TestConvergenceCurve:
    def test_best_so_far_is_monotone_nonincreasing(self):
        curve = ConvergenceCurve("s", costs=(5.0, 7.0, 3.0, 4.0, 1.0), optimal_cost=0.0)
        best = curve.best_so_far()
        assert best.tolist() == [5.0, 5.0, 3.0, 3.0, 1.0]
        assert np.all(np.diff(best) <= 0)
        assert curve.num_iterations == 5

    def test_relative_gap_normalisation(self):
        curve = ConvergenceCurve("s", costs=(8.0, 6.0, 4.0), optimal_cost=4.0)
        assert curve.relative_gap().tolist() == [1.0, 0.5, 0.0]
        # |optimal| < 1 falls back to an absolute gap (scale clamps to 1).
        small = ConvergenceCurve("s", costs=(0.5,), optimal_cost=0.25)
        assert small.relative_gap().tolist() == [0.25]

    def test_iterations_to_gap_is_one_based(self):
        curve = ConvergenceCurve("s", costs=(8.0, 6.0, 4.0), optimal_cost=4.0)
        assert curve.iterations_to_gap(1.0) == 1
        assert curve.iterations_to_gap(0.5) == 2
        assert curve.iterations_to_gap(0.0) == 3
        assert ConvergenceCurve("s", costs=(8.0,), optimal_cost=4.0).iterations_to_gap(
            0.1
        ) is None

    def test_final_gap(self):
        curve = ConvergenceCurve("s", costs=(8.0, 5.0), optimal_cost=4.0)
        assert curve.final_gap() == pytest.approx(0.25)
        empty = ConvergenceCurve("s", costs=(), optimal_cost=4.0)
        assert empty.final_gap() == float("inf")

    def test_curve_from_result_flips_sign_for_max_problems(self):
        problem = make_one_hot_problem(weights=(3.0, 2.0, 1.0), sense="max")
        # Internally solvers minimize -f; the optimum f* = 3 becomes -3.
        result = result_with_costs([-1.0, -3.0])
        curve = convergence_curve(problem, result)
        assert curve.optimal_cost == pytest.approx(-3.0)
        assert curve.relative_gap()[-1] == pytest.approx(0.0)

    def test_curve_accepts_precomputed_optimum(self):
        problem = make_one_hot_problem()
        result = result_with_costs([2.0, 1.0])
        curve = convergence_curve(problem, result, optimal_value=1.0)
        assert curve.optimal_cost == pytest.approx(1.0)
        assert curve.final_gap() == pytest.approx(0.0)

    def test_compare_convergence_rows(self):
        problem = make_one_hot_problem()  # min, optimum value 1.0 at x = (0,1,0)
        fast = result_with_costs([3.0, 1.0], solver_name="fast")
        stuck = result_with_costs([3.0, 3.0, 3.0], solver_name="stuck")
        rows = compare_convergence(problem, [fast, stuck], gap=0.2)
        by_name = {row["solver"]: row for row in rows}
        assert by_name["fast"]["iterations"] == 2
        assert by_name["fast"]["iterations_to_gap"] == 2
        assert by_name["fast"]["final_gap"] == pytest.approx(0.0)
        assert by_name["stuck"]["iterations_to_gap"] is None
        assert by_name["stuck"]["initial_cost"] == pytest.approx(3.0)

    def test_unconstrained_objective_row(self):
        problem = ConstrainedBinaryProblem(
            2, Objective.from_linear([1.0, 2.0]), sense="min", name="free"
        )
        rows = compare_convergence(problem, [result_with_costs([0.5, 0.0])])
        assert rows[0]["final_gap"] == pytest.approx(0.0)
