"""Tests for the feasible-subspace coordinate map and restricted operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.feasibility import count_feasible_assignments
from repro.core.problem import ConstrainedBinaryProblem, LinearConstraint, Objective
from repro.core.subspace import SubspaceMap, stream_feasible_basis
from repro.exceptions import (
    HamiltonianError,
    InfeasibleError,
    ProblemError,
    SubspaceOverflowError,
)
from repro.hamiltonian.commute import CommuteDriver, CommuteHamiltonianTerm
from repro.hamiltonian.diagonal import DiagonalHamiltonian


@pytest.fixture
def paper_map(paper_example_problem) -> SubspaceMap:
    return SubspaceMap.from_problem(paper_example_problem)


class TestSubspaceMap:
    def test_enumerates_exactly_the_feasible_set(self, paper_example_problem, paper_map):
        matrix, rhs = paper_example_problem.constraint_matrix()
        assert paper_map.size == count_feasible_assignments(matrix, rhs)
        for coordinate in range(paper_map.size):
            bits = paper_map.bits_of(coordinate)
            assert paper_example_problem.is_feasible(tuple(int(b) for b in bits))

    def test_coordinate_round_trip(self, paper_map):
        for coordinate in range(paper_map.size):
            bits = paper_map.bits_of(coordinate)
            assert paper_map.coordinate_of(bits) == coordinate
            assert paper_map.contains(bits)

    def test_bitstrings_are_little_endian(self, paper_map):
        for coordinate, key in enumerate(paper_map.bitstrings()):
            assert [int(ch) for ch in key] == list(paper_map.bits_of(coordinate))

    def test_infeasible_assignment_rejected(self, paper_map):
        with pytest.raises(InfeasibleError):
            paper_map.coordinate_of([1, 1, 1, 1])
        assert not paper_map.contains([1, 1, 1, 1])

    def test_unconstrained_problem_rejected(self):
        problem = ConstrainedBinaryProblem(3, Objective.from_linear([1.0, 2.0, 3.0]))
        with pytest.raises(ProblemError):
            SubspaceMap.from_problem(problem)

    def test_infeasible_system_rejected(self):
        with pytest.raises(InfeasibleError):
            SubspaceMap.from_constraints([[1.0, 1.0]], [3.0])

    def test_limit_guards_against_truncation(self):
        # x0 + x1 + x2 = 1 has three solutions: a limit below that must
        # refuse rather than return a silently partial map.
        with pytest.raises(ProblemError):
            SubspaceMap.from_constraints([[1.0, 1.0, 1.0]], [1.0], limit=2)
        assert SubspaceMap.from_constraints([[1.0, 1.0, 1.0]], [1.0], limit=3).size == 3


class TestStreamingConstruction:
    # 8 variables, sum = 4: C(8, 4) = 70 feasible assignments.
    MATRIX = [[1.0] * 8]
    RHS = [4.0]

    def test_streaming_matches_one_shot_enumeration(self):
        reference = stream_feasible_basis(self.MATRIX, self.RHS)
        assert reference.shape == (70, 8)
        for chunk_rows in (1, 3, 64, 70, 1000):
            chunked = stream_feasible_basis(self.MATRIX, self.RHS, chunk_rows=chunk_rows)
            assert np.array_equal(chunked, reference)

    def test_overflow_aborts_enumeration_early(self):
        with pytest.raises(SubspaceOverflowError):
            stream_feasible_basis(self.MATRIX, self.RHS, limit=69)
        assert stream_feasible_basis(self.MATRIX, self.RHS, limit=70).shape == (70, 8)

    def test_invalid_chunk_rows_rejected(self):
        with pytest.raises(ProblemError):
            stream_feasible_basis(self.MATRIX, self.RHS, chunk_rows=0)

    def test_streamed_map_equals_legacy_map(self, paper_example_problem):
        matrix, rhs = paper_example_problem.constraint_matrix()
        streamed = SubspaceMap.from_constraints(matrix, rhs)
        assert streamed.size == count_feasible_assignments(matrix, rhs)
        # Coordinate order is the DFS enumeration order either way.
        assert streamed.bitstrings() == SubspaceMap.from_problem(paper_example_problem).bitstrings()

    def test_try_from_constraints_fallback_signal(self):
        assert SubspaceMap.try_from_constraints(self.MATRIX, self.RHS, limit=10) is None
        built = SubspaceMap.try_from_constraints(self.MATRIX, self.RHS, limit=70)
        assert built is not None and built.size == 70

    def test_try_from_problem_signals(self, paper_example_problem):
        assert SubspaceMap.try_from_problem(paper_example_problem, limit=1) is None
        built = SubspaceMap.try_from_problem(paper_example_problem)
        assert built is not None and built.size == 3
        unconstrained = ConstrainedBinaryProblem(3, Objective.from_linear([1.0, 2.0, 3.0]))
        assert SubspaceMap.try_from_problem(unconstrained) is None

    def test_try_from_problem_still_raises_on_infeasible(self):
        infeasible = ConstrainedBinaryProblem(
            2,
            Objective.from_linear([1.0, 1.0]),
            [LinearConstraint((1.0, 1.0), 3.0)],
        )
        with pytest.raises(InfeasibleError):
            SubspaceMap.try_from_problem(infeasible)

    def test_compression_ratio(self, paper_map):
        assert paper_map.compression_ratio() == pytest.approx(16.0 / paper_map.size)

    def test_basis_state_is_unit_vector(self, paper_map):
        bits = paper_map.bits_of(1)
        state = paper_map.basis_state(bits)
        assert state.shape == (paper_map.size,)
        assert state[1] == 1.0
        assert np.sum(np.abs(state)) == 1.0

    def test_evaluate_polynomial_matches_dense_diagonal(
        self, paper_example_problem, paper_map
    ):
        terms = paper_example_problem.minimization_objective().terms
        dense = DiagonalHamiltonian.from_polynomial(terms, 4)
        np.testing.assert_allclose(
            paper_map.evaluate_polynomial(terms), dense.restrict(paper_map)
        )

    def test_evaluate_polynomial_rejects_out_of_range(self, paper_map):
        with pytest.raises(ProblemError):
            paper_map.evaluate_polynomial({(7,): 1.0})

    def test_lift_project_round_trip(self, paper_map, rng):
        sub_state = rng.normal(size=paper_map.size) + 1j * rng.normal(size=paper_map.size)
        dense = paper_map.lift_vector(sub_state)
        assert dense.shape == (16,)
        np.testing.assert_allclose(paper_map.project_vector(dense), sub_state)
        # Lifted amplitudes land only on feasible indices.
        infeasible = np.ones(16, dtype=bool)
        infeasible[paper_map.full_indices()] = False
        assert np.all(dense[infeasible] == 0)


class TestSubspaceEvolution:
    def _driver(self, problem) -> CommuteDriver:
        from repro.core.nullspace import ternary_nullspace_basis

        matrix, _ = problem.constraint_matrix()
        return CommuteDriver.from_solutions(ternary_nullspace_basis(matrix))

    def test_term_subspace_evolution_matches_dense(
        self, paper_example_problem, paper_map, rng
    ):
        driver = self._driver(paper_example_problem)
        sub_state = rng.normal(size=paper_map.size) + 1j * rng.normal(size=paper_map.size)
        sub_state /= np.linalg.norm(sub_state)
        for term in driver.terms:
            for beta in (0.3, -1.1):
                evolved_sub = term.apply_evolution_subspace(sub_state, beta, paper_map)
                evolved_dense = term.apply_evolution(paper_map.lift_vector(sub_state), beta)
                np.testing.assert_allclose(
                    paper_map.lift_vector(evolved_sub), evolved_dense, atol=1e-12
                )

    def test_restricted_driver_matches_dense_serialized(
        self, paper_example_problem, paper_map, rng
    ):
        driver = self._driver(paper_example_problem)
        restricted = driver.restrict(paper_map)
        assert restricted.size == paper_map.size
        assert restricted.num_terms == len(driver.terms)
        sub_state = rng.normal(size=paper_map.size) + 1j * rng.normal(size=paper_map.size)
        sub_state /= np.linalg.norm(sub_state)
        evolved_sub = restricted.apply_serialized(sub_state, 0.7)
        evolved_dense = driver.apply_serialized(paper_map.lift_vector(sub_state), 0.7)
        np.testing.assert_allclose(
            paper_map.lift_vector(evolved_sub), evolved_dense, atol=1e-12
        )

    def test_restricted_hamiltonian_is_the_feasible_block(
        self, paper_example_problem, paper_map
    ):
        driver = self._driver(paper_example_problem)
        restricted = driver.restrict(paper_map)
        full = driver.hamiltonian_matrix()
        indices = paper_map.full_indices()
        np.testing.assert_allclose(
            restricted.hamiltonian_matrix(), full[np.ix_(indices, indices)]
        )

    def test_non_nullspace_term_rejected(self, paper_map):
        # u = e_0 is not a nullspace solution of the paper constraints: the
        # hop partner of a feasible state is infeasible.
        term = CommuteHamiltonianTerm((1, 0, 0, 0))
        with pytest.raises(HamiltonianError):
            term.subspace_pairing(paper_map)

    def test_non_nullspace_term_rejected_from_v_bar_side(self):
        # F = {11} for x0 + x1 = 2.  The term u = (-1, -1) has v = 00, so no
        # feasible state matches the v pattern — but |11> matches v̄ and its
        # hop partner |00> is infeasible.  The pairing must refuse rather
        # than silently treat the term as the identity.
        lonely_map = SubspaceMap.from_constraints([[1.0, 1.0]], [2.0])
        term = CommuteHamiltonianTerm((-1, -1))
        with pytest.raises(HamiltonianError):
            term.subspace_pairing(lonely_map)

    def test_driver_subspace_commutation_check(self, paper_example_problem, paper_map):
        driver = self._driver(paper_example_problem)
        assert driver.commutes_with_constraint_subspace(paper_map)
        bad = CommuteDriver([CommuteHamiltonianTerm((1, 0, 0, 0))])
        assert not bad.commutes_with_constraint_subspace(paper_map)
